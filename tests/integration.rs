//! Cross-crate integration: the full pipeline from polynomial search to
//! framed traffic on a noisy channel.

use koopman_crc::crc_hd::search::exhaustive_search;
use koopman_crc::crc_hd::spectrum;
use koopman_crc::crc_hd::{GenPoly, HdProfile};
use koopman_crc::crckit::{catalog, fcs, Crc, CrcParams};
use koopman_crc::netsim::channel::{BscChannel, BurstChannel};
use koopman_crc::netsim::frame::FrameCodec;
use koopman_crc::netsim::montecarlo::{
    inject_undetectable, run_trials, undetectable_pattern, TrialConfig,
};

/// Search → adopt → frame → verify: find the best 8-bit polynomial for a
/// 16-bit payload, wire it into a CRC engine, and check it on traffic.
#[test]
fn search_to_traffic_pipeline() {
    // 1. Find the best achievable HD at 16 data bits over all 8-bit polys.
    let mut chosen = None;
    for hd in (3..=7).rev() {
        let survivors = exhaustive_search(8, 16, hd, 2).unwrap();
        if let Some(s) = survivors.first() {
            chosen = Some((hd, s.poly));
            break;
        }
    }
    let (hd, poly) = chosen.expect("some polynomial survives HD>=3");
    assert!(hd >= 4, "8-bit CRCs reach HD 4+ at 16 bits");
    // 2. Exhaustive ground truth agrees.
    assert_eq!(spectrum::hd_exhaustive(&poly, 16).unwrap(), hd);

    // 3. Wire into an engine and run framed traffic.
    let params = CrcParams::new("CRC-8/CHOSEN", 8, poly.normal()).unwrap();
    let crc = Crc::try_new(params).unwrap();
    let framed = fcs::append(&crc, b"\xAB\xCD");
    assert!(fcs::verify(&crc, &framed).unwrap());

    // 4. Every (hd-1)-bit corruption of that frame is caught.
    let nbits = framed.len() * 8;
    let flips = (hd - 1) as usize;
    // Walk a deterministic sample of flip combinations.
    let mut tested = 0;
    for a in 0..nbits {
        for b in (a + 1)..nbits.min(a + 7) {
            let mut frame = framed.clone();
            frame[a / 8] ^= 1 << (a % 8);
            frame[b / 8] ^= 1 << (b % 8);
            if flips >= 3 {
                let c = (b + 5) % nbits;
                if c == a || c == b {
                    continue;
                }
                frame[c / 8] ^= 1 << (c % 8);
            }
            assert!(
                !fcs::verify(&crc, &frame).unwrap(),
                "undetected at ({a},{b})"
            );
            tested += 1;
        }
    }
    assert!(tested > 100);
}

/// The profile, the engine, and the simulator must tell one story: below
/// the HD boundary no k-bit error passes; an injected codeword always does.
#[test]
fn profile_engine_simulator_agree() {
    let g = GenPoly::from_koopman(32, 0xBA0DC66B).unwrap();
    let profile = HdProfile::compute(&g, 4_000).unwrap();
    assert_eq!(profile.hd_at(1_000), Some(6));

    // Random traffic with few flips: always detected at this length.
    let codec = FrameCodec::new(catalog::CRC32_MEF); // same polynomial
    let mut ch = BscChannel::new(2e-4); // ~2 flips across ~1 KB frames
    let stats = run_trials(
        &codec,
        &mut ch,
        &TrialConfig {
            payload_len: 125, // 1000 data bits
            trials: 5_000,
            seed: 99,
        },
    );
    assert_eq!(stats.undetected, 0);
    assert!(stats.detected > 500);

    // But a *codeword* injection sails through — the blind spot exists
    // exactly where the algebra says it does.
    let payload = vec![7u8; 125];
    let clean = codec.encode(&payload);
    let pattern = undetectable_pattern(catalog::CRC32_MEF, payload.len(), 5);
    let mut frame = clean.clone();
    inject_undetectable(&mut frame, &pattern);
    assert_ne!(frame, clean);
    assert!(codec.verify(&frame), "codeword injection must be invisible");
}

/// Burst guarantee, end to end, for the paper's recommended polynomial.
#[test]
fn burst_guarantee_end_to_end() {
    let codec = FrameCodec::new(catalog::CRC32_MEF);
    let mut ch = BurstChannel::new(32);
    let stats = run_trials(
        &codec,
        &mut ch,
        &TrialConfig {
            payload_len: 1_514,
            trials: 2_000,
            seed: 5,
        },
    );
    assert_eq!(stats.clean, 0);
    assert_eq!(stats.undetected, 0);
}

/// The umbrella re-exports expose a coherent API surface.
#[test]
fn umbrella_reexports_work_together() {
    let g = koopman_crc::crc_hd::GenPoly::from_koopman(32, 0x82608EDB).unwrap();
    let full = g.to_poly();
    let fac = koopman_crc::gf2poly::factor(full);
    assert!(fac.is_irreducible());
    let crc = koopman_crc::crckit::Crc::new(koopman_crc::crckit::catalog::CRC32_ISO_HDLC);
    assert_eq!(crc.checksum(b"123456789"), 0xCBF4_3926);
}
