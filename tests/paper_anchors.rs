//! Cross-crate verification of the paper's published numbers — every
//! anchor cheap enough for the test suite (the full 128 Kbit sweeps live
//! in the `table1` experiment binary).

use koopman_crc::crc_hd::{dmin, weights, GenPoly, HdProfile};
use koopman_crc::crckit::notation::PolyForm;
use koopman_crc::gf2poly::{factor, order_of_x, Poly};

fn g32(koopman: u64) -> GenPoly {
    GenPoly::from_koopman(32, koopman).unwrap()
}

#[test]
fn section2_802_3_weights_at_mtu() {
    // "the 802.3 CRC has a weight at message length=12112 bits of
    //  {W2=0; W3=0; W4=223059; ...}"
    let w = weights::weights234(&g32(0x82608EDB), 12_112).unwrap();
    assert_eq!((w.w2, w.w3, w.w4), (0, 0, 223_059));
}

#[test]
fn section1_hd_comparison_at_mtu() {
    // "the 802.3 CRC can detect up to three independent bit errors
    //  (HD=4) in an Ethernet MTU ... the theoretical maximum is five
    //  independent bit errors (HD=6)".
    let ieee = HdProfile::compute(&g32(0x82608EDB), 12_500).unwrap();
    assert_eq!(ieee.hd_at(12_112), Some(4));
    let koop = HdProfile::compute(&g32(0xBA0DC66B), 17_000).unwrap();
    assert_eq!(koop.hd_at(12_112), Some(6));
}

#[test]
fn table1_802_3_small_breakpoints() {
    let p = HdProfile::compute(&g32(0x82608EDB), 4_000).unwrap();
    assert_eq!(p.max_len_for_hd(8), Some(91));
    assert_eq!(p.max_len_for_hd(7), Some(171));
    assert_eq!(p.max_len_for_hd(6), Some(268));
    assert_eq!(p.max_len_for_hd(5), Some(2_974));
}

#[test]
fn section4_3_ba0dc66b_claims() {
    // "achieves HD=6 up to almost 16Kb and HD=4 up to 114,663 bits".
    let p = HdProfile::compute(&g32(0xBA0DC66B), 17_000).unwrap();
    assert_eq!(p.max_len_for_hd(6), Some(16_360));
    // The HD=4 limit comes from the order: 114,695 - 32.
    assert_eq!(p.order(), 114_695);
    assert_eq!(p.order() as u32 - 32, 114_663);
}

#[test]
fn table1_hd2_onsets_from_orders() {
    // HD=2 begins at order − 31 for each polynomial (Table 1 bottom row).
    for (k, onset) in [
        (0xBA0DC66Bu64, 114_664u128),
        (0xFA567D89, 65_503),
        (0x992C1A4C, 65_507),
        (0x90022004, 65_507),
        (0xD419CC15, 65_506),
        (0x80108400, 65_506),
    ] {
        let order = order_of_x(g32(k).to_poly()).unwrap();
        assert_eq!(order - 31, onset, "poly {k:#010X}");
    }
}

#[test]
fn errata_992c1a4c_hd6_to_32738() {
    // The 2014 errata: HD=6 up to 32,738 bits (not the original 32,737),
    // so d_min(4) = 32738 + 32 = 32770.
    assert_eq!(
        dmin::dmin(&g32(0x992C1A4C), 4, 33_000).unwrap(),
        Some(32_770)
    );
}

#[test]
fn section3_castagnoli_factorizations() {
    // 0xFA567D89 = (0x1 ⊗ 0x1 ⊗ 0x4008 ⊗ 0x642F): the deg-15 factors in
    // Koopman notation are 0x4008 → x^15+x^4+1 and 0x642F.
    let full = g32(0xFA567D89).to_poly();
    let fac = factor(full);
    let degs: Vec<u32> = fac.signature().degrees().to_vec();
    assert_eq!(degs, vec![1, 1, 15, 15]);
    let p15a = Poly::from_exponents(&[15, 4, 0]);
    assert!(fac.factors().iter().any(|&(p, _)| p == p15a));
    // And the full form is the corrected 1F4ACFB13 from the erratum note.
    assert_eq!(full.mask(), 0x1_F4AC_FB13);
}

#[test]
fn iscsi_poly_is_crc32c_and_keeps_hd4_past_horizon() {
    let p = PolyForm::from_koopman(32, 0x8F6E37A0).unwrap();
    assert_eq!(p.normal(), 0x1EDC_6F41, "0x8F6E37A0 is CRC-32C");
    // {1,31} with primitive deg-31 factor: order 2^31 − 1, so its HD=4
    // span runs far past the 131072-bit horizon of Figure 1.
    assert_eq!(order_of_x(p.to_poly()).unwrap(), 2_147_483_647);
}

#[test]
fn section4_2_low_tap_polynomials() {
    // 0x90022004: HD=6 to almost 32K with minimal taps; 0x80108400: HD=5
    // to almost 64K with minimal taps. Verify the small-length side here
    // (the 64K side is in the table1 binary).
    let p = HdProfile::compute(&g32(0x90022004), 4_000).unwrap();
    assert_eq!(p.hd_at(4_000), Some(6));
    let p = HdProfile::compute(&g32(0x80108400), 4_000).unwrap();
    assert_eq!(p.hd_at(4_000), Some(5));
}

#[test]
fn search_space_count() {
    // "The entire set of 1,073,774,592 distinct polynomials".
    assert_eq!(
        koopman_crc::gf2poly::class::distinct_search_space(32),
        1_073_774_592
    );
}
