//! Cross-crate property tests: invariants the paper's §4.5 validation
//! monitored, checked over randomized polynomials and lengths.

use koopman_crc::crc_hd::{dmin, spectrum, GenPoly, HdProfile};
use proptest::prelude::*;

/// Random 8-bit generator in Koopman notation (top bit forced).
fn koopman8() -> impl Strategy<Value = GenPoly> {
    (0x80u64..0x100).prop_map(|k| GenPoly::from_koopman(8, k).expect("top bit set"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §4.5: "Polynomials divisible by (x+1) were checked to ensure that
    /// all odd-numbered weights computed were in fact zero."
    #[test]
    fn parity_polynomials_have_no_odd_weights(g in koopman8(), n in 1u32..22) {
        prop_assume!(g.divisible_by_x_plus_1());
        let spec = spectrum::spectrum(&g, n).unwrap();
        for k in (1..spec.counts().len()).step_by(2) {
            prop_assert_eq!(spec.count(k as u32), 0, "odd weight {} present", k);
        }
    }

    /// §4.5: "weight values were ensured to be non-decreasing when
    /// computed over increasing payload lengths."
    #[test]
    fn weights_monotone_in_length(g in koopman8(), n in 2u32..20) {
        let a = spectrum::spectrum(&g, n).unwrap();
        let b = spectrum::spectrum(&g, n + 1).unwrap();
        for k in 0..a.counts().len() {
            prop_assert!(b.count(k as u32) >= a.count(k as u32), "W{} shrank", k);
        }
    }

    /// HD is non-increasing in length (the fact behind increasing-length
    /// staged filtering).
    #[test]
    fn hd_monotone_nonincreasing(g in koopman8(), n in 2u32..25) {
        let a = spectrum::hd_exhaustive(&g, n).unwrap();
        let b = spectrum::hd_exhaustive(&g, n + 1).unwrap();
        prop_assert!(b <= a);
    }

    /// Reciprocal polynomials have identical weight profiles [Peterson72]
    /// — the fact that halves the paper's search space.
    #[test]
    fn reciprocal_weight_profiles_match(g in koopman8(), n in 1u32..20) {
        let r = g.reciprocal();
        let a = spectrum::spectrum(&g, n).unwrap();
        let b = spectrum::spectrum(&r, n).unwrap();
        prop_assert_eq!(a.counts(), b.counts());
    }

    /// The fast d_min machinery agrees with exhaustive enumeration for
    /// every weight it reports, on every random small polynomial.
    #[test]
    fn dmin_matches_spectrum(g in koopman8(), w in 3u32..7) {
        let cap = 27u32; // degrees coverable by 20 data bits at width 8
        let found = dmin::dmin(&g, w, cap).unwrap();
        let mut truth = None;
        // Degree d fits at data length n iff d <= n + 7, so covering
        // degrees up to cap requires n up to cap - 7.
        for n in 1..=(cap - 7) {
            if spectrum::spectrum(&g, n).unwrap().count(w) > 0 {
                truth = Some(n + 7);
                break;
            }
        }
        prop_assert_eq!(found, truth);
    }

    /// Profile bands tile the whole range and agree with ground truth at
    /// every sampled point.
    #[test]
    fn profile_bands_tile_and_agree(g in koopman8(), n in 1u32..24) {
        let p = HdProfile::compute(&g, 24).unwrap();
        let bands = p.bands();
        prop_assert_eq!(bands.first().unwrap().from, 1);
        prop_assert_eq!(bands.last().unwrap().to, 24);
        let exact = spectrum::hd_exhaustive(&g, n).unwrap();
        if let Some(hd) = p.hd_at(n) {
            prop_assert_eq!(hd, exact);
        } else {
            // Beyond the explored weight cap: the true HD must exceed it.
            prop_assert!(exact > p.max_weight_explored());
        }
    }
}
