//! End-to-end demonstration of the paper's §4.1 worked example: the 802.3
//! CRC's *first* undetectable 4-bit error appears at a 2975-bit data word
//! ("there is in fact exactly one such undetected error"). We reconstruct
//! that exact pattern and push it through a real framed CRC-32 check.

use koopman_crc::crc_hd::witness::find_witness;
use koopman_crc::crc_hd::{weights, GenPoly};
use koopman_crc::crckit::catalog;
use koopman_crc::netsim::frame::FrameCodec;

#[test]
fn the_celebrated_2975_bit_pattern_defeats_crc32_on_the_wire() {
    let g = GenPoly::from_koopman(32, 0x82608EDB).unwrap();

    // The minimal weight-4 multiple has degree 3006 = 2975 + 31.
    let wit = find_witness(&g, 4, 3_006).unwrap().expect("exists at 3006");
    assert_eq!(wit.degree(), 3_006);
    assert_eq!(wit.weight(), 4);
    assert!(wit.verify(&g));

    // ...and it is unique at that length (W4 = 1 at 2975 bits).
    let w = weights::weights234(&g, 2_975).unwrap();
    assert_eq!(w.w4, 1);

    // Frame a 376-byte payload (3008 data bits >= 2975) with an
    // unreflected 802.3-polynomial CRC; init/xorout don't affect error
    // deltas, and the unreflected bit layout matches the polynomial
    // convention directly.
    let codec = FrameCodec::new(catalog::CRC32_MPEG2);
    let payload: Vec<u8> = (0..376u32).map(|i| (i * 97 + 13) as u8).collect();
    let clean = codec.encode(&payload);
    assert!(codec.verify(&clean));

    // Inject the witness: four flipped bits, invisible to the CRC.
    let pattern = wit.to_frame_pattern(clean.len()).unwrap();
    assert_eq!(pattern.iter().map(|b| b.count_ones()).sum::<u32>(), 4);
    let mut corrupted = clean.clone();
    for (c, p) in corrupted.iter_mut().zip(&pattern) {
        *c ^= p;
    }
    assert_ne!(corrupted, clean);
    assert!(
        codec.verify(&corrupted),
        "the weight-4 codeword must slip past CRC-32 undetected"
    );

    // Any *other* 4-bit perturbation of those positions is caught: move
    // one of the witness bits by one position.
    let mut near_miss = clean.clone();
    for (c, p) in near_miss.iter_mut().zip(&pattern) {
        *c ^= p;
    }
    // Locate one set bit of the pattern and shift it.
    let bit = pattern
        .iter()
        .enumerate()
        .find_map(|(i, &b)| (b != 0).then(|| i * 8 + b.leading_zeros() as usize))
        .expect("pattern has bits");
    near_miss[bit / 8] ^= 0x80 >> (bit % 8); // clear the original bit
    let shifted = bit + 1;
    near_miss[shifted / 8] ^= 0x80 >> (shifted % 8); // set the neighbour
    assert!(
        !codec.verify(&near_miss),
        "perturbing the pattern by one bit position must be detected"
    );

    // The paper's fix: under 0xBA0DC66B the same wire length is HD=6 —
    // no 4-bit pattern exists at all (W4 = 0 up to 16,360 bits).
    let better = GenPoly::from_koopman(32, 0xBA0DC66B).unwrap();
    let wb = weights::weights234(&better, 3_008).unwrap();
    assert_eq!((wb.w2, wb.w3, wb.w4), (0, 0, 0));
}

#[test]
fn witness_injection_for_reflected_algorithms() {
    // For reflected algorithms the same codeword defeats the CRC after
    // per-byte bit reversal of the pattern.
    let g = GenPoly::from_koopman(32, 0x8F6E37A0).unwrap(); // CRC-32C
    let wit = find_witness(&g, 4, 5_275)
        .unwrap()
        .expect("d_min(4) = 5275");
    assert_eq!(wit.degree(), 5_275);

    let codec = FrameCodec::new(catalog::CRC32_ISCSI);
    let payload = vec![0xC3u8; 660]; // 5280 data bits
    let clean = codec.encode(&payload);
    let mut pattern = wit.to_frame_pattern(clean.len()).unwrap();
    for b in pattern.iter_mut() {
        *b = b.reverse_bits();
    }
    let mut corrupted = clean.clone();
    for (c, p) in corrupted.iter_mut().zip(&pattern) {
        *c ^= p;
    }
    assert_ne!(corrupted, clean);
    assert!(
        codec.verify(&corrupted),
        "CRC-32C must miss its own weight-4 codeword at 5280 bits"
    );
}
