//! Umbrella crate for the reproduction of Koopman's DSN 2002 paper
//! *"32-Bit Cyclic Redundancy Codes for Internet Applications"*.
//!
//! Re-exports the four workspace crates under one roof:
//!
//! * [`gf2poly`] — polynomial algebra over GF(2) (factorization, order,
//!   irreducibility, the paper's `{d1,..,dk}` classes).
//! * [`crckit`] — the CRC engine a downstream user adopts (Rocksoft
//!   parameters, three engines, notation conversions, framing, catalog).
//! * [`crc_hd`] — the paper's contribution: Hamming-distance evaluation,
//!   `d_min` searches, weight counting, HD profiles, the §4.1 filtering
//!   pipeline, and exhaustive/sampled polynomial search.
//! * [`netsim`] — channel and framing simulation for end-to-end
//!   demonstrations.
//! * [`crc_survey`] — sharded, checkpointable survey campaigns over
//!   whole polynomial spaces with Pareto selection and leaderboards.
//!
//! # The paper in one code block
//!
//! ```
//! use koopman_crc::crc_hd::{GenPoly, HdProfile};
//!
//! // The iSCSI draft picked Castagnoli's 0x8F6E37A0 (CRC-32C).
//! let iscsi = GenPoly::from_koopman(32, 0x8F6E37A0).unwrap();
//! // The paper proposes 0xBA0DC66B instead.
//! let koopman = GenPoly::from_koopman(32, 0xBA0DC66B).unwrap();
//!
//! let mtu = 12_112; // Ethernet MTU data word, bits
//! let p_iscsi = HdProfile::compute(&iscsi, 13_000).unwrap();
//! let p_koop = HdProfile::compute(&koopman, 17_000).unwrap();
//!
//! // Two extra bits of error detection at full MTU length:
//! assert_eq!(p_iscsi.hd_at(mtu), Some(4));
//! assert_eq!(p_koop.hd_at(mtu), Some(6));
//! ```

pub use crc_hd;
pub use crc_survey;
pub use crckit;
pub use gf2poly;
pub use netsim;
