//! Criterion measurements of breakpoint localization (E8): the paper's
//! doubling-plus-bisection inverse-filtering strategy vs the exact
//! incremental `d_min` scan, on the §4.1 worked examples.

use crc_hd::dmin::dmin;
use crc_hd::filter::breakpoint_search;
use crc_hd::GenPoly;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn g32(k: u64) -> GenPoly {
    GenPoly::from_koopman(32, k).expect("valid")
}

/// The 802.3 HD=5→4 breakpoint at 2974/2975 — the paper's "under a minute
/// of total CPU time" worked example.
fn bench_802_3_breakpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("breakpoint_802_3_hd5");
    group.sample_size(10);
    let ieee = g32(0x82608EDB);
    group.bench_function("doubling_bisect", |b| {
        b.iter(|| {
            let (len, _) = breakpoint_search(&ieee, 5, 65_536).unwrap();
            assert_eq!(len, 2_974);
        })
    });
    group.bench_function("incremental_dmin4", |b| {
        b.iter(|| {
            let d = dmin(&ieee, 4, 65_536).unwrap();
            assert_eq!(d, Some(3_006));
        })
    });
    group.finish();
}

/// The 0xBA0DC66B HD=6 boundary at 16360/16361 — what took the paper
/// "7.4 seconds" (fail side) and "19 days" (confirm side).
fn bench_ba0dc66b_boundary(c: &mut Criterion) {
    let mut group = c.benchmark_group("breakpoint_ba0dc66b_hd6");
    group.sample_size(10);
    let g = g32(0xBA0DC66B);
    group.bench_function("exact_dmin4_confirm", |b| {
        b.iter(|| {
            let d = dmin(&g, 4, 20_000).unwrap();
            assert_eq!(d, Some(16_392));
        })
    });
    group.finish();
}

/// `d_min(4)` scan cost across the Table 1 polynomials — the dominant
/// cost of the whole Table 1 regeneration.
fn bench_dmin4_by_poly(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmin4");
    group.sample_size(10);
    for (k, cap) in [
        (0x8F6E37A0u64, 6_000u32), // found at 5275
        (0xBA0DC66B, 17_000),      // found at 16392
        (0xFA567D89, 33_000),      // found at 32768
    ] {
        let g = g32(k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k:08X}")),
            &cap,
            |b, &cap| b.iter(|| dmin(&g, 4, cap).unwrap().expect("within cap")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_802_3_breakpoint,
    bench_ba0dc66b_boundary,
    bench_dmin4_by_poly
);
criterion_main!(benches);
