//! Criterion measurements of the §4.1 filtering techniques (E5–E7):
//! early-bailout filtering vs exact weights, FCS-first vs natural
//! enumeration order, and short-length vs MTU-length filtering cost.

use crc_hd::filter::enumerative::{check, EnumOrder};
use crc_hd::filter::hd_filter;
use crc_hd::weights::weights234;
use crc_hd::GenPoly;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gf2poly::SplitMix64;

fn g32(k: u64) -> GenPoly {
    GenPoly::from_koopman(32, k).expect("valid")
}

/// E5: the early-out filter vs exact weight computation, at a length where
/// the paper quotes "7 minutes vs under 7 seconds" for its own evaluator.
fn bench_early_bailout(c: &mut Criterion) {
    let mut group = c.benchmark_group("early_bailout_vs_exact");
    group.sample_size(10);
    let ieee = g32(0x82608EDB);
    for len in [4_096u32, 12_112] {
        group.bench_with_input(BenchmarkId::new("exact_w234", len), &len, |b, &len| {
            b.iter(|| weights234(&ieee, len).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("filter_hd5", len), &len, |b, &len| {
            b.iter(|| hd_filter(&ieee, len, 5).unwrap())
        });
    }
    group.finish();
}

/// E6: the paper-literal enumeration, natural vs FCS-first order, on
/// rejected polynomials (time-to-first-undetected-pattern).
fn bench_enum_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("enum_order");
    group.sample_size(10);
    // A rejected polynomial with HD=4 at 512 bits: 802.3 fails HD=5 there?
    // No — it holds HD=5 to 2974; use a random rejected polynomial.
    let mut rng = SplitMix64::new(0xE6);
    let rejected = loop {
        let g = g32(rng.next_u64() >> 32 | 1 << 31);
        if !hd_filter(&g, 512, 5).unwrap().passed() {
            break g;
        }
    };
    for order in [EnumOrder::Natural, EnumOrder::FcsFirst] {
        group.bench_with_input(
            BenchmarkId::new("first_hit_k4", format!("{order:?}")),
            &order,
            |b, &order| b.iter(|| check(&rejected, 512, 4, order, true)),
        );
    }
    group.finish();
}

/// E7: filtering cost grows steeply with length — the reason staged
/// filtering pays (paper: 1024-bit filtering ≈ 17,500× cheaper than a
/// 12112-bit evaluation for its enumerator).
fn bench_length_staging(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_cost_vs_length");
    group.sample_size(10);
    // Filter a batch of random polynomials (mostly rejected, like the real
    // search population).
    let mut rng = SplitMix64::new(0xE7);
    let batch: Vec<GenPoly> = (0..32)
        .map(|_| g32(rng.next_u64() >> 32 | 1 << 31))
        .collect();
    for len in [256u32, 1_024, 4_096, 12_112] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                batch
                    .iter()
                    .filter(|g| hd_filter(g, len, 5).unwrap().passed())
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_early_bailout,
    bench_enum_order,
    bench_length_staging
);
criterion_main!(benches);
