//! CRC engine-tier throughput: every [`EngineKind`] across representative
//! catalog algorithms (E14), now covering the hardware-accelerated tiers.
//!
//! The machine-readable counterpart (acceptance-gate numbers, JSON) is
//! the `crc_throughput` binary: `cargo run --release --bin crc_throughput`.

use crckit::{catalog, Crc, EngineKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let data: Vec<u8> = (0..65_536u32).map(|i| (i * 31 + 7) as u8).collect();
    let mut group = c.benchmark_group("crc_engines");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(20);
    for params in [
        catalog::CRC32_ISO_HDLC,
        catalog::CRC32_ISCSI,
        catalog::CRC32_MEF,
        catalog::CRC32_BZIP2, // unreflected path
        catalog::CRC32_XFER,  // sparse generator: Chorba's best case
        catalog::CRC64_XZ,
        catalog::CRC64_GO_ISO, // sparse 64-bit generator
        catalog::CRC16_ARC,
    ] {
        let crc = Crc::new(params);
        for kind in EngineKind::ALL {
            if kind == EngineKind::Bitwise {
                continue; // ~100× slower; measured by the binary instead
            }
            group.bench_with_input(
                BenchmarkId::new(kind.name(), params.name),
                &data,
                |b, data| b.iter(|| crc.checksum_with(kind, data)),
            );
        }
    }
    group.finish();
}

fn bench_frame_sized_batches(c: &mut Criterion) {
    // MTU-sized frames through the batch API: the netsim per-frame shape.
    let frames: Vec<Vec<u8>> = (0..64u32)
        .map(|i| (0..1514u32).map(|j| (i * 7 + j * 13) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
    let total: u64 = refs.iter().map(|f| f.len() as u64).sum();
    let mut group = c.benchmark_group("crc_frame_batch");
    group.throughput(Throughput::Bytes(total));
    group.sample_size(20);
    for kind in [EngineKind::Slice8, EngineKind::Slice16, EngineKind::Clmul] {
        let crc = Crc::try_with_engine(catalog::CRC32_ISO_HDLC, kind).expect("valid catalog entry");
        group.bench_with_input(
            BenchmarkId::new("batch_1514B", kind.name()),
            &refs,
            |b, refs| b.iter(|| crc.checksum_batch(refs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_frame_sized_batches);
criterion_main!(benches);
