//! CRC engine throughput: bit-at-a-time reference vs 256-entry table vs
//! slice-by-8, across representative catalog algorithms (E14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crckit::{catalog, Crc};

fn bench_engines(c: &mut Criterion) {
    let data: Vec<u8> = (0..65_536u32).map(|i| (i * 31 + 7) as u8).collect();
    let mut group = c.benchmark_group("crc_engines");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(20);
    for params in [
        catalog::CRC32_ISO_HDLC,
        catalog::CRC32_ISCSI,
        catalog::CRC32_MEF,
        catalog::CRC32_BZIP2, // unreflected path
        catalog::CRC64_XZ,
        catalog::CRC16_ARC,
    ] {
        let crc = Crc::new(params);
        group.bench_with_input(
            BenchmarkId::new("slice8", params.name),
            &data,
            |b, data| b.iter(|| crc.checksum(data)),
        );
        group.bench_with_input(
            BenchmarkId::new("bytewise", params.name),
            &data,
            |b, data| b.iter(|| crc.checksum_bytewise(data)),
        );
        group.bench_with_input(
            BenchmarkId::new("bitwise", params.name),
            &data,
            |b, data| b.iter(|| crc.checksum_bitwise(data)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
