//! Survey-engine throughput measurement with a machine-readable trail.
//!
//! Runs the same exhaustive campaign (13-bit space, HD >= 4 screen at
//! 64 bits, profiles to 1024 bits) three ways and reports polynomials
//! screened per second:
//!
//! * **1 thread** — the single-worker baseline;
//! * **N threads** — the full worker pool (shards × atomic claim);
//! * **resumed ×4** — the same campaign split across four
//!   run/checkpoint/reopen cycles, measuring what the checkpoint
//!   protocol costs end to end.
//!
//! All three must produce byte-identical artifacts (asserted here), so
//! the numbers are comparable by construction. Writes
//! `BENCH_survey_throughput.json` so the trajectory stays diffable from
//! PR to PR.
//!
//! Usage: `cargo run --release -p crc-experiments --bin
//! survey_throughput [--width 13] [--reps 3] [--out PATH]`

use crc_experiments::arg_or;
use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::engine::Campaign;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn config(width: u32) -> CampaignConfig {
    CampaignConfig {
        width,
        shards: 32,
        seed: 1,
        mode: Mode::Exhaustive,
        min_hd: 4,
        target_lengths: vec![64, 1024],
        ber_grid: vec![1e-5, 1e-6],
        max_weight: 8,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("survey-throughput-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Median-of-`reps` polynomials/sec for one way of running the
/// campaign. `mode` keeps each measurement's directories disjoint —
/// the kept last-rep dirs are byte-compared across modes afterwards,
/// which only means something if the modes never share a path.
fn measure(reps: usize, width: u32, mode: &str, run: impl Fn(&PathBuf) -> u64) -> (f64, PathBuf) {
    let mut rates = Vec::new();
    let mut last_dir = PathBuf::new();
    for rep in 0..reps.max(1) {
        let dir = fresh_dir(&format!("{mode}-{width}-{rep}"));
        let start = Instant::now();
        let scanned = run(&dir);
        let rate = scanned as f64 / start.elapsed().as_secs_f64();
        rates.push(rate);
        if rep + 1 == reps.max(1) {
            last_dir = dir;
        } else {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    (rates[rates.len() / 2], last_dir)
}

fn main() {
    let width: u32 = arg_or("--width", 13);
    let reps: usize = arg_or("--reps", 3);
    let out_path: String = arg_or("--out", "BENCH_survey_throughput.json".to_string());
    let telemetry_out: String =
        arg_or("--telemetry-out", "BENCH_survey_telemetry.json".to_string());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cfg = config(width);
    println!(
        "survey_throughput: exhaustive {width}-bit campaign ({} polys, {} shards, \
         HD>={} at {} bits), {host_threads} host threads",
        cfg.space().total(),
        cfg.shards,
        cfg.min_hd,
        cfg.screen_len()
    );

    let (single, d1) = measure(reps, width, "single", |dir| {
        let mut c = Campaign::create(dir, config(width)).unwrap();
        c.run(1, None).unwrap().scanned
    });
    println!("  1 thread    : {single:>10.0} polys/s");

    let (pooled, dn) = measure(reps, width, "pooled", |dir| {
        let mut c = Campaign::create(dir, config(width)).unwrap();
        c.run(host_threads, None).unwrap().scanned
    });
    println!("  {host_threads} threads   : {pooled:>10.0} polys/s");

    let (resumed, dr) = measure(reps, width, "resumed", |dir| {
        // Four run/checkpoint/reopen cycles: the resume overhead at its
        // worst reasonable cadence.
        let quarters = config(width).shards.div_ceil(4);
        let mut c = Campaign::create(dir, config(width)).unwrap();
        let mut scanned = c.run(host_threads, Some(quarters)).unwrap().scanned;
        while !Campaign::open(dir).unwrap().is_complete() {
            let mut c = Campaign::open(dir).unwrap();
            scanned += c.run(host_threads, Some(quarters)).unwrap().scanned;
        }
        scanned
    });
    println!("  resumed ×4  : {resumed:>10.0} polys/s");

    // The three runs must agree byte-for-byte, or the numbers above are
    // comparing different work.
    for shard in 0..cfg.shards {
        let a = std::fs::read(Campaign::open(&d1).unwrap().shard_log_path(shard)).unwrap();
        for dir in [&dn, &dr] {
            let b = std::fs::read(Campaign::open(dir).unwrap().shard_log_path(shard)).unwrap();
            assert_eq!(a, b, "shard {shard} diverged between modes");
        }
    }
    let survivors = Campaign::open(&d1).unwrap().survivors().unwrap().len();
    println!(
        "modes byte-identical across {} shards; {survivors} survivors",
        cfg.shards
    );
    for dir in [&d1, &dn, &dr] {
        let _ = std::fs::remove_dir_all(dir);
    }

    let speedup = pooled / single;
    let resume_cost = pooled / resumed;
    println!(
        "\npool ×{host_threads} vs 1 thread: {speedup:.2}x; checkpoint/resume ×4 costs {:.1}%",
        (resume_cost - 1.0) * 100.0
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"survey_throughput\",").unwrap();
    writeln!(json, "  \"unit\": \"polys/s\",").unwrap();
    writeln!(
        json,
        "  \"scenario\": \"exhaustive {width}-bit campaign, HD>={} at {} bits, profiles to {}\",",
        cfg.min_hd,
        cfg.screen_len(),
        cfg.ref_len()
    )
    .unwrap();
    writeln!(json, "  \"space\": {},", cfg.space().total()).unwrap();
    writeln!(json, "  \"shards\": {},", cfg.shards).unwrap();
    writeln!(json, "  \"survivors\": {survivors},").unwrap();
    writeln!(json, "  \"host_threads\": {host_threads},").unwrap();
    writeln!(json, "  \"pool_speedup\": {speedup:.3},").unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    let rows = [
        ("single", 1usize, single),
        ("pooled", host_threads, pooled),
        ("resumed_x4", host_threads, resumed),
    ];
    for (i, (mode, threads, rate)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"mode\": \"{mode}\", \"threads\": {threads}, \
             \"polys_per_s\": {rate:.0}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // Screening-funnel and index telemetry accumulated across every run
    // above: candidates→hd_pass→profiled→weights→recorded counts, shard
    // timing, and PosMap/two-level occupancy. Diffable like the trail.
    telemetry::global()
        .write_snapshot(std::path::Path::new(&telemetry_out))
        .expect("write telemetry snapshot");
    println!("wrote {telemetry_out}");
}
