//! The paper's §4.3/§4.4 application studies: the iSCSI polynomial choice,
//! jumbo frames, and application-level CRCs — quantified with exact
//! weights and exercised end-to-end through the netsim substrate.
//!
//! Usage: `cargo run --release -p crc-experiments --bin applications
//! [--trials 20000]`

use crc_experiments::{arg_or, poly};
use crc_hd::profile::HdProfile;
use crc_hd::report::TextTable;
use crc_hd::weights::weights234;
use crckit::catalog;
use netsim::channel::{BurstChannel, GilbertElliottChannel};
use netsim::frame::{FrameCodec, IscsiPdu};
use netsim::montecarlo::{Simulator, TrialConfig};

fn main() {
    let trials: u64 = arg_or("--trials", 20_000);

    // ---- §4.3: the iSCSI candidate comparison ---------------------------
    println!("[iSCSI] HD and exact W4 at key message sizes (data-word bits):\n");
    let sizes = [4_096u32, 12_112, 16_360, 72_112, 114_663];
    let candidates = [
        (0x8F6E37A0u64, "CRC-32C (iSCSI draft, Sheinwald00)"),
        (0xBA0DC66B, "0xBA0DC66B (paper's proposal)"),
        (0x82608EDB, "IEEE 802.3 (legacy baseline)"),
    ];
    let mut t = TextTable::new(
        std::iter::once("size".to_string())
            .chain(candidates.iter().map(|(_, name)| name.to_string())),
    );
    let profiles: Vec<(u64, HdProfile)> = candidates
        .iter()
        .map(|&(k, _)| (k, HdProfile::compute(&poly(k), 131_072).expect("profile")))
        .collect();
    for size in sizes {
        let mut row = vec![size.to_string()];
        for (k, p) in &profiles {
            let _ = k;
            row.push(format!("HD={}", p.hd_at(size).unwrap_or(17)));
        }
        t.push_row(row);
    }
    println!("{}", t.render());
    let mtu = 12_112;
    let ba = &profiles[1].1;
    let cast = &profiles[0].1;
    assert_eq!(ba.hd_at(mtu), Some(6));
    assert_eq!(cast.hd_at(mtu), Some(4));
    println!(
        "§4.3 reproduced: the {{1,3,28}} polynomial gives two extra bits of HD at the\n\
         MTU and keeps HD=4 to {} bits (>9 MTUs), vs CRC-32C's HD=4-at-MTU.\n",
        ba.max_len_for_hd(4).unwrap()
    );

    // Exact W4 at the MTU for the two iSCSI candidates.
    for (k, name) in &candidates[..2] {
        let w = weights234(&poly(*k), mtu).expect("below order");
        println!("  {name}: W4(MTU) = {}", w.w4);
    }

    // ---- §4.4: jumbo frames ---------------------------------------------
    println!("\n[jumbo] 9000-byte jumbo payload = 72112-bit data word:");
    for (k, p) in &profiles {
        println!("  0x{k:08X}: HD={:?} at 72112 bits", p.hd_at(72_112));
    }
    println!(
        "  both modern candidates hold HD=4 at jumbo sizes; 802.3 does too (to 91607),\n\
         matching the paper's observation that jumbo packets reuse the legacy CRC.\n"
    );

    // ---- End-to-end PDU exercise over bursty channels -------------------
    // Sharded batch engine, all cores; same seed => same table anywhere.
    let sim = Simulator::new();
    println!("[netsim] iSCSI-like PDUs over a Gilbert–Elliott channel ({trials} trials):");
    let mut t = TextTable::new([
        "digest",
        "clean",
        "detected",
        "undetected",
        "95% rate bound",
    ]);
    for (pdu_name, params) in [
        ("CRC-32C", catalog::CRC32_ISCSI),
        ("0xBA0DC66B/MEF", catalog::CRC32_MEF),
    ] {
        let codec = FrameCodec::new(params);
        let ch = GilbertElliottChannel::new(5e-5, 5e-3, 1e-7, 5e-3);
        let stats = sim.run(
            &codec,
            &ch,
            &TrialConfig {
                payload_len: 1_514,
                trials,
                seed: 0x15C5,
            },
        );
        assert_eq!(
            stats.undetected, 0,
            "32-bit CRCs see no undetected events at this scale"
        );
        let bound = stats
            .undetected_ci95()
            .map(|(_, hi)| format!("< {hi:.1e}"))
            .unwrap_or_else(|| "n/a".to_string());
        t.push_row([
            pdu_name.to_string(),
            stats.clean.to_string(),
            stats.detected.to_string(),
            stats.undetected.to_string(),
            bound,
        ]);
    }
    println!("{}", t.render());

    // Burst guarantee across a full PDU.
    let pdu = IscsiPdu::koopman();
    let wire = pdu.encode(b"op", &vec![0u8; 4096]);
    let codec = FrameCodec::new(catalog::CRC32_MEF);
    let stats = sim.run(
        &codec,
        &BurstChannel::new(32),
        &TrialConfig {
            payload_len: wire.len() - 4,
            trials: trials / 4,
            seed: 0xB025,
        },
    );
    assert_eq!(stats.undetected, 0);
    println!(
        "burst check: {} bursts ≤ 32 bits across a {}-byte PDU — all detected,\n\
         the guarantee the paper notes \"remains intact for all the codes we consider\".",
        stats.detected,
        wire.len()
    );
    println!(
        "\n[Stone00] For application-level integrity the same profiles apply at the\n\
         application's record size: pick from Table 1 with `HdProfile` (see the\n\
         pick_best_poly example)."
    );
}
