//! Reproduces the paper's §2 worked example: the exact undetected-error
//! weights of the eight polynomials at the Ethernet MTU data-word length
//! (12112 bits) — including the headline `W₄ = 223,059` for IEEE 802.3.
//!
//! A Monte-Carlo cross-check rides the sharded netsim engine: weighted
//! trials at the MTU confirm by simulation that the HD=6 candidates
//! detect every ≤5-bit error the exact weights say they must.
//!
//! Usage: `cargo run --release -p crc-experiments --bin weights_mtu
//! [--len 12112] [--confirm-trials 40000]`

use crc_experiments::{arg_or, poly, PAPER_POLYS};
use crc_hd::report::{with_commas, TextTable};
use crc_hd::weights::{undetected_fraction, weights234};
use crckit::CrcParams;
use netsim::frame::FrameCodec;
use netsim::montecarlo::Simulator;
use std::time::Instant;

fn main() {
    let len: u32 = arg_or("--len", 12_112);
    println!(
        "Exact weights at {len}-bit data words ({}-bit codewords):\n",
        len + 32
    );

    let mut t = TextTable::new(["poly", "class", "W2", "W3", "W4", "W4 / C(n+32,4)"]);
    for (k, _, class) in PAPER_POLYS {
        let g = poly(k);
        let t0 = Instant::now();
        let w = weights234(&g, len).expect("length below polynomial order");
        let frac = undetected_fraction(w.w4, w.codeword_len, 4);
        t.push_row([
            format!("0x{k:08X}"),
            class.to_string(),
            with_commas(w.w2),
            with_commas(w.w3),
            with_commas(w.w4),
            if w.w4 == 0 {
                "0".to_string()
            } else {
                format!("{frac:.3e}")
            },
        ]);
        eprintln!("  0x{k:08X} in {:.2}s", t0.elapsed().as_secs_f64());
    }
    println!("{}", t.render());

    if len == 12_112 {
        let ieee = weights234(&poly(0x82608EDB), len).expect("in range");
        assert_eq!(
            (ieee.w2, ieee.w3, ieee.w4),
            (0, 0, 223_059),
            "paper §2: 802.3 weights at MTU are {{W2=0; W3=0; W4=223059}}"
        );
        let frac = undetected_fraction(ieee.w4, ieee.codeword_len, 4);
        println!(
            "802.3 W4 = 223,059 reproduced exactly; undetected fraction {frac:.3e} \
             ≈ {:.2} × 2⁻³² (paper: \"slightly more than 1 out of every 2^32\")",
            frac * 2f64.powi(32)
        );
        // And the improved polynomials detect all 4-bit errors at MTU.
        for k in [0xBA0DC66Bu64, 0xFA567D89, 0x992C1A4C, 0x90022004] {
            let w = weights234(&poly(k), len).expect("in range");
            assert_eq!(w.w4, 0, "0x{k:08X} must have W4 = 0 at the MTU");
        }
        println!("HD=6 candidates confirmed: W2 = W3 = W4 = 0 at the MTU for all four.");

        // ---- Monte-Carlo cross-check on the sharded engine --------------
        // W4 = 0 is an exhaustive claim; simulation can still corroborate
        // it: random weight-4 (and 5) patterns over MTU frames must all be
        // detected. The 802.3 baseline's W4 = 223,059 predicts a rate of
        // ~2.5e-10 — invisible at this trial count, so its Wilson bound
        // merely stays consistent with the exact fraction.
        let confirm_trials: u64 = arg_or("--confirm-trials", 40_000);
        let sim = Simulator::new();
        println!(
            "\nMonte-Carlo corroboration ({confirm_trials} weighted trials each, \
             sharded engine):"
        );
        for (name, koopman) in [
            ("0xBA0DC66B (paper)", 0xBA0DC66Bu64),
            ("IEEE 802.3", 0x82608EDB),
        ] {
            let params = CrcParams::new(name, 32, poly(koopman).normal())
                .expect("paper polynomial is valid");
            let codec = FrameCodec::new(params);
            for k in [4u32, 5] {
                let stats = sim.run_weighted(
                    &codec,
                    len as usize / 8,
                    k,
                    confirm_trials,
                    0x3EED + k as u64,
                );
                let (_, hi) = stats.undetected_ci95().expect("all frames corrupted");
                println!(
                    "  {name}: weight-{k} errors, {} undetected / {} (95% rate bound < {hi:.1e})",
                    stats.undetected,
                    stats.total()
                );
                assert_eq!(
                    stats.undetected, 0,
                    "{name}: an undetected low-weight error at the MTU contradicts the \
                     weight analysis at this trial count"
                );
            }
        }
    }
}
