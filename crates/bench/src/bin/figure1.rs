//! Regenerates **Figure 1** of the paper: HD-vs-length curves for the
//! eight polynomials, emitted as CSV suitable for plotting (step curves
//! with one row per band edge, plus the paper's marked packet sizes).
//!
//! Usage: `cargo run --release -p crc-experiments --bin figure1
//! [--max-len 131072]`
//!
//! With `--exact [--exact-len 1024]` the binary instead extends the
//! figure's P_ud methodology past its W₂–W₄ truncation: exact
//! full-distribution undetected-error probabilities for 8- and 16-bit
//! generators across the BER decades, emitted as CSV next to the
//! truncated values, with the truncation bound asserted at every grid
//! point and curves reaching P_ud ≤ 1e-30 (a regime Monte-Carlo
//! sampling cannot touch).

use crc_experiments::{arg_or, poly, MARKED_LENGTHS, PAPER_POLYS};
use crc_hd::distribution::distribution;
use crc_hd::profile::HdProfile;
use crc_hd::report::TextTable;
use crc_hd::{weights, GenPoly, SyndromeWorkspace};

/// Explicit multiply chain (no `powi`/libm: output bytes must not
/// depend on the host, matching the survey's P_ud rule).
fn powu(base: f64, exp: u32) -> f64 {
    let mut r = 1.0;
    for _ in 0..exp {
        r *= base;
    }
    r
}

/// The generators of the exact-P_ud section: every width ≤ 16 catalog
/// polynomial the repo's other harnesses exercise.
const EXACT_POLYS: [(u32, u64, &str); 4] = [
    (8, 0x07, "CRC-8 SMBus"),
    (8, 0x9B, "CRC-8 0x9B"),
    (16, 0x1021, "CCITT-16"),
    (16, 0x8005, "CRC-16 ARC"),
];

/// The BER decades of the exact grid — down to where exact P_ud passes
/// 1e-30.
const EXACT_BERS: [f64; 8] = [1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9];

fn run_exact(exact_len: u32) {
    let mut ws = SyndromeWorkspace::new();
    let mut table = TextTable::new(["poly", "name", "data_len", "ber", "p_ud_exact", "p_ud_w234"]);
    let mut deepest = f64::INFINITY;
    for (width, normal, name) in EXACT_POLYS {
        let g = GenPoly::from_normal(width, normal).expect("catalog generator");
        // weights234's counting argument needs the codeword within the
        // multiplicative order; the full distribution has no such
        // restriction, but the comparison leg does.
        let order = ws.order(&g);
        let n = exact_len.min((order as u32).saturating_sub(width)).max(1);
        let dist = distribution(&g, n).expect("within budget");
        let w = weights::weights234(&g, n).expect("length capped to the order");
        let l = n + width;
        for ber in EXACT_BERS {
            let exact = dist.p_ud(ber);
            let q = 1.0 - ber;
            let term = |count: u128, k: u32| count as f64 * powu(ber, k) * powu(q, l - k);
            let truncated = term(w.w2, 2) + term(w.w3, 3) + term(w.w4, 4);
            // Truncation only drops nonnegative weight ≥ 5 terms …
            assert!(
                truncated <= exact * (1.0 + 1e-9),
                "{name} ber {ber}: truncated {truncated} above exact {exact}"
            );
            // … and those are bounded by the geometric tail of the
            // binomial envelope: Σ_{k≥5} C(L,k) εᵏ q^(L−k) ≤
            // T₅ / (1 − ρ) when the term ratio ρ stays below one.
            let c_l5 = (0..5).fold(1.0f64, |acc, i| acc * (l - i) as f64 / (i + 1) as f64);
            let term5 = c_l5 * powu(ber, 5) * powu(q, l - 5);
            let rho = (l - 5) as f64 / 6.0 * ber / q;
            let tail = if rho < 1.0 { term5 / (1.0 - rho) } else { 1.0 };
            assert!(
                exact - truncated <= tail,
                "{name} ber {ber}: gap {} above truncation bound {tail}",
                exact - truncated
            );
            deepest = deepest.min(if exact > 0.0 { exact } else { f64::INFINITY });
            table.push_row([
                format!("{normal:#06x}"),
                name.to_string(),
                n.to_string(),
                format!("{ber:e}"),
                format!("{exact:e}"),
                format!("{truncated:e}"),
            ]);
        }
    }
    print!("{}", table.to_csv());
    assert!(
        deepest <= 1e-30,
        "exact curves must reach past Monte-Carlo territory, deepest {deepest:e}"
    );
    eprintln!("deepest nonzero exact P_ud on the grid: {deepest:e} (≤ 1e-30: OK)");
}

fn main() {
    if std::env::args().any(|a| a == "--exact") {
        run_exact(arg_or("--exact-len", 1024));
        return;
    }
    let max_len: u32 = arg_or("--max-len", 131_072);

    let profiles: Vec<(u64, HdProfile)> = PAPER_POLYS
        .iter()
        .map(|&(k, _, _)| {
            (
                k,
                HdProfile::compute(&poly(k), max_len).expect("profile within budget"),
            )
        })
        .collect();

    // CSV: one step-curve per polynomial, through the report emitter so
    // every cell obeys the workspace's one escaping rule.
    let mut curve = TextTable::new(["poly", "length_bits", "hd"]);
    for (k, p) in &profiles {
        for band in p.bands() {
            let hd = band
                .hd
                .map(|h| h.to_string())
                .unwrap_or_else(|| "hi".into());
            curve.push_row([format!("0x{k:08X}"), band.from.to_string(), hd.clone()]);
            curve.push_row([format!("0x{k:08X}"), band.to.to_string(), hd]);
        }
    }
    print!("{}", curve.to_csv());

    // The annotated packet sizes from the figure's x-axis.
    let mut t = TextTable::new(
        std::iter::once("length".to_string())
            .chain(std::iter::once("label".to_string()))
            .chain(PAPER_POLYS.iter().map(|(k, _, _)| format!("{k:08X}"))),
    );
    for (len, label) in MARKED_LENGTHS {
        if len > max_len {
            continue;
        }
        let mut row = vec![len.to_string(), label.to_string()];
        for (_, p) in &profiles {
            let hd = p
                .hd_at(len)
                .map(|h| h.to_string())
                .unwrap_or_else(|| "hi".into());
            row.push(hd);
        }
        t.push_row(row);
    }
    eprintln!("\nHD at the paper's marked message sizes:\n{}", t.render());

    // Shape claims of the figure (who wins where).
    let get = |k: u64| &profiles.iter().find(|(pk, _)| *pk == k).unwrap().1;
    let mtu = 12_112u32.min(max_len);
    let ba = get(0xBA0DC66B);
    let cast = get(0x8F6E37A0);
    let ieee = get(0x82608EDB);
    eprintln!("shape checks at 1 MTU ({mtu} bits):");
    eprintln!(
        "  0xBA0DC66B HD={:?} vs CRC-32C HD={:?} vs 802.3 HD={:?}",
        ba.hd_at(mtu),
        cast.hd_at(mtu),
        ieee.hd_at(mtu)
    );
    assert!(ba.hd_at(mtu) >= cast.hd_at(mtu));
    assert!(cast.hd_at(mtu) >= ieee.hd_at(mtu));
    eprintln!("  OK: BA0DC66B ≥ CRC-32C ≥ 802.3 at the MTU, as in Figure 1");
}
