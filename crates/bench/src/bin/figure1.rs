//! Regenerates **Figure 1** of the paper: HD-vs-length curves for the
//! eight polynomials, emitted as CSV suitable for plotting (step curves
//! with one row per band edge, plus the paper's marked packet sizes).
//!
//! Usage: `cargo run --release -p crc-experiments --bin figure1
//! [--max-len 131072]`

use crc_experiments::{arg_or, poly, MARKED_LENGTHS, PAPER_POLYS};
use crc_hd::profile::HdProfile;
use crc_hd::report::TextTable;

fn main() {
    let max_len: u32 = arg_or("--max-len", 131_072);

    let profiles: Vec<(u64, HdProfile)> = PAPER_POLYS
        .iter()
        .map(|&(k, _, _)| {
            (
                k,
                HdProfile::compute(&poly(k), max_len).expect("profile within budget"),
            )
        })
        .collect();

    // CSV: one step-curve per polynomial, through the report emitter so
    // every cell obeys the workspace's one escaping rule.
    let mut curve = TextTable::new(["poly", "length_bits", "hd"]);
    for (k, p) in &profiles {
        for band in p.bands() {
            let hd = band
                .hd
                .map(|h| h.to_string())
                .unwrap_or_else(|| "hi".into());
            curve.push_row([format!("0x{k:08X}"), band.from.to_string(), hd.clone()]);
            curve.push_row([format!("0x{k:08X}"), band.to.to_string(), hd]);
        }
    }
    print!("{}", curve.to_csv());

    // The annotated packet sizes from the figure's x-axis.
    let mut t = TextTable::new(
        std::iter::once("length".to_string())
            .chain(std::iter::once("label".to_string()))
            .chain(PAPER_POLYS.iter().map(|(k, _, _)| format!("{k:08X}"))),
    );
    for (len, label) in MARKED_LENGTHS {
        if len > max_len {
            continue;
        }
        let mut row = vec![len.to_string(), label.to_string()];
        for (_, p) in &profiles {
            let hd = p
                .hd_at(len)
                .map(|h| h.to_string())
                .unwrap_or_else(|| "hi".into());
            row.push(hd);
        }
        t.push_row(row);
    }
    eprintln!("\nHD at the paper's marked message sizes:\n{}", t.render());

    // Shape claims of the figure (who wins where).
    let get = |k: u64| &profiles.iter().find(|(pk, _)| *pk == k).unwrap().1;
    let mtu = 12_112u32.min(max_len);
    let ba = get(0xBA0DC66B);
    let cast = get(0x8F6E37A0);
    let ieee = get(0x82608EDB);
    eprintln!("shape checks at 1 MTU ({mtu} bits):");
    eprintln!(
        "  0xBA0DC66B HD={:?} vs CRC-32C HD={:?} vs 802.3 HD={:?}",
        ba.hd_at(mtu),
        cast.hd_at(mtu),
        ieee.hd_at(mtu)
    );
    assert!(ba.hd_at(mtu) >= cast.hd_at(mtu));
    assert!(cast.hd_at(mtu) >= ieee.hd_at(mtu));
    eprintln!("  OK: BA0DC66B ≥ CRC-32C ≥ 802.3 at the MTU, as in Figure 1");
}
