//! Exact-distribution throughput: per-polynomial cost of the full
//! weight distribution (`crc_hd::distribution`) across the kernel
//! regimes, with a machine-readable trail.
//!
//! Three scenario groups:
//!
//! * **13-bit survey width at 1024 bits** (FWHT kernel): the survey's
//!   exact-P_ud axis cost, measured over a fixed candidate batch.
//! * **16-bit catalog generators at 1024 bits** (FWHT kernel at its
//!   widest routine width): CCITT-16 and CRC-16/ARC.
//! * **24-bit generator at 256 bits** (bitsliced 64-lane sweep — the
//!   kernel the FWHT path hands over to past width 20).
//!
//! Every scenario asserts the distribution against an independent
//! oracle (`weights234` / `weight2`) before timing is trusted. Writes
//! `BENCH_distribution_throughput.json` (uploaded by the CI
//! `throughput-trail` job) so the trajectory stays diffable from PR to
//! PR.
//!
//! Usage: `cargo run --release -p crc-experiments --bin
//! distribution_throughput [--reps 3] [--out PATH]`

use crc_experiments::arg_or;
use crc_hd::distribution::distribution;
use crc_hd::search::PolySpace;
use crc_hd::{weights, GenPoly};
use std::fmt::Write as _;
use std::time::Instant;

/// Median-of-`reps` wall time for `run`, in seconds.
fn measure(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut times = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    scenario: &'static str,
    kernel: &'static str,
    per_poly_ms: f64,
}

/// Pins a freshly computed distribution against the closed-form
/// low-weight oracle at the same length.
fn check_against_weights234(g: &GenPoly, data_len: u32) {
    let d = distribution(g, data_len).expect("within budget");
    let w = weights::weights234(g, data_len).expect("length within the order");
    assert_eq!(d.count_u128(2), Some(w.w2), "{g} W2 at {data_len}");
    assert_eq!(d.count_u128(3), Some(w.w3), "{g} W3 at {data_len}");
    assert_eq!(d.count_u128(4), Some(w.w4), "{g} W4 at {data_len}");
}

fn main() {
    let reps: usize = arg_or("--reps", 3);
    let out_path: String = arg_or("--out", "BENCH_distribution_throughput.json".to_string());
    let mut rows: Vec<Row> = Vec::new();
    let push = |rows: &mut Vec<Row>, scenario, kernel, secs: f64, polys: usize| {
        let per_poly_ms = secs * 1e3 / polys as f64;
        println!("  {scenario:<22} {kernel:<10} {per_poly_ms:>9.3} ms/poly");
        rows.push(Row {
            scenario,
            kernel,
            per_poly_ms,
        });
    };

    // ---- 13-bit survey width at 1024 bits (FWHT) ----
    let space = PolySpace::new(13);
    let batch: Vec<GenPoly> = space
        .iter_range(0, 200)
        .filter(|g| g.koopman() <= g.reciprocal().koopman() && 1024 + 13 <= crc_hd::dmin::dmin2(g))
        .take(8)
        .collect();
    assert!(batch.len() >= 4, "enough survey candidates to time");
    println!(
        "full distribution at 1024 bits, 13-bit survey width ({} polys):",
        batch.len()
    );
    for g in &batch {
        check_against_weights234(g, 1024);
    }
    let t = measure(reps, || {
        for g in &batch {
            let d = distribution(g, 1024).expect("within budget");
            assert!(d.hd().is_some());
        }
    });
    push(&mut rows, "dist_survey13_1024", "fwht", t, batch.len());

    // ---- 16-bit catalog generators at 1024 bits (FWHT) ----
    let polys16 = [
        GenPoly::from_normal(16, 0x1021).unwrap(),
        GenPoly::from_normal(16, 0x8005).unwrap(),
    ];
    println!("full distribution at 1024 bits, 16-bit catalog generators:");
    for g in &polys16 {
        check_against_weights234(g, 1024);
    }
    let t = measure(reps, || {
        for g in &polys16 {
            let d = distribution(g, 1024).expect("within budget");
            assert!(d.hd().is_some());
        }
    });
    push(&mut rows, "dist_16bit_1024", "fwht", t, polys16.len());

    // ---- 24-bit generator at 256 bits (bitsliced sweep) ----
    let g24 = GenPoly::from_normal(24, 0x86_4CFB).unwrap(); // CRC-24/OpenPGP
    println!("full distribution at 256 bits, 24-bit generator:");
    let d = distribution(&g24, 256).expect("within budget");
    // The exhaustive cross-check cannot reach width 24; W₂ has a
    // closed form at any length and the low weights pin HD.
    assert_eq!(
        d.count_u128(2),
        Some(weights::weight2(&g24, 256).unwrap()),
        "W2 oracle at 256 bits"
    );
    assert!(d.hd().is_some());
    let t = measure(reps, || {
        let d = distribution(&g24, 256).expect("within budget");
        assert!(d.hd().is_some());
    });
    push(&mut rows, "dist_24bit_256", "bitsliced", t, 1);

    // ---- JSON trail ----
    let per = |scenario: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario)
            .expect("row exists")
            .per_poly_ms
    };
    println!(
        "\nsurvey-width distribution: {:.2} ms/poly; 16-bit: {:.2} ms/poly; \
         24-bit bitsliced: {:.2} ms/poly",
        per("dist_survey13_1024"),
        per("dist_16bit_1024"),
        per("dist_24bit_256")
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"distribution_throughput\",").unwrap();
    writeln!(json, "  \"unit\": \"ms/poly\",").unwrap();
    writeln!(json, "  \"survey_width\": 13,").unwrap();
    writeln!(json, "  \"survey_len\": 1024,").unwrap();
    writeln!(
        json,
        "  \"clmul_active\": {},",
        crc_hd::gf2x::clmul_active()
    )
    .unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"kernel\": \"{}\", \"per_poly_ms\": {:.4}}}{comma}",
            r.scenario, r.kernel, r.per_poly_ms
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
