//! Regenerates **Table 1** of the paper: the data-word lengths at which
//! each of the eight polynomials achieves each Hamming distance, computed
//! exactly to 131,072 bits (128 Kbits, the paper's horizon).
//!
//! Usage: `cargo run --release -p crc-experiments --bin table1
//! [--max-len 131072] [--extras 1]`
//!
//! `--extras 1` appends the misprinted Castagnoli constant from §3.

use crc_experiments::{arg_or, poly, PAPER_POLYS, TABLE1_ANCHORS};
use crc_hd::profile::HdProfile;
use crc_hd::report::TextTable;
use std::time::Instant;

fn main() {
    let max_len: u32 = arg_or("--max-len", 131_072);
    let extras: u32 = arg_or("--extras", 0);

    let mut polys: Vec<(u64, String)> = PAPER_POLYS
        .iter()
        .map(|&(k, label, class)| (k, format!("{label} {class}")))
        .collect();
    if extras > 0 {
        polys.push((0xFB56_7D89, "Castagnoli93 misprint {1,1,2,28}".into()));
    }

    println!("Table 1 reproduction: HD vs data-word length (bits), r = 32, to {max_len} bits\n");

    // Profiles are independent; split across two worker threads (the box
    // the experiments run on has two cores).
    let t0 = Instant::now();
    let profiles: Vec<(u64, String, HdProfile)> = {
        let results = parking_lot::Mutex::new(Vec::new());
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|_| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some((k, label)) = polys.get(i) else {
                        return;
                    };
                    let t = Instant::now();
                    let p = HdProfile::compute(&poly(*k), max_len).expect("profile within budget");
                    eprintln!(
                        "  computed 0x{k:08X} in {:.2}s (order {})",
                        t.elapsed().as_secs_f64(),
                        p.order()
                    );
                    results.lock().push((*k, label.clone(), p));
                });
            }
        })
        .expect("profile workers");
        let mut v = results.into_inner();
        v.sort_by_key(|&(k, _, _)| polys.iter().position(|&(p, _)| p == k));
        v
    };
    eprintln!("total profile time: {:.2}s\n", t0.elapsed().as_secs_f64());

    // Per-polynomial band tables (the content of Table 1, one column each).
    for (k, label, p) in &profiles {
        let mut t = TextTable::new(["HD", "from (bits)", "to (bits)"]);
        for band in p.bands().iter().rev() {
            let hd = band
                .hd
                .map(|h| h.to_string())
                .unwrap_or_else(|| format!(">{}", p.max_weight_explored()));
            let to = if band.to == max_len {
                format!("{}+", band.to)
            } else {
                band.to.to_string()
            };
            t.push_row([hd, band.from.to_string(), to]);
        }
        println!("0x{k:08X}  {label}   (order of x: {})", p.order());
        println!("{}", t.render());
    }

    // Summary matrix like the published table: rows HD, columns polys.
    let hds: Vec<u32> = (2..=15).rev().collect();
    let mut matrix = TextTable::new(
        std::iter::once("HD".to_string())
            .chain(profiles.iter().map(|(k, _, _)| format!("{k:08X}"))),
    );
    for hd in hds {
        let mut row = vec![hd.to_string()];
        for (_, _, p) in &profiles {
            let cell = p
                .bands()
                .iter()
                .find(|b| b.hd == Some(hd))
                .map(|b| format!("{}-{}", b.from, b.to))
                .unwrap_or_default();
            row.push(cell);
        }
        matrix.push_row(row);
    }
    println!(
        "Summary (lengths in bits achieving each HD):\n{}",
        matrix.render()
    );

    // Verify the paper's published anchors.
    let mut ok = 0;
    let mut bad = 0;
    for (k, hd, expect) in TABLE1_ANCHORS {
        if expect > max_len {
            continue;
        }
        let p = &profiles.iter().find(|(pk, _, _)| *pk == k).unwrap().2;
        let got = p.max_len_for_hd(hd);
        if got == Some(expect) {
            ok += 1;
        } else {
            bad += 1;
            println!("ANCHOR MISMATCH: 0x{k:08X} HD={hd}: paper {expect}, computed {got:?}");
        }
    }
    println!("paper anchors verified: {ok} matched, {bad} mismatched");
    if bad > 0 {
        std::process::exit(1);
    }
}
