//! Reproduces **Table 2** of the paper at laptop scale: the census of
//! polynomials achieving HD=6 at the Ethernet MTU, by factorization class.
//!
//! The paper's numbers come from a 3-month, ~80-machine exhaustive search;
//! this binary substitutes stratified random sampling within each class
//! (exact class sizes × sampled HD=6 density, with Wilson 95% intervals) —
//! the substitution is documented in DESIGN.md §4. Classes whose density
//! is below the sampling resolution are reported as upper bounds.
//!
//! Usage: `cargo run --release -p crc-experiments --bin table2
//! [--samples 2000] [--len 12112] [--seed 2002]`

use crc_hd::report::{with_commas, TextTable};
use crc_hd::search::class_census;
use gf2poly::FactorClass;
use std::time::Instant;

fn main() {
    let samples: u64 = crc_experiments::arg_or("--samples", 2_000);
    let len: u32 = crc_experiments::arg_or("--len", 12_112);
    let seed: u64 = crc_experiments::arg_or("--seed", 2_002);

    println!(
        "Table 2 reproduction: HD=6 census at {len}-bit data words, \
         {samples} samples/class (seed {seed})\n"
    );
    // The paper's census counts one representative per reciprocal pair
    // (its search space is the 2^30 deduplicated polynomials), while class
    // sampling measures full-space density; reciprocals preserve both the
    // class and the HD profile, so the paper's count is half the
    // full-space count (palindromes are negligible).
    let mut t = TextTable::new([
        "class",
        "class size",
        "hits/samples",
        "est. full-space",
        "est. canonical (÷2)",
        "95% CI (canonical)",
        "paper",
    ]);
    let mut total_est = 0.0;
    let mut paper_total = 0u64;
    for (class, paper_count) in FactorClass::table2_classes() {
        let t0 = Instant::now();
        let est = class_census(&class, len, 6, samples, seed, 2).expect("census in budget");
        eprintln!(
            "  {} sampled in {:.1}s ({} hits)",
            est.class,
            t0.elapsed().as_secs_f64(),
            est.hits
        );
        // All sampled survivors must carry the parity factor (§4.2).
        for g in &est.examples {
            assert!(g.divisible_by_x_plus_1());
        }
        total_est += est.estimate;
        paper_total += paper_count;
        let ci = if est.hits == 0 {
            format!("< {:.0}", est.ci95.1 / 2.0)
        } else {
            format!("{:.0} – {:.0}", est.ci95.0 / 2.0, est.ci95.1 / 2.0)
        };
        t.push_row([
            est.class.clone(),
            with_commas(est.class_size),
            format!("{}/{}", est.hits, est.samples),
            format!("{:.0}", est.estimate),
            format!("{:.0}", est.estimate / 2.0),
            ci,
            with_commas(paper_count as u128),
        ]);
    }
    println!("{}", t.render());
    println!(
        "estimated canonical total: {:.0}   paper total: {} (Table 2 sums to 21,392; \
         the prose says 21,292 — see EXPERIMENTS.md)",
        total_est / 2.0,
        with_commas(paper_total as u128)
    );
    println!(
        "\nNote: {{1,1,15,15}} and {{1,3,14,14}} dominate the census in both the paper\n\
         and the estimate; classes with density below ~1/samples appear as bounds."
    );
}
