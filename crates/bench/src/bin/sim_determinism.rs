//! Exact-count dump of a fixed Monte-Carlo suite, for determinism checks.
//!
//! Runs the simulator over a fixed set of scenarios at the given worker
//! thread count and execution mode and writes every tally as JSON. CI's
//! `sim-determinism` job runs this four times — `--threads 1` and
//! `--threads 4`, each in `--mode sharded` and `--mode pipelined` — and
//! requires all outputs byte-identical: the engine's results must be a
//! pure function of the seed, never of the thread schedule or of whether
//! the produce/consume stages were pipelined. Thread count and mode are
//! deliberately *not* recorded in the JSON so the files diff directly.
//!
//! The suite covers both engine paths: content-independent channels on
//! the XOR-delta fast path and content-dependent ones (jammer, stuffing
//! slips, length errors) on the eager path.
//!
//! Usage: `cargo run --release -p crc-experiments --bin sim_determinism
//! [--threads N] [--mode sharded|pipelined] [--out PATH]`

use crckit::catalog;
use netsim::channel::{
    BscChannel, BurstChannel, Channel, GilbertElliottChannel, JammerChannel, StuffingChannel,
    TruncationChannel,
};
use netsim::frame::FrameCodec;
use netsim::imix::TrafficMix;
use netsim::montecarlo::{Simulator, TrialConfig, TrialStats};
use std::fmt::Write as _;

use crc_experiments::arg_or;

fn stats_json(name: &str, seed: u64, s: &TrialStats) -> String {
    format!(
        "    {{\"scenario\": \"{name}\", \"seed\": {seed}, \"clean\": {}, \"detected\": {}, \
         \"undetected\": {}, \"bits_flipped\": {}}}",
        s.clean, s.detected, s.undetected, s.bits_flipped
    )
}

fn main() {
    let threads: usize = arg_or("--threads", 0);
    let mode: String = arg_or("--mode", "sharded".to_string());
    let out_path: String = arg_or("--out", "sim_determinism.json".to_string());
    let mut sim = Simulator::new().threads(threads);
    match mode.as_str() {
        "sharded" => {}
        "pipelined" => sim = sim.pipelined(),
        other => panic!("unknown --mode {other:?} (expected sharded|pipelined)"),
    }

    let mut rows: Vec<String> = Vec::new();

    // Random traffic: delta-path channel families first, then the
    // content-dependent suite exercising the eager path.
    let scenarios: [(&str, Box<dyn Channel>, TrialConfig); 6] = [
        (
            "bsc_1e-4_mtu",
            Box::new(BscChannel::new(1e-4)),
            TrialConfig {
                payload_len: 1_514,
                trials: 50_000,
                seed: 0xD17E_0001,
            },
        ),
        (
            "gilbert_elliott_mtu",
            Box::new(GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2)),
            TrialConfig {
                payload_len: 1_514,
                trials: 30_000,
                seed: 0xD17E_0002,
            },
        ),
        (
            "burst32_256B",
            Box::new(BurstChannel::new(32)),
            TrialConfig {
                payload_len: 256,
                trials: 20_000,
                seed: 0xD17E_0003,
            },
        ),
        (
            "jammer_hdlc_mtu",
            Box::new(JammerChannel::hdlc(0.25)),
            TrialConfig {
                payload_len: 1_514,
                trials: 20_000,
                seed: 0xD17E_0006,
            },
        ),
        (
            "stuffing_slips_576B",
            Box::new(StuffingChannel::new(2e-3)),
            TrialConfig {
                payload_len: 576,
                trials: 20_000,
                seed: 0xD17E_0007,
            },
        ),
        (
            "truncation_256B",
            Box::new(TruncationChannel::new(0.05, 16)),
            TrialConfig {
                payload_len: 256,
                trials: 20_000,
                seed: 0xD17E_0008,
            },
        ),
    ];
    let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
    for (name, channel, cfg) in &scenarios {
        let stats = sim.run(&codec, channel.as_ref(), cfg);
        rows.push(stats_json(name, cfg.seed, &stats));
        println!(
            "{name}: clean {} detected {} undetected {}",
            stats.clean, stats.detected, stats.undetected
        );
    }

    // Weighted trials at CRC-8 scale, where undetected counts are nonzero
    // — merging must be exact on every field, not just the common ones.
    let codec8 = FrameCodec::new(catalog::CRC8_SMBUS);
    let weighted = sim.run_weighted(&codec8, 2, 4, 60_000, 0xD17E_0004);
    assert!(
        weighted.undetected > 0,
        "CRC-8 weighted trials should see measurable undetected events"
    );
    rows.push(stats_json("crc8_weighted_k4", 0xD17E_0004, &weighted));
    println!(
        "crc8_weighted_k4: detected {} undetected {}",
        weighted.detected, weighted.undetected
    );

    // Mixed-size traffic: per-class tallies must merge deterministically.
    let mix = TrafficMix::simple_imix();
    let ge = GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2);
    let mix_stats = sim.run_mix(&codec, &ge, &mix, 24_000, 0xD17E_0005);
    for (class, stats) in &mix_stats.per_class {
        rows.push(stats_json(
            &format!("imix_{}", class.label.replace(' ', "_")),
            0xD17E_0005,
            stats,
        ));
    }
    println!("imix total: {:?}", mix_stats.total());

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"suite\": \"sim_determinism\",").unwrap();
    writeln!(
        json,
        "  \"shard_frames\": {},",
        Simulator::DEFAULT_SHARD_FRAMES
    )
    .unwrap();
    writeln!(json, "  \"scenarios\": [").unwrap();
    writeln!(json, "{}", rows.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write determinism JSON");
    println!("wrote {out_path}");
}
