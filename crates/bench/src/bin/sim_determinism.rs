//! Exact-count dump of a fixed Monte-Carlo suite, for determinism checks.
//!
//! Runs the sharded simulator over a fixed set of scenarios at the given
//! worker thread count and writes every tally as JSON. CI's
//! `sim-determinism` job runs this twice — `--threads 1` and
//! `--threads 4` — and requires the outputs to be byte-identical: the
//! sharded engine's results must be a pure function of the seed,
//! never of the thread schedule. The thread count is deliberately *not*
//! recorded in the JSON so the two files can be diffed directly.
//!
//! Usage: `cargo run --release -p crc-experiments --bin sim_determinism
//! [--threads N] [--out PATH]`

use crckit::catalog;
use netsim::channel::{BscChannel, BurstChannel, Channel, GilbertElliottChannel};
use netsim::frame::FrameCodec;
use netsim::imix::TrafficMix;
use netsim::montecarlo::{Simulator, TrialConfig, TrialStats};
use std::fmt::Write as _;

use crc_experiments::arg_or;

fn stats_json(name: &str, seed: u64, s: &TrialStats) -> String {
    format!(
        "    {{\"scenario\": \"{name}\", \"seed\": {seed}, \"clean\": {}, \"detected\": {}, \
         \"undetected\": {}, \"bits_flipped\": {}}}",
        s.clean, s.detected, s.undetected, s.bits_flipped
    )
}

fn main() {
    let threads: usize = arg_or("--threads", 0);
    let out_path: String = arg_or("--out", "sim_determinism.json".to_string());
    let sim = Simulator::new().threads(threads);

    let mut rows: Vec<String> = Vec::new();

    // Random traffic over the three channel families.
    let scenarios: [(&str, Box<dyn Channel>, TrialConfig); 3] = [
        (
            "bsc_1e-4_mtu",
            Box::new(BscChannel::new(1e-4)),
            TrialConfig {
                payload_len: 1_514,
                trials: 50_000,
                seed: 0xD17E_0001,
            },
        ),
        (
            "gilbert_elliott_mtu",
            Box::new(GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2)),
            TrialConfig {
                payload_len: 1_514,
                trials: 30_000,
                seed: 0xD17E_0002,
            },
        ),
        (
            "burst32_256B",
            Box::new(BurstChannel::new(32)),
            TrialConfig {
                payload_len: 256,
                trials: 20_000,
                seed: 0xD17E_0003,
            },
        ),
    ];
    let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
    for (name, channel, cfg) in &scenarios {
        let stats = sim.run(&codec, channel.as_ref(), cfg);
        rows.push(stats_json(name, cfg.seed, &stats));
        println!(
            "{name}: clean {} detected {} undetected {}",
            stats.clean, stats.detected, stats.undetected
        );
    }

    // Weighted trials at CRC-8 scale, where undetected counts are nonzero
    // — merging must be exact on every field, not just the common ones.
    let codec8 = FrameCodec::new(catalog::CRC8_SMBUS);
    let weighted = sim.run_weighted(&codec8, 2, 4, 60_000, 0xD17E_0004);
    assert!(
        weighted.undetected > 0,
        "CRC-8 weighted trials should see measurable undetected events"
    );
    rows.push(stats_json("crc8_weighted_k4", 0xD17E_0004, &weighted));
    println!(
        "crc8_weighted_k4: detected {} undetected {}",
        weighted.detected, weighted.undetected
    );

    // Mixed-size traffic: per-class tallies must merge deterministically.
    let mix = TrafficMix::simple_imix();
    let ge = GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2);
    let mix_stats = sim.run_mix(&codec, &ge, &mix, 24_000, 0xD17E_0005);
    for (class, stats) in &mix_stats.per_class {
        rows.push(stats_json(
            &format!("imix_{}", class.label.replace(' ', "_")),
            0xD17E_0005,
            stats,
        ));
    }
    println!("imix total: {:?}", mix_stats.total());

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"suite\": \"sim_determinism\",").unwrap();
    writeln!(
        json,
        "  \"shard_frames\": {},",
        Simulator::DEFAULT_SHARD_FRAMES
    )
    .unwrap();
    writeln!(json, "  \"scenarios\": [").unwrap();
    writeln!(json, "{}", rows.join(",\n")).unwrap();
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write determinism JSON");
    println!("wrote {out_path}");
}
