//! The paper's §4.5 validation strategy, reproduced in full: exhaustive
//! searches of the complete 8-bit and 16-bit polynomial spaces, with every
//! verdict cross-checkable against the exhaustive codeword spectrum.
//!
//! Usage: `cargo run --release -p crc-experiments --bin exhaustive_small
//! [--len16 1024] [--hd16 4]`

use crc_hd::report::TextTable;
use crc_hd::search::{exhaustive_search, PolySpace};
use crc_hd::spectrum::hd_exhaustive;
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    // ----- 8-bit space: every polynomial, several lengths, HD census ----
    println!(
        "Exhaustive 8-bit search (all {} distinct polynomials):\n",
        PolySpace::new(8).distinct()
    );
    let mut t = TextTable::new(["data bits", "HD>=4", "HD>=5", "HD>=6", "best HD"]);
    for n in [4u32, 8, 16, 24, 30] {
        let mut counts = [0usize; 3];
        let mut best = 0;
        for (i, hd) in [4u32, 5, 6].iter().enumerate() {
            counts[i] = exhaustive_search(8, n, *hd, 2).expect("8-bit search").len();
        }
        for g in PolySpace::new(8).iter_canonical() {
            best = best.max(hd_exhaustive(&g, n).expect("small length"));
        }
        t.push_row([
            n.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            best.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Consistency: at 8 data bits the filter verdicts must equal the
    // spectrum ground truth for every polynomial.
    let n = 8;
    let survivors: std::collections::BTreeSet<u64> = exhaustive_search(8, n, 4, 2)
        .expect("verify pass")
        .into_iter()
        .map(|s| s.poly.koopman())
        .collect();
    let mut agree = 0u32;
    for g in PolySpace::new(8).iter_canonical() {
        let truth = hd_exhaustive(&g, n).unwrap() >= 4;
        assert_eq!(truth, survivors.contains(&g.koopman()), "poly {g}");
        agree += 1;
    }
    println!("filter vs spectrum cross-check at n={n}: {agree}/{agree} polynomials agree\n");

    // ----- 16-bit space: the paper-scaled exhaustive run ---------------
    let len16: u32 = crc_experiments::arg_or("--len16", 1_024);
    let hd16: u32 = crc_experiments::arg_or("--hd16", 4);
    let space = PolySpace::new(16);
    println!(
        "Exhaustive 16-bit search: {} distinct polynomials, HD>={hd16} at {len16} bits…",
        space.distinct()
    );
    let t0 = Instant::now();
    let survivors = exhaustive_search(16, len16, hd16, 2).expect("16-bit search");
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "  {} survivors in {:.1}s ({:.0} polys/s/core on this machine; \
         the paper reports ~2/s/CPU on 2001 hardware)\n",
        survivors.len(),
        dt,
        space.distinct() as f64 / dt / 2.0
    );

    // Class breakdown of survivors — the Table 2 *shape* at 16 bits.
    let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
    for s in &survivors {
        *by_class.entry(s.class.clone()).or_default() += 1;
    }
    let mut t = TextTable::new(["class", "survivors"]);
    let mut rows: Vec<_> = by_class.into_iter().collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.1));
    for (class, count) in rows.iter().take(12) {
        t.push_row([class.clone(), count.to_string()]);
    }
    println!("survivor factorization classes (top 12):\n{}", t.render());

    // The paper's structural finding at 16-bit scale: HD=6 implies the
    // parity factor. Pick a length where 16-bit HD=6 is achievable.
    let hd6 = exhaustive_search(16, 120, 6, 2).expect("hd6 search");
    let all_parity = hd6.iter().all(|s| s.poly.divisible_by_x_plus_1());
    println!(
        "HD>=6 at 120 bits: {} survivors, all divisible by (x+1): {}",
        hd6.len(),
        all_parity
    );
    assert!(all_parity, "paper's §4.2 parity finding must hold");
}
