//! Trial-engine throughput measurement with a machine-readable trail.
//!
//! Compares ways of running the same Monte-Carlo scenario
//! (CRC-32/ISO-HDLC, MTU frames, BSC at low BER):
//!
//! * **reference** — the PR-1 single-thread loop: allocate + encode one
//!   frame, corrupt it, verify it, repeat;
//! * **batch ×1** — the sharded engine pinned to one thread: reused frame
//!   buffers sealed in place, burst corruption, burst verification;
//! * **sharded ×N** — the same engine on every available core;
//! * **pipelined ×N** — the two-stage pipeline: producer/consumer lanes
//!   overlapping channel RNG with CRC verification.
//!
//! A second scenario, **jammer_eager**, swaps the BSC for the
//! content-dependent [`JammerChannel`], which cannot take the XOR-delta
//! shortcut: every frame is filled, sealed and (when struck) verified —
//! the eager path at full scale, in both sharded and pipelined mode.
//!
//! Prints frames/sec for each, checks the acceptance gate (sharded ≥ 5×
//! reference on ≥ 4 cores; single-thread batch > reference everywhere),
//! and writes `BENCH_sim_throughput.json` so the trajectory stays
//! diffable from PR to PR.
//!
//! Usage: `cargo run --release -p crc-experiments --bin sim_throughput
//! [--trials N] [--reps N] [--out PATH]`

use crc_experiments::arg_or;
use crckit::catalog;
use netsim::channel::{BscChannel, Channel, JammerChannel};
use netsim::frame::FrameCodec;
use netsim::montecarlo::{Simulator, TrialConfig, TrialStats};
use std::fmt::Write as _;
use std::time::Instant;

const BER: f64 = 1e-5;
/// Strike probability per HDLC flag byte for the eager-path scenario:
/// random MTU payloads carry ~6 flag bytes, so most frames are struck.
const JAMMER_HIT: f64 = 0.25;

/// The PR-1 trial loop, kept verbatim as the measurement baseline: one
/// frame at a time, a fresh allocation per encode, no batching.
fn run_trials_reference(
    codec: &FrameCodec,
    channel: &mut dyn Channel,
    cfg: &TrialConfig,
) -> TrialStats {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    channel.reseed(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let mut stats = TrialStats::default();
    let mut payload = vec![0u8; cfg.payload_len];
    for _ in 0..cfg.trials {
        rng.fill(&mut payload[..]);
        let mut frame = codec.encode(&payload);
        let flips = channel.corrupt(&mut frame);
        stats.bits_flipped += flips as u64;
        if flips == 0 {
            stats.clean += 1;
        } else if codec.verify(&frame) {
            stats.undetected += 1;
        } else {
            stats.detected += 1;
        }
    }
    stats
}

/// Median-of-`reps` frames/sec for one way of running the scenario.
fn measure(reps: usize, trials: u64, mut run: impl FnMut() -> TrialStats) -> f64 {
    let mut rates: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            let stats = std::hint::black_box(run());
            assert_eq!(stats.total(), trials, "every mode must do all the work");
            assert_eq!(stats.undetected, 0, "32-bit CRC at this scale");
            trials as f64 / start.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let trials: u64 = arg_or("--trials", 100_000);
    let reps: usize = arg_or("--reps", 5);
    let out_path: String = arg_or("--out", "BENCH_sim_throughput.json".to_string());
    let telemetry_out: String = arg_or("--telemetry-out", "BENCH_sim_telemetry.json".to_string());

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
    let cfg = TrialConfig {
        payload_len: 1_514,
        trials,
        seed: 0x51F0,
    };
    println!(
        "sim_throughput: {} trials of {}B MTU frames, BSC {BER:.0e}, engine {} \
         ({host_threads} host threads)",
        trials,
        cfg.payload_len,
        codec.engine()
    );

    let reference = measure(reps, trials, || {
        let mut ch = BscChannel::new(BER);
        run_trials_reference(&codec, &mut ch, &cfg)
    });
    println!("  reference ×1 : {reference:>12.0} frames/s");

    let single = Simulator::new().threads(1);
    let batch1 = measure(reps, trials, || {
        single.run(&codec, &BscChannel::new(BER), &cfg)
    });
    println!("  batch     ×1 : {batch1:>12.0} frames/s");

    let parallel = Simulator::new();
    let sharded = measure(reps, trials, || {
        parallel.run(&codec, &BscChannel::new(BER), &cfg)
    });
    println!("  sharded   ×{host_threads} : {sharded:>12.0} frames/s");

    let piped = Simulator::new().pipelined();
    let pipelined = measure(reps, trials, || {
        piped.run(&codec, &BscChannel::new(BER), &cfg)
    });
    println!("  pipelined ×{host_threads} : {pipelined:>12.0} frames/s");

    // The content-dependent workload: every frame filled and sealed, no
    // delta shortcut — the eager path is what the jammer suite stresses.
    let jam_cfg = TrialConfig {
        seed: 0x51F1,
        ..cfg
    };
    let jammer_eager = measure(reps, trials, || {
        parallel.run(&codec, &JammerChannel::hdlc(JAMMER_HIT), &jam_cfg)
    });
    println!("  jammer_eager ×{host_threads} : {jammer_eager:>9.0} frames/s");

    let jammer_pipelined = measure(reps, trials, || {
        piped.run(&codec, &JammerChannel::hdlc(JAMMER_HIT), &jam_cfg)
    });
    println!("  jammer_pipelined ×{host_threads} : {jammer_pipelined:>5.0} frames/s");

    let batch_speedup = batch1 / reference;
    let sharded_speedup = sharded / reference;
    println!(
        "\nbatch ×1 vs reference: {batch_speedup:.2}x; sharded ×{host_threads} vs \
         reference: {sharded_speedup:.2}x; pipelined vs sharded: {:.2}x; \
         eager (jammer) runs at {:.2}x the delta path",
        pipelined / sharded,
        jammer_eager / sharded
    );
    if batch_speedup < 1.0 {
        eprintln!("WARNING: single-thread batch engine slower than the reference loop");
    }
    if host_threads >= 4 && sharded_speedup < 5.0 {
        eprintln!("WARNING: sharded speedup below the 5x acceptance target on >=4 cores");
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"sim_throughput\",").unwrap();
    writeln!(json, "  \"unit\": \"frames/s\",").unwrap();
    writeln!(
        json,
        "  \"scenario\": \"CRC-32/ISO-HDLC, 1514B payload, BSC 1e-5\","
    )
    .unwrap();
    writeln!(json, "  \"trials\": {trials},").unwrap();
    writeln!(json, "  \"host_threads\": {host_threads},").unwrap();
    writeln!(
        json,
        "  \"gate_sharded_vs_reference\": {sharded_speedup:.3},"
    )
    .unwrap();
    writeln!(json, "  \"gate_batch1_vs_reference\": {batch_speedup:.3},").unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    let rows = [
        ("reference", 1usize, reference),
        ("batch", 1, batch1),
        ("sharded", host_threads, sharded),
        ("pipelined", host_threads, pipelined),
        ("jammer_eager", host_threads, jammer_eager),
        ("jammer_pipelined", host_threads, jammer_pipelined),
    ];
    for (i, (mode, threads, rate)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"mode\": \"{mode}\", \"threads\": {threads}, \
             \"frames_per_s\": {rate:.0}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");

    // Engine telemetry accumulated across every run above: lane frame
    // counts, producer/consumer stalls, eager-vs-delta path split, and the
    // consume-stage burst histogram. Integers only, so the file is
    // diffable like the throughput trail.
    telemetry::global()
        .write_snapshot(std::path::Path::new(&telemetry_out))
        .expect("write telemetry snapshot");
    println!("wrote {telemetry_out}");
}
