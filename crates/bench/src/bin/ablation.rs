//! Measures the paper's §4.1 filtering techniques one by one — the
//! ablation study behind the "7 minutes → under 7 seconds" and "two
//! polynomials per second per CPU" anecdotes.
//!
//! Usage: `cargo run --release -p crc-experiments --bin ablation
//! [--polys 400] [--len 12112]`

use crc_experiments::{arg_or, poly};
use crc_hd::filter::enumerative::{check, EnumOrder};
use crc_hd::filter::{breakpoint_search, hd_filter, StagedFilter};
use crc_hd::weights::weights234;
use crc_hd::GenPoly;
use gf2poly::SplitMix64;
use std::time::Instant;

fn random_polys(count: usize, seed: u64) -> Vec<GenPoly> {
    let mut rng = SplitMix64::new(seed);
    (0..count)
        .map(|_| {
            let k = rng.next_u64() | 1 << 31;
            GenPoly::from_koopman(32, k & 0xFFFF_FFFF).expect("top bit set")
        })
        .collect()
}

fn main() {
    let n_polys: usize = arg_or("--polys", 400);
    let mtu: u32 = arg_or("--len", 12_112);

    // ---- E5: early bailout vs exact weights (paper: 7 min → <7 s) -----
    println!("[E5] early bailout vs exact weight computation, 802.3 @ 32768 bits");
    let ieee = poly(0x82608EDB);
    let t0 = Instant::now();
    let w = weights234(&ieee, 32_768).expect("within order");
    let exact_t = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let verdict = hd_filter(&ieee, 32_768, 5).expect("filter");
    let filter_t = t0.elapsed().as_secs_f64();
    println!(
        "  exact W2..W4 = ({}, {}, {}) in {exact_t:.3}s; early-out verdict {verdict:?} \
         in {filter_t:.4}s; speedup {:.0}x",
        w.w2,
        w.w3,
        w.w4,
        exact_t / filter_t.max(1e-9)
    );
    assert!(filter_t < exact_t, "early bailout must beat exact counting");

    // ---- E6: FCS-bits-first enumeration ordering -----------------------
    println!("\n[E6] FCS-first vs natural enumeration order (paper-literal filter)");
    // Use rejected polynomials whose first weight-4 witness is low enough
    // for the natural order to terminate in reasonable time.
    let rejected: Vec<GenPoly> = random_polys(4_000, 0xFC5)
        .into_iter()
        .filter(|g| matches!(crc_hd::dmin::dmin(g, 4, 300), Ok(Some(_))))
        .take(6)
        .collect();
    let mut nat_total = 0u64;
    let mut fcs_total = 0u64;
    let mut fcs_wins = 0u32;
    for g in &rejected {
        let nat = check(g, 512, 4, EnumOrder::Natural, true);
        let fcs = check(g, 512, 4, EnumOrder::FcsFirst, true);
        assert!(nat.found() && fcs.found());
        nat_total += nat.patterns_tested;
        fcs_total += fcs.patterns_tested;
        if fcs.patterns_tested <= nat.patterns_tested {
            fcs_wins += 1;
        }
    }
    println!(
        "  {} rejected polys @512 bits, k=4 first-witness search:\n  natural order tested {} patterns, FCS-first {} — {:.0}x fewer; FCS-first won {}/{}",
        rejected.len(),
        nat_total,
        fcs_total,
        nat_total as f64 / fcs_total.max(1) as f64,
        fcs_wins,
        rejected.len()
    );

    // ---- E7: increasing-length staged filtering ------------------------
    println!("\n[E7] increasing-length staged filtering");
    // (a) The paper's arithmetic: filtering at 1024 bits is ~17,500x
    // cheaper than evaluating at 12112 bits for a C(n, 4) enumerator.
    let ratio = crc_hd::costmodel::error_patterns(12_144, 4) as f64
        / crc_hd::costmodel::error_patterns(1_056, 4) as f64;
    println!("  C(12144,4)/C(1056,4) = {ratio:.0} (paper: \"almost 17,500 times faster\")");
    // (b) Demonstrate the scaling law empirically with full k=3 counts.
    let g = poly(0x82608EDB);
    let t0 = Instant::now();
    let small = check(&g, 256, 3, EnumOrder::Natural, false);
    let t_small = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let large = check(&g, 1_024, 3, EnumOrder::Natural, false);
    let t_large = t0.elapsed().as_secs_f64();
    println!(
        "  full k=3 enumeration: {:.4}s @256 bits vs {:.3}s @1024 bits = {:.0}x (theory {:.0}x)",
        t_small,
        t_large,
        t_large / t_small.max(1e-9),
        large.patterns_tested as f64 / small.patterns_tested as f64
    );
    // (c) Staging with the d_min evaluator: a negative result worth
    // reporting — its cost depends on where the first witness lies, not
    // on the length cap, so staging only re-pays survivor confirmations.
    let candidates = random_polys(n_polys, 0x57A6ED);
    let t0 = Instant::now();
    let direct: Vec<&GenPoly> = candidates
        .iter()
        .filter(|g| hd_filter(g, mtu, 5).unwrap().passed())
        .collect();
    let direct_t = t0.elapsed().as_secs_f64();
    let staged = StagedFilter::new(vec![256, 1_024, 4_096, mtu], 5);
    let t0 = Instant::now();
    let (survivors, stats) = staged.run(candidates.iter().copied()).expect("staged run");
    let staged_t = t0.elapsed().as_secs_f64();
    for s in &stats {
        println!(
            "  stage {:>6} bits: {:>5} in -> {:>4} out",
            s.data_len, s.candidates_in, s.survivors_out
        );
    }
    println!(
        "  d_min evaluator: direct {direct_t:.2}s vs staged {staged_t:.2}s — staging helps the\n  paper's enumerator (cost set by the length cap) but not the witness-search\n  evaluator (cost set by the answer); identical survivors: {}",
        survivors.len() == direct.len()
            && survivors.iter().zip(&direct).all(|(a, b)| a == *b)
    );

    // ---- E8: inverse filtering / breakpoint localization ---------------
    println!("\n[E8] breakpoint search (doubling + bisection over early-out filters)");
    for (k, hd, expect) in [(0x82608EDBu64, 5u32, 2_974u32), (0xBA0DC66B, 6, 16_360)] {
        let g = poly(k);
        let t0 = Instant::now();
        let (len, evals) = breakpoint_search(&g, hd, 131_072).expect("search");
        println!(
            "  0x{k:08X}: HD={hd} holds to {len} bits ({evals} evaluations, {:.2}s) — paper: {expect}",
            t0.elapsed().as_secs_f64()
        );
        assert_eq!(len, expect);
    }

    // ---- E9: overall filter throughput ---------------------------------
    println!("\n[E9] MTU filter throughput (paper: ~2 polynomials/s/CPU in 2001)");
    let batch = random_polys(n_polys, 0x7420);
    let t0 = Instant::now();
    let mut passed = 0u32;
    for g in &batch {
        if hd_filter(g, mtu, 5).unwrap().passed() {
            passed += 1;
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "  {} polys filtered for HD>=5 @ {mtu} bits in {dt:.2}s = {:.0} polys/s/core \
         ({passed} passed)",
        batch.len(),
        batch.len() as f64 / dt
    );
}
