//! Prints the paper's §3 intractability arithmetic: why brute force was
//! considered impossible, and how the numbers fall out exactly.

use crc_hd::costmodel::{mtu_cost_model, years_at_rate};
use crc_hd::report::with_commas;

fn main() {
    let m = mtu_cost_model();
    println!("Paper §3 cost model, recomputed exactly:\n");
    println!(
        "  distinct 32-bit polynomials (reciprocal pairs merged): {}",
        with_commas(m.polynomials as u128)
    );
    println!(
        "  4-bit error patterns in a 12144-bit codeword: C(12144,4) = {}",
        with_commas(m.patterns_4bit)
    );
    println!(
        "  6-bit error patterns: C(12144,6) = {:.4e}   (paper: 4.45e21)",
        m.patterns_6bit as f64
    );
    println!(
        "  pattern x polynomial pairs: {:.4e}            (paper: >4.78e30)",
        m.total_pairs
    );
    println!(
        "  years at 10^9 pairs/s x 10^6 processors: {:.1}e6  (paper: 151 million years)",
        m.years_at_paper_rate / 1e6
    );
    println!();
    println!("And what the reproduction actually does instead:");
    println!("  the d_min evaluator settles a polynomial's HD=6 status at the MTU in");
    println!("  O((n+r)^2) hash probes — about 7.4e7, not 4.45e21 enumerations —");
    let probes = 7.4e7f64;
    println!(
        "  i.e. ~{:.0} ns-scale probes per polynomial; the whole Table 1 runs in seconds.",
        probes
    );
    println!(
        "  (A hypothetical full 2^30-poly scan at 5 ms/poly would still need ~{:.0} days",
        years_at_rate(m.polynomials as f64 * 5e-3 * 1e15, 1e15) * 365.25
    );
    println!("  on one core — the reason Table 2 is reproduced by stratified sampling.)");
}
