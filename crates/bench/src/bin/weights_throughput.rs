//! Weight-kernel throughput: per-polynomial cost of the screening
//! primitives, before (scratch paths) and after (workspace kernels),
//! with a machine-readable trail.
//!
//! Three scenario groups:
//!
//! * **`weights234` at the Ethernet MTU** (32-bit generators, hash
//!   kernel): the scratch sweep vs the workspace sweep vs the
//!   profile-hinted workspace sweep (the survey's stage order, where
//!   the profile's certified-clean ranges shrink — or for an HD≥5
//!   polynomial like 0xBA0DC66B eliminate — the `O(L²)` pair loop).
//! * **`weights234` at 1024 bits over the 13-bit survey width** (direct
//!   `u16` kernel vs the scratch hash sweep): the survey campaign's
//!   dominant cost, measured over a fixed candidate batch.
//! * **A full `HdProfile` to the MTU**: scratch assembly vs a shared
//!   workspace.
//!
//! Every before/after pair asserts identical results before timing is
//! trusted. Writes `BENCH_weights_throughput.json` (uploaded by the CI
//! `throughput-trail` job) so the trajectory stays diffable from PR to
//! PR.
//!
//! Usage: `cargo run --release -p crc-experiments --bin
//! weights_throughput [--reps 3] [--out PATH]`

use crc_experiments::arg_or;
use crc_hd::profile::HdProfile;
use crc_hd::search::PolySpace;
use crc_hd::workspace::SyndromeWorkspace;
use crc_hd::{reference, GenPoly};
use std::fmt::Write as _;
use std::time::Instant;

const MTU_BITS: u32 = 12_112;

/// Median-of-`reps` wall time for `run`, in seconds.
fn measure(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut times = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    scenario: &'static str,
    mode: &'static str,
    per_poly_ms: f64,
}

fn main() {
    let reps: usize = arg_or("--reps", 3);
    let out_path: String = arg_or("--out", "BENCH_weights_throughput.json".to_string());
    let mut rows: Vec<Row> = Vec::new();
    let push = |rows: &mut Vec<Row>, scenario, mode, secs: f64, polys: usize| {
        let per_poly_ms = secs * 1e3 / polys as f64;
        println!("  {scenario:<22} {mode:<18} {per_poly_ms:>9.3} ms/poly");
        rows.push(Row {
            scenario,
            mode,
            per_poly_ms,
        });
    };

    // ---- weights234 at the MTU (32-bit generators, hash kernel) ----
    let g802 = GenPoly::from_koopman(32, 0x82608EDB).unwrap();
    let gk = GenPoly::from_koopman(32, 0xBA0DC66B).unwrap();
    let mtu_polys = [g802, gk];
    println!("weights234 at MTU ({MTU_BITS} bits), 32-bit generators:");
    let want: Vec<_> = mtu_polys
        .iter()
        .map(|g| reference::weights234(g, MTU_BITS).unwrap())
        .collect();
    // The paper's §2 worked example keeps the bench honest.
    assert_eq!(want[0].w4, 223_059, "802.3 W4 at the MTU");
    assert_eq!(want[1].w4, 0, "0xBA0DC66B holds HD=6 at the MTU");

    let t = measure(reps, || {
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(&reference::weights234(g, MTU_BITS).unwrap(), w);
        }
    });
    push(&mut rows, "weights234_mtu", "scratch", t, mtu_polys.len());

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(&ws.weights234(g, MTU_BITS).unwrap(), w);
        }
    });
    push(&mut rows, "weights234_mtu", "workspace", t, mtu_polys.len());

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in mtu_polys.iter().zip(&want) {
            // The survey stage order: profile first, then weights ride
            // its certified-clean ranges (total time for both stages).
            let _ = HdProfile::compute_in(&mut ws, g, MTU_BITS, 8).unwrap();
            assert_eq!(&ws.weights234(g, MTU_BITS).unwrap(), w);
        }
    });
    push(
        &mut rows,
        "weights234_mtu",
        "profile_hinted",
        t,
        mtu_polys.len(),
    );

    // ---- weights234 at 1024 bits, 13-bit survey width (direct u16) ----
    let space = PolySpace::new(13);
    let batch: Vec<GenPoly> = space
        .iter_range(0, 400)
        .filter(|g| g.koopman() <= g.reciprocal().koopman() && 1024 + 13 <= crc_hd::dmin::dmin2(g))
        .collect();
    println!(
        "weights234 at 1024 bits, 13-bit survey width ({} polys):",
        batch.len()
    );
    let want: Vec<_> = batch
        .iter()
        .map(|g| reference::weights234(g, 1024).unwrap())
        .collect();

    let t = measure(reps, || {
        for (g, w) in batch.iter().zip(&want) {
            assert_eq!(&reference::weights234(g, 1024).unwrap(), w);
        }
    });
    push(&mut rows, "weights234_survey13", "scratch", t, batch.len());

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in batch.iter().zip(&want) {
            assert_eq!(&ws.weights234(g, 1024).unwrap(), w);
        }
    });
    push(
        &mut rows,
        "weights234_survey13",
        "workspace",
        t,
        batch.len(),
    );

    // ---- full HdProfile to the MTU (32-bit generators) ----
    println!("HdProfile to {MTU_BITS} bits, 32-bit generators:");
    let want: Vec<_> = mtu_polys
        .iter()
        .map(|g| reference::profile(g, MTU_BITS, 8).unwrap().dmins().to_vec())
        .collect();
    let t = measure(reps, || {
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(&reference::profile(g, MTU_BITS, 8).unwrap().dmins(), w);
        }
    });
    push(&mut rows, "hd_profile_mtu", "scratch", t, mtu_polys.len());

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(
                &HdProfile::compute_in(&mut ws, g, MTU_BITS, 8)
                    .unwrap()
                    .dmins(),
                w
            );
        }
    });
    push(&mut rows, "hd_profile_mtu", "workspace", t, mtu_polys.len());

    // ---- speedup summary + JSON trail ----
    let per = |scenario: &str, mode: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario && r.mode == mode)
            .expect("row exists")
            .per_poly_ms
    };
    let survey_speedup =
        per("weights234_survey13", "scratch") / per("weights234_survey13", "workspace");
    // The hinted row times the whole profile→weights funnel, so compare
    // it against both scratch stages, not weights alone.
    let funnel_scratch = per("hd_profile_mtu", "scratch") + per("weights234_mtu", "scratch");
    let funnel_speedup = funnel_scratch / per("weights234_mtu", "profile_hinted");
    println!(
        "\nsurvey-width weights kernel: {survey_speedup:.2}x; \
         MTU profile+weights funnel: {funnel_speedup:.2}x"
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"weights_throughput\",").unwrap();
    writeln!(json, "  \"unit\": \"ms/poly\",").unwrap();
    writeln!(json, "  \"mtu_bits\": {MTU_BITS},").unwrap();
    writeln!(json, "  \"survey_width\": 13,").unwrap();
    writeln!(json, "  \"survey_len\": 1024,").unwrap();
    writeln!(json, "  \"survey_kernel_speedup\": {survey_speedup:.3},").unwrap();
    writeln!(json, "  \"mtu_funnel_speedup\": {funnel_speedup:.3},").unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"per_poly_ms\": {:.4}}}{comma}",
            r.scenario, r.mode, r.per_poly_ms
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
