//! Weight-kernel throughput: per-polynomial cost of the screening
//! primitives, before (scratch paths) and after (workspace kernels),
//! with a machine-readable trail.
//!
//! Three scenario groups:
//!
//! * **`weights234` at the Ethernet MTU** (32-bit generators): the
//!   scratch sweep vs each wide-width workspace kernel — the ForceHash
//!   oracle, the two-level index (the `Auto` workspace mode at 32
//!   bits), and the bitsliced+CLMUL block kernels — plus two staged
//!   rows: `profile_hinted` times *only* the weights stage after a
//!   profile primed the memo on the same workspace (the marginal cost
//!   the survey's stage order actually pays, provably ≤ the cold
//!   workspace row), and `funnel` times profile+weights together
//!   against the sum of both scratch stages.
//! * **`weights234` at 1024 bits over the 13-bit survey width** (direct
//!   `u16` kernel vs the scratch hash sweep): the survey campaign's
//!   dominant cost, measured over a fixed candidate batch.
//! * **A full `HdProfile` to the MTU**: scratch assembly vs a shared
//!   workspace.
//!
//! Every before/after pair asserts identical results before timing is
//! trusted. Writes `BENCH_weights_throughput.json` (uploaded by the CI
//! `throughput-trail` job) so the trajectory stays diffable from PR to
//! PR.
//!
//! Usage: `cargo run --release -p crc-experiments --bin
//! weights_throughput [--reps 3] [--out PATH]`

use crc_experiments::arg_or;
use crc_hd::profile::HdProfile;
use crc_hd::search::PolySpace;
use crc_hd::workspace::{IndexPolicy, SyndromeWorkspace};
use crc_hd::{reference, GenPoly};
use std::fmt::Write as _;
use std::time::Instant;

const MTU_BITS: u32 = 12_112;

/// Median-of-`reps` wall time for `run`, in seconds.
fn measure(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut times = Vec::new();
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

struct Row {
    scenario: &'static str,
    mode: &'static str,
    per_poly_ms: f64,
}

fn main() {
    let reps: usize = arg_or("--reps", 3);
    let out_path: String = arg_or("--out", "BENCH_weights_throughput.json".to_string());
    let mut rows: Vec<Row> = Vec::new();
    let push = |rows: &mut Vec<Row>, scenario, mode, secs: f64, polys: usize| {
        let per_poly_ms = secs * 1e3 / polys as f64;
        println!("  {scenario:<22} {mode:<18} {per_poly_ms:>9.3} ms/poly");
        rows.push(Row {
            scenario,
            mode,
            per_poly_ms,
        });
    };

    // ---- weights234 at the MTU (32-bit generators, hash kernel) ----
    let g802 = GenPoly::from_koopman(32, 0x82608EDB).unwrap();
    let gk = GenPoly::from_koopman(32, 0xBA0DC66B).unwrap();
    let mtu_polys = [g802, gk];
    println!("weights234 at MTU ({MTU_BITS} bits), 32-bit generators:");
    let want: Vec<_> = mtu_polys
        .iter()
        .map(|g| reference::weights234(g, MTU_BITS).unwrap())
        .collect();
    // The paper's §2 worked example keeps the bench honest.
    assert_eq!(want[0].w4, 223_059, "802.3 W4 at the MTU");
    assert_eq!(want[1].w4, 0, "0xBA0DC66B holds HD=6 at the MTU");

    let t = measure(reps, || {
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(&reference::weights234(g, MTU_BITS).unwrap(), w);
        }
    });
    push(&mut rows, "weights234_mtu", "scratch", t, mtu_polys.len());

    // One cold-workspace row per wide-width kernel flavor; `two_level`
    // is what `SyndromeWorkspace::new()` resolves to at 32 bits.
    for (mode, policy) in [
        ("hash_workspace", IndexPolicy::ForceHash),
        ("two_level", IndexPolicy::Auto),
        ("bitsliced", IndexPolicy::Bitsliced),
    ] {
        let t = measure(reps, || {
            let mut ws = SyndromeWorkspace::with_policy(policy);
            for (g, w) in mtu_polys.iter().zip(&want) {
                assert_eq!(&ws.weights234(g, MTU_BITS).unwrap(), w);
            }
        });
        push(&mut rows, "weights234_mtu", mode, t, mtu_polys.len());
    }

    // The survey stage order: profile first, then weights ride its
    // certified-clean ranges. `profile_hinted` times the weights stage
    // alone (its marginal cost on a primed workspace); `funnel` times
    // both stages together.
    let t = {
        let mut times = Vec::new();
        for _ in 0..reps.max(1) {
            let mut ws = SyndromeWorkspace::new();
            let mut weights_secs = 0.0;
            for (g, w) in mtu_polys.iter().zip(&want) {
                let _ = HdProfile::compute_in(&mut ws, g, MTU_BITS, 8).unwrap();
                let start = Instant::now();
                assert_eq!(&ws.weights234(g, MTU_BITS).unwrap(), w);
                weights_secs += start.elapsed().as_secs_f64();
            }
            times.push(weights_secs);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        times[times.len() / 2]
    };
    push(
        &mut rows,
        "weights234_mtu",
        "profile_hinted",
        t,
        mtu_polys.len(),
    );

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in mtu_polys.iter().zip(&want) {
            let _ = HdProfile::compute_in(&mut ws, g, MTU_BITS, 8).unwrap();
            assert_eq!(&ws.weights234(g, MTU_BITS).unwrap(), w);
        }
    });
    push(&mut rows, "weights234_mtu", "funnel", t, mtu_polys.len());

    // ---- weights234 at 1024 bits, 13-bit survey width (direct u16) ----
    let space = PolySpace::new(13);
    let batch: Vec<GenPoly> = space
        .iter_range(0, 400)
        .filter(|g| g.koopman() <= g.reciprocal().koopman() && 1024 + 13 <= crc_hd::dmin::dmin2(g))
        .collect();
    println!(
        "weights234 at 1024 bits, 13-bit survey width ({} polys):",
        batch.len()
    );
    let want: Vec<_> = batch
        .iter()
        .map(|g| reference::weights234(g, 1024).unwrap())
        .collect();

    let t = measure(reps, || {
        for (g, w) in batch.iter().zip(&want) {
            assert_eq!(&reference::weights234(g, 1024).unwrap(), w);
        }
    });
    push(&mut rows, "weights234_survey13", "scratch", t, batch.len());

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in batch.iter().zip(&want) {
            assert_eq!(&ws.weights234(g, 1024).unwrap(), w);
        }
    });
    push(
        &mut rows,
        "weights234_survey13",
        "workspace",
        t,
        batch.len(),
    );

    // ---- full HdProfile to the MTU (32-bit generators) ----
    println!("HdProfile to {MTU_BITS} bits, 32-bit generators:");
    let want: Vec<_> = mtu_polys
        .iter()
        .map(|g| reference::profile(g, MTU_BITS, 8).unwrap().dmins().to_vec())
        .collect();
    let t = measure(reps, || {
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(&reference::profile(g, MTU_BITS, 8).unwrap().dmins(), w);
        }
    });
    push(&mut rows, "hd_profile_mtu", "scratch", t, mtu_polys.len());

    let t = measure(reps, || {
        let mut ws = SyndromeWorkspace::new();
        for (g, w) in mtu_polys.iter().zip(&want) {
            assert_eq!(
                &HdProfile::compute_in(&mut ws, g, MTU_BITS, 8)
                    .unwrap()
                    .dmins(),
                w
            );
        }
    });
    push(&mut rows, "hd_profile_mtu", "workspace", t, mtu_polys.len());

    // ---- speedup summary + JSON trail ----
    let per = |scenario: &str, mode: &str| {
        rows.iter()
            .find(|r| r.scenario == scenario && r.mode == mode)
            .expect("row exists")
            .per_poly_ms
    };
    let survey_speedup =
        per("weights234_survey13", "scratch") / per("weights234_survey13", "workspace");
    // The PR-6 headline: the wide-width kernel against the scratch sweep.
    let mtu_kernel_speedup = per("weights234_mtu", "scratch") / per("weights234_mtu", "two_level");
    // The PR-5 trail pinned the scratch sweep at 683.6 ms/poly on the
    // reference host; same-run scratch wobbles with turbo/thermal state,
    // so record the kernel against that pinned figure as well.
    const PR5_SCRATCH_BASELINE_MS: f64 = 683.6;
    let mtu_vs_pr5_baseline = PR5_SCRATCH_BASELINE_MS / per("weights234_mtu", "two_level");
    // The hinted row is the weights stage alone on a profile-primed
    // workspace; never worse than the cold workspace (two-level) row.
    let hinted_vs_workspace =
        per("weights234_mtu", "profile_hinted") / per("weights234_mtu", "two_level");
    // The funnel row times both stages, so compare it against both
    // scratch stages, not weights alone.
    let funnel_scratch = per("hd_profile_mtu", "scratch") + per("weights234_mtu", "scratch");
    let funnel_speedup = funnel_scratch / per("weights234_mtu", "funnel");
    println!(
        "\nsurvey-width weights kernel: {survey_speedup:.2}x; \
         MTU weights kernel: {mtu_kernel_speedup:.2}x; \
         MTU profile+weights funnel: {funnel_speedup:.2}x; \
         hinted/workspace: {hinted_vs_workspace:.3}"
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"weights_throughput\",").unwrap();
    writeln!(json, "  \"unit\": \"ms/poly\",").unwrap();
    writeln!(json, "  \"mtu_bits\": {MTU_BITS},").unwrap();
    writeln!(json, "  \"survey_width\": 13,").unwrap();
    writeln!(json, "  \"survey_len\": 1024,").unwrap();
    writeln!(
        json,
        "  \"clmul_active\": {},",
        crc_hd::gf2x::clmul_active()
    )
    .unwrap();
    writeln!(json, "  \"survey_kernel_speedup\": {survey_speedup:.3},").unwrap();
    writeln!(json, "  \"mtu_kernel_speedup\": {mtu_kernel_speedup:.3},").unwrap();
    writeln!(
        json,
        "  \"mtu_scratch_baseline_pr5_ms\": {PR5_SCRATCH_BASELINE_MS},"
    )
    .unwrap();
    writeln!(json, "  \"mtu_vs_pr5_baseline\": {mtu_vs_pr5_baseline:.3},").unwrap();
    writeln!(json, "  \"hinted_vs_workspace\": {hinted_vs_workspace:.3},").unwrap();
    writeln!(json, "  \"mtu_funnel_speedup\": {funnel_speedup:.3},").unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"mode\": \"{}\", \"per_poly_ms\": {:.4}}}{comma}",
            r.scenario, r.mode, r.per_poly_ms
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
