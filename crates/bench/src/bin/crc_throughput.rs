//! Engine-tier throughput measurement with a machine-readable trail.
//!
//! Measures every [`EngineKind`] on representative catalog algorithms and
//! buffer sizes, prints a human-readable table, checks the acceptance
//! gate (CLMUL ≥ 3× slice-by-8 on 64 KiB CRC-32/ISO-HDLC where the
//! hardware supports it), and writes `BENCH_crc_throughput.json` so the
//! performance trajectory stays diffable from PR to PR.
//!
//! Usage: `cargo run --release --bin crc_throughput [--reps N] [--out PATH]`

use crc_experiments::arg_or;
use crckit::{catalog, Crc, CrcParams, EngineKind};
use std::fmt::Write as _;
use std::time::Instant;

/// One measurement cell.
struct Sample {
    algorithm: &'static str,
    engine: EngineKind,
    buffer_bytes: usize,
    gib_per_s: f64,
}

/// Median-of-N wall-clock throughput for one (algorithm, engine, size).
fn measure(crc: &Crc, kind: EngineKind, data: &[u8], reps: usize) -> f64 {
    // Calibrate iterations so each sample runs ≥ ~5 ms.
    let once = {
        let start = Instant::now();
        std::hint::black_box(crc.checksum_with(kind, data));
        start.elapsed().as_secs_f64().max(1e-9)
    };
    let iters = ((5e-3 / once) as usize).clamp(1, 1_000_000);
    let mut rates: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(crc.checksum_with(kind, std::hint::black_box(data)));
            }
            let secs = start.elapsed().as_secs_f64();
            (data.len() as f64 * iters as f64) / secs / (1u64 << 30) as f64
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn main() {
    let reps: usize = arg_or("--reps", 7);
    let out_path: String = arg_or("--out", "BENCH_crc_throughput.json".to_string());

    let algorithms: [CrcParams; 6] = [
        catalog::CRC32_ISO_HDLC,
        catalog::CRC32_ISCSI,
        catalog::CRC32_BZIP2,
        catalog::CRC32_XFER,
        catalog::CRC64_XZ,
        catalog::CRC64_GO_ISO,
    ];
    let sizes = [1514usize, 65_536];

    let clmul_hw = EngineKind::Clmul.is_hardware_accelerated();
    println!(
        "engine tiers on this host: clmul hardware = {clmul_hw}, default = {}",
        Crc::new(catalog::CRC32_ISO_HDLC).engine()
    );
    println!(
        "{:<18} {:>7}  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "algorithm", "bytes", "bitwise", "bytewise", "slice8", "slice16", "chorba", "clmul"
    );

    let mut samples: Vec<Sample> = Vec::new();
    for params in algorithms {
        let crc = Crc::new(params);
        for &size in &sizes {
            let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
            print!("{:<18} {size:>7} ", params.name);
            for kind in EngineKind::ALL {
                // The bitwise reference is ~100× slower: one calibrated
                // sample tells the story without minutes of wall time.
                let r = if kind == EngineKind::Bitwise { 1 } else { reps };
                let gib = measure(&crc, kind, &data, r);
                print!(" {gib:>9.3}");
                samples.push(Sample {
                    algorithm: params.name,
                    engine: kind,
                    buffer_bytes: size,
                    gib_per_s: gib,
                });
            }
            println!();
        }
    }

    // Acceptance gate: CLMUL ≥ 3× slice-by-8 on 64 KiB CRC-32/ISO-HDLC.
    let rate = |alg: &str, kind: EngineKind, size: usize| {
        samples
            .iter()
            .find(|s| s.algorithm == alg && s.engine == kind && s.buffer_bytes == size)
            .map(|s| s.gib_per_s)
            .expect("measured above")
    };
    let slice8 = rate("CRC-32/ISO-HDLC", EngineKind::Slice8, 65_536);
    let clmul = rate("CRC-32/ISO-HDLC", EngineKind::Clmul, 65_536);
    let speedup = clmul / slice8;
    println!("\nCRC-32/ISO-HDLC 64 KiB: clmul/slice8 speedup = {speedup:.2}x");
    if clmul_hw && speedup < 3.0 {
        eprintln!("WARNING: CLMUL speedup below the 3x acceptance target");
    }

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"crc_engine_throughput\",").unwrap();
    writeln!(json, "  \"unit\": \"GiB/s\",").unwrap();
    writeln!(json, "  \"clmul_hardware\": {clmul_hw},").unwrap();
    writeln!(
        json,
        "  \"gate_clmul_vs_slice8_64kib_iso_hdlc\": {speedup:.3},"
    )
    .unwrap();
    writeln!(json, "  \"results\": [").unwrap();
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        writeln!(
            json,
            "    {{\"algorithm\": \"{}\", \"engine\": \"{}\", \"buffer_bytes\": {}, \
             \"gib_per_s\": {:.4}}}{comma}",
            s.algorithm, s.engine, s.buffer_bytes, s.gib_per_s
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
