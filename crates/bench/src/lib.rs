//! Shared helpers for the experiment binaries and benches.
//!
//! Each binary regenerates one artifact of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md):
//!
//! | binary             | paper artifact                                  |
//! |--------------------|-------------------------------------------------|
//! | `table1`           | Table 1 (HD bands per polynomial)               |
//! | `figure1`          | Figure 1 (HD-vs-length series, CSV)             |
//! | `table2`           | Table 2 (HD=6 census per factorization class)   |
//! | `exhaustive_small` | §4.5 scaled exhaustive searches (8/16 bits)     |
//! | `ablation`         | §4.1 filtering-technique measurements           |
//! | `weights_mtu`      | §2 weights at the Ethernet MTU (W₄ = 223,059)   |
//! | `cost_model`       | §3 intractability arithmetic                    |
//! | `applications`     | §4.3/§4.4 iSCSI & jumbo-frame studies           |
//! | `survey_throughput`| campaign-engine polys/sec trail (BENCH json)    |

use crc_hd::GenPoly;

/// The eight polynomials of Table 1 / Figure 1, with the paper's labels
/// and factorization classes (Koopman notation).
pub const PAPER_POLYS: [(u64, &str, &str); 8] = [
    (0x82608EDB, "IEEE 802.3", "{32}"),
    (0x8F6E37A0, "Castagnoli iSCSI", "{1,31}"),
    (0xBA0DC66B, "Koopman", "{1,3,28}"),
    (0xFA567D89, "Castagnoli", "{1,1,15,15}"),
    (0x992C1A4C, "Koopman", "{1,1,30}"),
    (0x90022004, "Koopman low-tap", "{1,1,30}"),
    (0xD419CC15, "Castagnoli", "{32}"),
    (0x80108400, "Koopman low-tap", "{32}"),
];

/// Paper-reported `max_len_for_hd` anchors (post-errata) for verification:
/// `(koopman, hd, max_len)`.
pub const TABLE1_ANCHORS: [(u64, u32, u32); 12] = [
    (0x82608EDB, 8, 91),
    (0x82608EDB, 7, 171),
    (0x82608EDB, 6, 268),
    (0x82608EDB, 5, 2_974),
    (0x82608EDB, 4, 91_607),
    (0x8F6E37A0, 6, 5_243),
    (0xBA0DC66B, 6, 16_360),
    (0xBA0DC66B, 4, 114_663),
    (0xFA567D89, 6, 32_736),
    (0xFA567D89, 4, 65_502),
    (0x992C1A4C, 6, 32_738), // 2014 errata value
    (0xD419CC15, 5, 65_505),
];

/// Builds a [`GenPoly`] from a Koopman constant, panicking on bad input
/// (harness constants are static).
pub fn poly(koopman: u64) -> GenPoly {
    GenPoly::from_koopman(32, koopman).expect("paper polynomial is valid")
}

/// Parses a `--flag value` style argument from the command line, falling
/// back to `default`.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Marked message lengths from Figure 1's x-axis annotations.
pub const MARKED_LENGTHS: [(u32, &str); 6] = [
    (400, "40B ack packet"),
    (4_496, "512+40B packet"),
    (12_112, "1 MTU"),
    (24_224, "2 MTU"),
    (48_448, "4 MTU"),
    (96_896, "8 MTU"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_polys_all_parse() {
        for (k, _, class) in PAPER_POLYS {
            let g = poly(k);
            assert_eq!(g.koopman(), k);
            let sig = gf2poly::factor(g.to_poly()).signature().to_string();
            assert_eq!(sig, class, "{k:#010X}");
        }
    }

    #[test]
    fn anchors_reference_known_polys() {
        for (k, hd, _) in TABLE1_ANCHORS {
            assert!(PAPER_POLYS.iter().any(|&(p, _, _)| p == k));
            assert!((2..=8).contains(&hd));
        }
    }
}
