//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal property-testing harness covering exactly the surface
//! the test suites use: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), [`Strategy`] with `prop_map`, tuple and
//! range strategies, [`any`], [`Just`], [`prop_oneof!`],
//! [`collection::vec`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports its inputs via the panic
//!   message of the underlying `assert!`, but is not minimized;
//! * `prop_assume!` skips the case without drawing a replacement, so the
//!   effective case count can be lower than configured;
//! * case generation is a fixed deterministic stream per test name, so
//!   failures always reproduce.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives a per-test deterministic generator from the test's name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-run configuration (the `cases` knob of real proptest).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is exercised with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Via i128 so signed ranges with negative starts compute
                // their true span; the truncating cast plus wrapping add
                // is exact because the result lies in [start, end).
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: `size` elements of `elem` (`vec(any::<u8>(), 0..300)`).
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
///
/// Expands to an early `return` from the per-case closure the
/// [`proptest!`] macro wraps each body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Boxes a oneof arm. A generic fn (rather than an `as Box<dyn ...>` cast
/// in the macro) so integer-literal arms like `Just(16)` unify with the
/// first arm's type through return-type inference.
#[doc(hidden)]
pub fn __oneof_arm<T, S: Strategy<Value = T> + 'static>(strat: S) -> Box<dyn Strategy<Value = T>> {
    Box::new(strat)
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::__oneof_arm($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let mut body = move || $body;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut body));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u32> {
        (1u32..100).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mapped strategies apply their function.
        #[test]
        fn map_applies(v in doubled()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in 0.25f64..0.75, c in -5i32..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((-5..5).contains(&c));
        }

        #[test]
        fn tuples_and_oneof(pair in (any::<u8>(), prop_oneof![Just(1u32), Just(2)])) {
            let (_, chosen) = pair;
            prop_assert!(chosen == 1 || chosen == 2);
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_sizes(data in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&data.len()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
