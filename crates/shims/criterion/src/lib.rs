//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal wall-clock harness with the same API shape the bench
//! files use: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurements are median-of-samples wall-clock timings with an automatic
//! per-sample iteration count targeted at ~20 ms; adequate for relative
//! engine comparisons, with none of criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units a benchmark's throughput is reported in.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier with both a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run, for the group report.
    last_nanos: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Calibrate an iteration count giving ~20 ms per sample.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        let mut sample_nanos: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            sample_nanos.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_nanos.sort_by(|a, b| a.total_cmp(b));
        self.last_nanos = sample_nanos[sample_nanos.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_nanos: 0.0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.last_nanos);
        self
    }

    /// Runs one named benchmark receiving a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            last_nanos: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.last_nanos);
        self
    }

    /// Closes the group (reporting happens per benchmark as it runs).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, nanos: f64) {
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if nanos > 0.0 => {
                let gib_s = bytes as f64 / nanos / 1.073_741_824;
                format!("  {gib_s:8.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if nanos > 0.0 => {
                let me_s = n as f64 * 1e3 / nanos;
                format!("  {me_s:8.3} Melem/s")
            }
            _ => String::new(),
        };
        println!("{}/{id:<40} {:>12.1} ns/iter{rate}", self.name, nanos);
    }
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| {
            b.iter(|| (0..1024u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 12).to_string(), "f/12");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
