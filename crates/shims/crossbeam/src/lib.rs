//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io; the workspace only
//! uses `crossbeam::scope` with `Scope::spawn`, which maps directly onto
//! `std::thread::scope` (stabilized long after crossbeam pioneered the
//! API). One behavioral difference: if a spawned thread panics, this shim
//! propagates the panic out of [`scope`] (std semantics) instead of
//! returning `Err` — every caller in the workspace immediately
//! `.expect()`s the result, so the observable behavior is identical.

#![forbid(unsafe_code)]

use std::any::Any;

/// A fork-join scope handle, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread joined at scope exit. The closure receives the
    /// scope handle (crossbeam convention) for nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; all
/// threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        super::scope(|scope| {
            for chunk in data.chunks(25) {
                scope.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    counter.fetch_add(sum, Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(counter.into_inner(), (0..100).sum::<u64>());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let flag = AtomicU64::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    flag.store(7, Ordering::SeqCst);
                });
            });
        })
        .expect("no panics");
        assert_eq!(flag.into_inner(), 7);
    }
}
