//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, pure-std implementation of exactly the `rand 0.8`
//! surface the simulation code uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`] for `u8/u16/u32/u64/usize/bool/f64`
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open `f64` ranges
//! * [`Rng::gen_bool`] and [`Rng::fill`] for `[u8]`
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not
//! ChaCha12 like the real `StdRng`, so *values differ from upstream*, but
//! every consumer in this workspace only relies on determinism for a fixed
//! seed and on reasonable statistical quality, both of which hold.

#![forbid(unsafe_code)]

/// Byte-oriented random core, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
///
/// Generic over the concrete generator (like upstream `rand`'s
/// `Distribution<T>` for `Standard`): monomorphization lets the compiler
/// inline `next_u64` into hot simulation loops, where a `dyn` indirection
/// per draw would dominate the per-bit cost of the channel models.
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is below 2^-64 per draw for the span sizes the
                // workspace uses; acceptable for simulation workloads.
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Slices fillable by [`Rng::fill`].
pub trait Fill {
    /// Fills `self` with uniform random content.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// Fills `dest` with uniform random content.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 — the
    /// deterministic workhorse standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn fill_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn f64_gen_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
