//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io; the workspace uses
//! `parking_lot::Mutex` for its poison-free `lock()` ergonomics, which
//! this shim reproduces over `std::sync::Mutex`. A poisoned std mutex
//! (a panic while the lock was held) aborts via `expect`, matching
//! parking_lot's practical behavior in this workspace where lock-holding
//! code never panics.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard, RwLock as StdRwLock};

/// A mutex whose `lock` does not return a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex not poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex not poisoned")
    }
}

/// A reader-writer lock whose guards do not return poison `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock not poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock not poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock not poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
