//! Property-based tests for the GF(2) polynomial algebra.

use gf2poly::factor::factor;
use gf2poly::irred::is_irreducible;
use gf2poly::order::{order_of_x, order_of_x_by_scan};
use gf2poly::{ModCtx, Poly};
use proptest::prelude::*;

/// Arbitrary polynomial of degree < 32 (mask below 2^32).
fn small_poly() -> impl Strategy<Value = Poly> {
    any::<u32>().prop_map(|m| Poly::from_mask(m as u128))
}

/// Arbitrary nonzero polynomial of degree < 24.
fn nonzero_poly() -> impl Strategy<Value = Poly> {
    (1u32..(1 << 24)).prop_map(|m| Poly::from_mask(m as u128))
}

proptest! {
    #[test]
    fn addition_commutes_and_cancels(a in small_poly(), b in small_poly()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + b, a);
        prop_assert_eq!(a + Poly::ZERO, a);
    }

    #[test]
    fn multiplication_commutes_and_distributes(
        a in small_poly(), b in small_poly(), c in small_poly()
    ) {
        prop_assert_eq!(a.checked_mul(b).unwrap(), b.checked_mul(a).unwrap());
        let left = a.checked_mul(b + c).unwrap();
        let right = a.checked_mul(b).unwrap() + a.checked_mul(c).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn multiplication_associates(a in small_poly(), b in small_poly(), c in small_poly()) {
        // Keep degrees in range: reduce inputs to < 2^14 masks.
        let a = Poly::from_mask(a.mask() & 0x3FFF);
        let b = Poly::from_mask(b.mask() & 0x3FFF);
        let c = Poly::from_mask(c.mask() & 0x3FFF);
        let ab_c = a.checked_mul(b).unwrap().checked_mul(c).unwrap();
        let a_bc = a.checked_mul(b.checked_mul(c).unwrap()).unwrap();
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn division_invariant(a in small_poly(), b in nonzero_poly()) {
        let (q, r) = a.div_rem(b).unwrap();
        prop_assert_eq!(q.checked_mul(b).unwrap() + r, a);
        if let Some(rd) = r.degree() {
            prop_assert!(rd < b.degree().unwrap());
        }
    }

    #[test]
    fn gcd_divides_both_and_is_symmetric(a in nonzero_poly(), b in nonzero_poly()) {
        let g = a.gcd(b);
        prop_assert_eq!(g, b.gcd(a));
        prop_assert!(!g.is_zero());
        prop_assert_eq!(a % g, Poly::ZERO);
        prop_assert_eq!(b % g, Poly::ZERO);
    }

    #[test]
    fn reciprocal_is_involutive_and_weight_preserving(a in nonzero_poly()) {
        // Involution needs a nonzero constant term; x^k·f(1/x) drops
        // trailing x factors otherwise (e.g. reciprocal of x^2 is 1).
        let a = Poly::from_mask(a.mask() | 1);
        prop_assert_eq!(a.reciprocal().reciprocal(), a);
        prop_assert_eq!(a.reciprocal().weight(), a.weight());
    }

    #[test]
    fn reciprocal_of_product_is_product_of_reciprocals(
        a in (1u32..(1 << 12)), b in (1u32..(1 << 12))
    ) {
        let pa = Poly::from_mask(a as u128);
        let pb = Poly::from_mask(b as u128);
        // Reciprocal is multiplicative only when constant terms are nonzero
        // (no x-power is silently dropped by the reversal).
        prop_assume!(pa.has_constant_term() && pb.has_constant_term());
        let prod = pa.checked_mul(pb).unwrap();
        prop_assert_eq!(
            prod.reciprocal(),
            pa.reciprocal().checked_mul(pb.reciprocal()).unwrap()
        );
    }

    #[test]
    fn factorization_reconstructs_and_is_irreducible(a in (2u32..(1 << 20))) {
        let f = Poly::from_mask(a as u128);
        let fac = factor(f);
        prop_assert_eq!(fac.product(), f);
        for &(p, m) in fac.factors() {
            prop_assert!(m >= 1);
            prop_assert!(is_irreducible(p));
        }
        // Signature degree sums to the polynomial degree.
        prop_assert_eq!(fac.signature().total_degree(), f.degree().unwrap());
    }

    #[test]
    fn parity_factor_iff_even_weight(a in (2u32..(1 << 16))) {
        let f = Poly::from_mask(a as u128);
        let fac = factor(f);
        prop_assert_eq!(fac.has_parity_factor(), f.divisible_by_x_plus_1());
    }

    #[test]
    fn order_matches_scan_for_small_moduli(a in (3u32..(1 << 14))) {
        let f = Poly::from_mask((a | 1) as u128); // force constant term
        prop_assume!(f.degree().unwrap() >= 1);
        let fast = order_of_x(f).unwrap();
        // Order of x mod f divides lcm of subfield group orders; for
        // degree ≤ 14 it is at most 2^14 ⋅ 2^4 — scan far enough.
        let slow = order_of_x_by_scan(f, 1 << 20).unwrap();
        prop_assert_eq!(slow, Some(fast as u64));
    }

    #[test]
    fn modring_mul_matches_schoolbook(
        m in (4u32..(1 << 16)), a in any::<u16>(), b in any::<u16>()
    ) {
        let modulus = Poly::from_mask(m as u128);
        prop_assume!(modulus.degree().unwrap() >= 1);
        let ctx = ModCtx::new(modulus).unwrap();
        let pa = Poly::from_mask(a as u128);
        let pb = Poly::from_mask(b as u128);
        let expected = pa.checked_mul(pb).unwrap() % modulus;
        prop_assert_eq!(ctx.mul(pa, pb), expected);
    }

    #[test]
    fn display_parse_round_trip(a in small_poly()) {
        let shown = a.to_string();
        let parsed: Poly = shown.parse().unwrap();
        prop_assert_eq!(parsed, a);
    }
}
