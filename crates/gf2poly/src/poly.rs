//! The [`Poly`] type: dense polynomials over GF(2) up to degree 127.

use crate::{Error, Result};
use std::fmt;
use std::ops::{Add, AddAssign, BitXor, Mul, Rem};
use std::str::FromStr;

/// A polynomial over GF(2) with degree at most 127.
///
/// Bit *i* of the mask is the coefficient of `x^i`. The zero polynomial is
/// the zero mask. `Poly` is `Copy` and totally ordered by its mask, which
/// orders polynomials first by degree and then lexicographically by
/// coefficients — convenient for canonical factor lists.
///
/// ```
/// use gf2poly::Poly;
/// let f = Poly::from_mask(0b1011); // x^3 + x + 1
/// assert_eq!(f.degree(), Some(3));
/// assert_eq!(f.to_string(), "x^3 + x + 1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Poly(u128);

impl Poly {
    /// The zero polynomial.
    pub const ZERO: Poly = Poly(0);
    /// The constant polynomial `1`.
    pub const ONE: Poly = Poly(1);
    /// The monomial `x`.
    pub const X: Poly = Poly(2);
    /// The polynomial `x + 1`, the only degree-1 irreducible with nonzero
    /// constant term (ubiquitous in the paper: it provides the implicit
    /// parity bit of every HD=6 polynomial found).
    pub const X_PLUS_1: Poly = Poly(3);
    /// Largest supported degree.
    pub const MAX_DEGREE: u32 = 127;

    /// Creates a polynomial from its coefficient mask (bit *i* ↦ `x^i`).
    ///
    /// ```
    /// use gf2poly::Poly;
    /// assert_eq!(Poly::from_mask(0x7).to_string(), "x^2 + x + 1");
    /// ```
    #[inline]
    pub const fn from_mask(mask: u128) -> Poly {
        Poly(mask)
    }

    /// Creates a polynomial as a sum of monomials `x^e` for each exponent.
    ///
    /// Duplicate exponents cancel (coefficients are in GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if any exponent exceeds [`Poly::MAX_DEGREE`].
    pub fn from_exponents(exponents: &[u32]) -> Poly {
        let mut mask = 0u128;
        for &e in exponents {
            assert!(e <= Self::MAX_DEGREE, "exponent {e} exceeds max degree");
            mask ^= 1u128 << e;
        }
        Poly(mask)
    }

    /// Returns the coefficient mask (bit *i* ↦ `x^i`).
    #[inline]
    pub const fn mask(self) -> u128 {
        self.0
    }

    /// Returns the degree, or `None` for the zero polynomial.
    #[inline]
    pub const fn degree(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(127 - self.0.leading_zeros())
        }
    }

    /// Returns `true` for the zero polynomial.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the constant term (coefficient of `x^0`) is 1.
    #[inline]
    pub const fn has_constant_term(self) -> bool {
        self.0 & 1 == 1
    }

    /// Number of nonzero coefficients (the polynomial's weight).
    ///
    /// The generator polynomial itself is always an undetectable error
    /// pattern once it fits into the codeword, so a generator's weight is an
    /// upper bound on the achievable Hamming distance at any length.
    #[inline]
    pub const fn weight(self) -> u32 {
        self.0.count_ones()
    }

    /// Evaluates the polynomial at `x = 1`, i.e. the parity of its weight.
    ///
    /// A polynomial is divisible by `x + 1` exactly when this returns 0.
    #[inline]
    pub const fn eval_at_one(self) -> u8 {
        (self.0.count_ones() & 1) as u8
    }

    /// Returns `true` if `x + 1` divides the polynomial.
    #[inline]
    pub const fn divisible_by_x_plus_1(self) -> bool {
        self.eval_at_one() == 0
    }

    /// Multiplication, returning an error if the product degree exceeds 127.
    ///
    /// # Errors
    ///
    /// [`Error::DegreeOverflow`] if `deg(self) + deg(rhs) > 127`.
    pub fn checked_mul(self, rhs: Poly) -> Result<Poly> {
        match (self.degree(), rhs.degree()) {
            (Some(a), Some(b)) if a + b > Self::MAX_DEGREE => Err(Error::DegreeOverflow),
            (None, _) | (_, None) => Ok(Poly::ZERO),
            _ => {
                let mut acc = 0u128;
                let mut a = self.0;
                let mut b = rhs.0;
                while b != 0 {
                    if b & 1 == 1 {
                        acc ^= a;
                    }
                    a <<= 1;
                    b >>= 1;
                }
                Ok(Poly(acc))
            }
        }
    }

    /// Squares the polynomial (`f(x)^2 = f(x^2)` in characteristic 2).
    ///
    /// # Errors
    ///
    /// [`Error::DegreeOverflow`] if `2·deg(self) > 127`.
    pub fn checked_square(self) -> Result<Poly> {
        self.checked_mul(self)
    }

    /// Polynomial division: returns `(quotient, remainder)` with
    /// `self = q·rhs + r` and `deg r < deg rhs`.
    ///
    /// # Errors
    ///
    /// [`Error::DivisionByZero`] if `rhs` is zero.
    pub fn div_rem(self, rhs: Poly) -> Result<(Poly, Poly)> {
        let d = rhs.degree().ok_or(Error::DivisionByZero)?;
        let mut rem = self.0;
        let mut quot = 0u128;
        while let Some(rd) = Poly(rem).degree() {
            if rd < d {
                break;
            }
            let shift = rd - d;
            quot ^= 1u128 << shift;
            rem ^= rhs.0 << shift;
        }
        Ok((Poly(quot), Poly(rem)))
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    ///
    /// `gcd(0, 0)` is defined as `0`.
    pub fn gcd(self, other: Poly) -> Poly {
        let (mut a, mut b) = (self, other);
        while !b.is_zero() {
            let r = a.div_rem(b).expect("b is nonzero").1;
            a = b;
            b = r;
        }
        a
    }

    /// Formal derivative. In GF(2) only odd-exponent terms survive,
    /// dropping one degree: `d/dx x^(2k+1) = x^(2k)`.
    pub fn derivative(self) -> Poly {
        // Keep odd-position bits, shift down by one.
        const ODD: u128 = 0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA;
        Poly((self.0 & ODD) >> 1)
    }

    /// Exact square root when the polynomial is a perfect square
    /// (all exponents even), i.e. `f(x) = g(x)^2 = g(x^2)`.
    ///
    /// Returns `None` if any odd-exponent coefficient is set.
    pub fn sqrt(self) -> Option<Poly> {
        const ODD: u128 = 0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA;
        if self.0 & ODD != 0 {
            return None;
        }
        let mut out = 0u128;
        let mut v = self.0;
        let mut i = 0;
        while v != 0 {
            if v & 1 == 1 {
                out |= 1u128 << i;
            }
            v >>= 2;
            i += 1;
        }
        Some(Poly(out))
    }

    /// The reciprocal polynomial: coefficients reversed about the degree.
    ///
    /// Reciprocal pairs have identical error-detection weight profiles
    /// (\[Peterson72\], exploited by the paper to halve its search space).
    ///
    /// ```
    /// use gf2poly::Poly;
    /// let f = Poly::from_mask(0b1101);            // x^3 + x^2 + 1
    /// assert_eq!(f.reciprocal(), Poly::from_mask(0b1011)); // x^3 + x + 1
    /// ```
    pub fn reciprocal(self) -> Poly {
        match self.degree() {
            None => Poly::ZERO,
            Some(d) => Poly(self.0.reverse_bits() >> (127 - d)),
        }
    }

    /// Returns `true` if the polynomial equals its own reciprocal
    /// (a palindrome). Palindromes are the fixed points of reciprocal
    /// pairing; the paper's count of 1,073,774,592 distinct 32-bit
    /// polynomials is `2^30 + 2^15` because of them.
    pub fn is_palindrome(self) -> bool {
        self.reciprocal() == self
    }

    /// Multiplies by `x^k`.
    ///
    /// # Errors
    ///
    /// [`Error::DegreeOverflow`] if the shifted degree exceeds 127.
    // Not the `Shl` trait: that cannot signal overflow, and this must.
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, k: u32) -> Result<Poly> {
        match self.degree() {
            None => Ok(Poly::ZERO),
            Some(d) if d + k > Self::MAX_DEGREE => Err(Error::DegreeOverflow),
            _ => Ok(Poly(self.0 << k)),
        }
    }

    /// Iterates over the exponents with nonzero coefficients, ascending.
    pub fn exponents(self) -> impl Iterator<Item = u32> {
        let mut mask = self.0;
        std::iter::from_fn(move || {
            if mask == 0 {
                None
            } else {
                let e = mask.trailing_zeros();
                mask &= mask - 1;
                Some(e)
            }
        })
    }
}

impl Add for Poly {
    type Output = Poly;
    // GF(2) addition IS xor; the lint expects integer semantics.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Poly) -> Poly {
        Poly(self.0 ^ rhs.0)
    }
}

impl AddAssign for Poly {
    // GF(2) addition IS xor; the lint expects integer semantics.
    #[allow(clippy::suspicious_op_assign_impl)]
    #[inline]
    fn add_assign(&mut self, rhs: Poly) {
        self.0 ^= rhs.0;
    }
}

impl BitXor for Poly {
    type Output = Poly;
    #[inline]
    fn bitxor(self, rhs: Poly) -> Poly {
        Poly(self.0 ^ rhs.0)
    }
}

impl Mul for Poly {
    type Output = Poly;

    /// Panicking multiplication; prefer [`Poly::checked_mul`] in library code.
    ///
    /// # Panics
    ///
    /// Panics if the product degree exceeds [`Poly::MAX_DEGREE`].
    fn mul(self, rhs: Poly) -> Poly {
        self.checked_mul(rhs).expect("polynomial product overflow")
    }
}

impl Rem for Poly {
    type Output = Poly;

    /// Remainder of polynomial division.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: Poly) -> Poly {
        self.div_rem(rhs).expect("remainder by zero polynomial").1
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for e in (0..=self.degree().unwrap()).rev() {
            if self.0 >> e & 1 == 1 {
                if !first {
                    write!(f, " + ")?;
                }
                match e {
                    0 => write!(f, "1")?,
                    1 => write!(f, "x")?,
                    _ => write!(f, "x^{e}")?,
                }
                first = false;
            }
        }
        Ok(())
    }
}

impl fmt::LowerHex for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u128> for Poly {
    fn from(mask: u128) -> Poly {
        Poly(mask)
    }
}

impl From<u64> for Poly {
    fn from(mask: u64) -> Poly {
        Poly(mask as u128)
    }
}

impl FromStr for Poly {
    type Err = Error;

    /// Parses either a hex mask (`0x104c11db7`) or a term list
    /// (`x^32 + x^26 + 1`, whitespace optional).
    fn from_str(s: &str) -> Result<Poly> {
        let t = s.trim();
        if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
            let mask = u128::from_str_radix(hex, 16)
                .map_err(|_| Error::Parse(format!("bad hex literal {t:?}")))?;
            return Ok(Poly(mask));
        }
        if t == "0" {
            return Ok(Poly::ZERO);
        }
        let mut mask = 0u128;
        for term in t.split('+') {
            let term = term.trim();
            mask ^= match term {
                "1" => 1,
                "x" => 2,
                _ => {
                    let e = term
                        .strip_prefix("x^")
                        .and_then(|e| e.parse::<u32>().ok())
                        .ok_or_else(|| Error::Parse(format!("bad term {term:?}")))?;
                    if e > Self::MAX_DEGREE {
                        return Err(Error::Parse(format!("exponent {e} too large")));
                    }
                    1u128 << e
                }
            };
        }
        Ok(Poly(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_weight() {
        assert_eq!(Poly::ZERO.degree(), None);
        assert_eq!(Poly::ONE.degree(), Some(0));
        assert_eq!(Poly::X.degree(), Some(1));
        let p = Poly::from_exponents(&[32, 26, 0]);
        assert_eq!(p.degree(), Some(32));
        assert_eq!(p.weight(), 3);
    }

    #[test]
    fn addition_is_xor_and_self_inverse() {
        let a = Poly::from_mask(0b1011);
        let b = Poly::from_mask(0b0110);
        assert_eq!((a + b).mask(), 0b1101);
        assert_eq!(a + a, Poly::ZERO);
    }

    #[test]
    fn multiplication_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1
        assert_eq!(Poly::X_PLUS_1 * Poly::X_PLUS_1, Poly::from_mask(0b101));
        // (x^2 + x + 1)(x + 1) = x^3 + 1
        let a = Poly::from_mask(0b111);
        assert_eq!(a * Poly::X_PLUS_1, Poly::from_mask(0b1001));
        assert_eq!(a * Poly::ZERO, Poly::ZERO);
        assert_eq!(a * Poly::ONE, a);
    }

    #[test]
    fn multiplication_overflow_detected() {
        let big = Poly::from_mask(1u128 << 127);
        assert_eq!(big.checked_mul(Poly::X), Err(Error::DegreeOverflow));
        assert_eq!(big.checked_mul(Poly::ONE), Ok(big));
    }

    #[test]
    fn division_round_trip() {
        let a = Poly::from_mask(0x1_04C1_1DB7); // 802.3 generator
        let b = Poly::from_mask(0b111_0101);
        let (q, r) = a.div_rem(b).unwrap();
        assert!(r.degree().is_none_or(|d| d < b.degree().unwrap()));
        assert_eq!(q * b + r, a);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert_eq!(Poly::ONE.div_rem(Poly::ZERO), Err(Error::DivisionByZero));
    }

    #[test]
    fn gcd_basics() {
        let a = Poly::from_mask(0b1001); // x^3+1 = (x+1)(x^2+x+1)
        let b = Poly::from_mask(0b11);
        assert_eq!(a.gcd(b), b);
        assert_eq!(Poly::ZERO.gcd(a), a);
        assert_eq!(a.gcd(Poly::ZERO), a);
        // Coprime polynomials.
        let p = Poly::from_mask(0b1011);
        let q = Poly::from_mask(0b1101);
        assert_eq!(p.gcd(q), Poly::ONE);
    }

    #[test]
    fn derivative_and_sqrt() {
        // d/dx (x^3 + x^2 + x + 1) = x^2 + 1
        let f = Poly::from_mask(0b1111);
        assert_eq!(f.derivative(), Poly::from_mask(0b101));
        // (x^2+1) = (x+1)^2, sqrt = x+1
        assert_eq!(Poly::from_mask(0b101).sqrt(), Some(Poly::X_PLUS_1));
        assert_eq!(Poly::from_mask(0b111).sqrt(), None);
        // A perfect square has zero derivative.
        let sq = Poly::from_mask(0b101).checked_square().unwrap();
        assert_eq!(sq.derivative(), Poly::ZERO);
    }

    #[test]
    fn reciprocal_involution() {
        let f = Poly::from_mask(0x1_04C1_1DB7);
        assert_eq!(f.reciprocal().reciprocal(), f);
        assert_eq!(f.reciprocal().degree(), f.degree());
        // x^3 + x^2 + 1 <-> x^3 + x + 1
        assert_eq!(
            Poly::from_mask(0b1101).reciprocal(),
            Poly::from_mask(0b1011)
        );
        assert!(Poly::from_mask(0b101).is_palindrome());
    }

    #[test]
    fn x_plus_1_divisibility_matches_parity() {
        let even = Poly::from_exponents(&[5, 3, 2, 0]);
        let odd = Poly::from_exponents(&[5, 3, 0]);
        assert!(even.divisible_by_x_plus_1());
        assert!(!odd.divisible_by_x_plus_1());
        assert_eq!(even % Poly::X_PLUS_1, Poly::ZERO);
        assert_ne!(odd % Poly::X_PLUS_1, Poly::ZERO);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let f = Poly::from_exponents(&[32, 26, 23, 1, 0]);
        let shown = f.to_string();
        assert_eq!(shown, "x^32 + x^26 + x^23 + x + 1");
        assert_eq!(shown.parse::<Poly>().unwrap(), f);
        assert_eq!("0x104c11db7".parse::<Poly>().unwrap().mask(), 0x1_04C1_1DB7);
        assert_eq!("0".parse::<Poly>().unwrap(), Poly::ZERO);
        assert!("x^^3".parse::<Poly>().is_err());
        assert!("x^200".parse::<Poly>().is_err());
    }

    #[test]
    fn exponents_iterator_ascends() {
        let f = Poly::from_exponents(&[7, 3, 0]);
        assert_eq!(f.exponents().collect::<Vec<_>>(), vec![0, 3, 7]);
    }
}
