//! Integer factorization support: deterministic Miller–Rabin and Brent's
//! variant of Pollard's rho for `u64`.
//!
//! The multiplicative order of `x` modulo an irreducible polynomial of
//! degree `d` divides `2^d − 1`; computing it requires the prime
//! factorization of `2^d − 1` for `d ≤ 64`. Rather than maintaining an
//! error-prone hardcoded table of Mersenne-number factorizations, we factor
//! at runtime — Pollard rho dispatches 64-bit numbers in microseconds.

/// Modular multiplication for `u64` via 128-bit intermediates.
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation for `u64`.
#[inline]
fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test for `u64`.
///
/// Uses the witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}, which
/// is proven sufficient for all `n < 3.3·10^24`, comfortably covering `u64`.
///
/// ```
/// use gf2poly::int::is_prime;
/// assert!(is_prime(2_147_483_647));       // 2^31 - 1, Mersenne prime
/// assert!(!is_prime(2_147_483_649));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let s = d.trailing_zeros();
    d >>= s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds one nontrivial factor of a composite `n` using Brent's cycle
/// variant of Pollard's rho. `n` must be composite and odd.
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 3 && !is_prime(n));
    let mut c = 1u64;
    loop {
        let f = |x: u64| (mul_mod(x, x, n) + c) % n;
        let (mut x, mut ys);
        let mut y = 2u64;
        let mut r = 1u64;
        let mut q = 1u64;
        let mut g;
        loop {
            x = y;
            for _ in 0..r {
                y = f(y);
            }
            let mut k = 0u64;
            loop {
                ys = y;
                let lim = 128.min(r - k);
                for _ in 0..lim {
                    y = f(y);
                    q = mul_mod(q, x.abs_diff(y), n);
                }
                g = gcd_u64(q, n);
                k += lim;
                if k >= r || g > 1 {
                    break;
                }
            }
            r <<= 1;
            if g > 1 {
                break;
            }
        }
        if g == n {
            // Backtrack one step at a time.
            g = 1;
            let mut y2 = ys;
            while g == 1 {
                y2 = f(y2);
                g = gcd_u64(x.abs_diff(y2), n);
            }
        }
        if g != n {
            return g;
        }
        c += 1; // rare: retry with a different polynomial increment
    }
}

/// Greatest common divisor for `u64`.
pub fn gcd_u64(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple with 128-bit intermediate, saturating at `u128::MAX`.
pub fn lcm_u128(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = {
        let (mut x, mut y) = (a, b);
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        x
    };
    (a / g).saturating_mul(b)
}

/// Full prime factorization of `n` as sorted `(prime, exponent)` pairs.
///
/// ```
/// use gf2poly::int::factor_u64;
/// // 2^28 - 1 = 3 · 5 · 29 · 43 · 113 · 127
/// assert_eq!(
///     factor_u64((1 << 28) - 1),
///     vec![(3, 1), (5, 1), (29, 1), (43, 1), (113, 1), (127, 1)]
/// );
/// ```
pub fn factor_u64(n: u64) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = Vec::new();
    if n < 2 {
        return out;
    }
    let mut stack = vec![n];
    let mut primes: Vec<u64> = Vec::new();
    while let Some(mut m) = stack.pop() {
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            while m % p == 0 {
                primes.push(p);
                m /= p;
            }
        }
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            primes.push(m);
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    primes.sort_unstable();
    for p in primes {
        match out.last_mut() {
            Some((q, e)) if *q == p => *e += 1,
            _ => out.push((p, 1)),
        }
    }
    out
}

/// Factorization of `2^d − 1`, the group order of `GF(2^d)^*`.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 64`.
pub fn factor_two_pow_minus_1(d: u32) -> Vec<(u64, u32)> {
    assert!((1..=64).contains(&d), "degree must be in 1..=64");
    let n = if d == 64 { u64::MAX } else { (1u64 << d) - 1 };
    factor_u64(n)
}

/// The distinct prime divisors of `n`.
pub fn prime_divisors(n: u64) -> Vec<u64> {
    factor_u64(n).into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primality() {
        let primes = [2u64, 3, 5, 7, 11, 13, 127, 8191, 131071, 524287];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 6, 9, 15, 21, 25, 1001, 2047 /* 23·89 */] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn mersenne_prime_exponents_match_known_list() {
        // Mersenne primes 2^p - 1 for p in this range: known classical list.
        let mersenne_exp = [2u32, 3, 5, 7, 13, 17, 19, 31, 61];
        for d in 2..=61 {
            let n = (1u128 << d) - 1;
            let expect = mersenne_exp.contains(&d);
            assert_eq!(is_prime(n as u64), expect, "2^{d}-1 primality");
        }
    }

    #[test]
    fn factorization_reconstructs_value() {
        for n in [1u64, 2, 12, 360, 1 << 20, 999_999_937, 0xFFFF_FFFF] {
            let f = factor_u64(n);
            let prod: u128 = f.iter().map(|&(p, e)| (p as u128).pow(e)).product();
            if n >= 2 {
                assert_eq!(prod, n as u128, "n={n}");
                for &(p, _) in &f {
                    assert!(is_prime(p), "factor {p} of {n} must be prime");
                }
            } else {
                assert!(f.is_empty());
            }
        }
    }

    #[test]
    fn known_mersenne_factorizations() {
        // Classical values cross-checked against published tables; these are
        // exactly the group orders the paper's polynomials live in.
        assert_eq!(
            factor_two_pow_minus_1(32),
            vec![(3, 1), (5, 1), (17, 1), (257, 1), (65537, 1)]
        );
        assert_eq!(factor_two_pow_minus_1(31), vec![(2147483647, 1)]);
        assert_eq!(
            factor_two_pow_minus_1(30),
            vec![(3, 2), (7, 1), (11, 1), (31, 1), (151, 1), (331, 1)]
        );
        assert_eq!(factor_two_pow_minus_1(15), vec![(7, 1), (31, 1), (151, 1)]);
        assert_eq!(
            factor_two_pow_minus_1(28),
            vec![(3, 1), (5, 1), (29, 1), (43, 1), (113, 1), (127, 1)]
        );
    }

    #[test]
    fn factors_large_semiprime() {
        // 2^59 - 1 = 179951 * 3203431780337
        let f = factor_u64((1 << 59) - 1);
        assert_eq!(f, vec![(179951, 1), (3203431780337, 1)]);
    }

    #[test]
    fn factors_u64_max() {
        // 2^64 - 1 = 3 · 5 · 17 · 257 · 641 · 65537 · 6700417
        assert_eq!(
            factor_two_pow_minus_1(64),
            vec![
                (3, 1),
                (5, 1),
                (17, 1),
                (257, 1),
                (641, 1),
                (65537, 1),
                (6700417, 1)
            ]
        );
    }

    #[test]
    fn lcm_and_gcd() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(lcm_u128(4, 6), 12);
        assert_eq!(lcm_u128(0, 5), 0);
        assert_eq!(lcm_u128(7, 13), 91);
    }
}
