//! Multiplicative order of `x` in GF(2)\[x\]/(f) — algebraically, via the
//! factorization of `f` and of the group orders `2^d − 1`.
//!
//! The order `e` is the smallest positive exponent with `x^e ≡ 1 (mod f)`,
//! equivalently the degree of the smallest weight-2 multiple `x^e + 1` of
//! `f`. In CRC terms (Koopman §3/Table 1): a 2-bit error becomes
//! undetectable exactly when the codeword is long enough to contain
//! `x^e + 1`, i.e. at data-word length `e − (r − 1)` for an `r`-bit CRC.
//! This module therefore pins the `HD=2` column of Table 1 exactly.

use crate::factor::factor;
use crate::int::{factor_u64, lcm_u128};
use crate::modring::ModCtx;
use crate::poly::Poly;
use crate::{Error, Result};

/// Multiplicative order of `x` modulo an irreducible `p` of degree `d ≤ 63`:
/// the smallest divisor `e` of `2^d − 1` with `x^e ≡ 1`.
///
/// # Errors
///
/// [`Error::ZeroPolynomial`] for constants, [`Error::DegreeOverflow`] for
/// degree > 63.
pub fn order_of_x_irreducible(p: Poly) -> Result<u64> {
    let d = match p.degree() {
        None | Some(0) => return Err(Error::ZeroPolynomial),
        Some(d) => d,
    };
    if d > 63 {
        return Err(Error::DegreeOverflow);
    }
    if p == Poly::X {
        return Err(Error::DivisibleByX);
    }
    if p == Poly::X_PLUS_1 {
        return Ok(1);
    }
    let ctx = ModCtx::new(p)?;
    let group = (1u64 << d) - 1;
    debug_assert_eq!(
        ctx.x_pow(group),
        Poly::ONE,
        "x^(2^d-1) must be 1 mod irreducible"
    );
    let mut e = group;
    for (q, mult) in factor_u64(group) {
        for _ in 0..mult {
            if e.is_multiple_of(q) && ctx.x_pow(e / q) == Poly::ONE {
                e /= q;
            } else {
                break;
            }
        }
    }
    Ok(e)
}

/// Multiplicative order of `x` modulo an arbitrary `f` with `f(0) = 1`.
///
/// For `f = Π pᵢ^mᵢ` the order is `lcmᵢ(ord(pᵢ)) · 2^⌈log₂ max mᵢ⌉`
/// (the characteristic-2 correction for repeated factors).
///
/// ```
/// use gf2poly::{order_of_x, Poly};
/// // 0xBA0DC66B (full form): order 114,695 ⇒ 2-bit errors first
/// // undetectable at data length 114,695 − 31 = 114,664 — matching the
/// // paper's Table 1 "HD=2 at 114664+" entry.
/// let g = Poly::from_mask(0x1_741B_8CD7);
/// assert_eq!(order_of_x(g).unwrap(), 114_695);
/// ```
///
/// # Errors
///
/// [`Error::DivisibleByX`] if the constant term is zero (then `x^e ≡ 1` is
/// impossible), [`Error::ZeroPolynomial`] for constants.
pub fn order_of_x(f: Poly) -> Result<u128> {
    match f.degree() {
        None | Some(0) => return Err(Error::ZeroPolynomial),
        Some(_) => {}
    }
    if !f.has_constant_term() {
        return Err(Error::DivisibleByX);
    }
    let fac = factor(f);
    let mut l: u128 = 1;
    let mut max_mult = 1u32;
    for &(p, m) in fac.factors() {
        let e = order_of_x_irreducible(p)?;
        l = lcm_u128(l, e as u128);
        max_mult = max_mult.max(m);
    }
    // Smallest power of two ≥ max multiplicity.
    let pow2 = max_mult.next_power_of_two() as u128;
    Ok(l * pow2)
}

/// Order computed by brute-force iteration of the registered LFSR —
/// a slow reference used for cross-validation in tests and experiments.
///
/// Returns `None` if the order exceeds `cap`.
pub fn order_of_x_by_scan(f: Poly, cap: u64) -> Result<Option<u64>> {
    match f.degree() {
        None | Some(0) => return Err(Error::ZeroPolynomial),
        Some(_) => {}
    }
    if !f.has_constant_term() {
        return Err(Error::DivisibleByX);
    }
    let ctx = ModCtx::new(f)?;
    // Invariant: acc = x^e mod f at the top of iteration e.
    let mut acc = ctx.reduce(Poly::X);
    for e in 1..=cap {
        if acc == Poly::ONE {
            return Ok(Some(e));
        }
        acc = ctx.mul(acc, Poly::X);
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_of_small_irreducibles() {
        // x^3+x+1 primitive: order 7. x^4+x^3+x^2+x+1: order 5.
        assert_eq!(order_of_x_irreducible(Poly::from_mask(0b1011)).unwrap(), 7);
        assert_eq!(order_of_x_irreducible(Poly::from_mask(0b11111)).unwrap(), 5);
        assert_eq!(order_of_x_irreducible(Poly::X_PLUS_1).unwrap(), 1);
        assert!(order_of_x_irreducible(Poly::X).is_err());
    }

    #[test]
    fn composite_order_with_repeated_factors() {
        // (x+1)^2: order = 1 * 2 = 2 (x^2 + 1 = (x+1)^2).
        let f = Poly::from_mask(0b101);
        assert_eq!(order_of_x(f).unwrap(), 2);
        // (x+1)^3: multiplicity 3 → ×4 → order 4 (x^4+1 = (x+1)^4, but
        // (x+1)^3 | x^4+1 and not x^2+1): verify.
        let f3 = Poly::X_PLUS_1 * Poly::X_PLUS_1 * Poly::X_PLUS_1;
        assert_eq!(order_of_x(f3).unwrap(), 4);
        // (x+1)(x^3+x+1): lcm(1,7) = 7.
        let f = Poly::X_PLUS_1 * Poly::from_mask(0b1011);
        assert_eq!(order_of_x(f).unwrap(), 7);
    }

    #[test]
    fn order_rejects_x_divisible() {
        assert_eq!(order_of_x(Poly::X), Err(Error::DivisibleByX));
        assert_eq!(order_of_x(Poly::from_mask(0b110)), Err(Error::DivisibleByX));
    }

    #[test]
    fn paper_table1_hd2_onsets() {
        // Table 1's HD=2 column: first 2-bit-undetectable data length is
        // order − 31 for each 32-bit polynomial.
        let cases: [(u64, u128); 5] = [
            (0xBA0DC66B, 114_695), // HD=2 at 114664+
            (0xFA567D89, 65_534),  // HD=2 at 65503+
            (0x992C1A4C, 65_538),  // HD=2 at 65507+
            (0x90022004, 65_538),  // HD=2 at 65507+
            (0xD419CC15, 65_537),  // HD=2 at 65506+
        ];
        for (k, order) in cases {
            let full = Poly::from_mask(((k as u128) << 1 | 1) | (1 << 32));
            assert_eq!(order_of_x(full).unwrap(), order, "poly {k:#010X}");
        }
    }

    #[test]
    fn low_tap_hd5_poly_order() {
        // 0x80108400 {32}: order 65537 ⇒ HD=2 at 65506+ like 0xD419CC15.
        let full = Poly::from_mask((0x80108400u128 << 1 | 1) | (1 << 32));
        assert_eq!(order_of_x(full).unwrap(), 65_537);
    }

    #[test]
    fn iscsi_poly_order_is_mersenne_prime() {
        // 0x8F6E37A0 {1,31}: primitive degree-31 factor ⇒ order 2^31 − 1,
        // which is why its HD=4 span runs far past the 128 Kbit horizon.
        let full = Poly::from_mask((0x8F6E37A0u128 << 1 | 1) | (1 << 32));
        assert_eq!(order_of_x(full).unwrap(), 2_147_483_647);
    }

    #[test]
    fn scan_agrees_with_algebraic_order() {
        for mask in [0b1011u128, 0b111, 0b101, 0b11111, 0b100101, 0b1100111] {
            let f = Poly::from_mask(mask);
            if !f.has_constant_term() {
                continue;
            }
            let fast = order_of_x(f).unwrap();
            let slow = order_of_x_by_scan(f, 100_000).unwrap();
            assert_eq!(slow, Some(fast as u64), "mask {mask:#b}");
        }
    }

    #[test]
    fn scan_respects_cap() {
        let f = Poly::from_mask((0x8F6E37A0u128 << 1 | 1) | (1 << 32));
        assert_eq!(order_of_x_by_scan(f, 1000).unwrap(), None);
    }
}
