//! Irreducibility and primitivity testing, plus counting, enumeration and
//! random generation of irreducible polynomials.
//!
//! The paper's polynomial classes are described by irreducible
//! factorizations; sampling random members of a class (for the Table 2
//! census estimate) requires drawing uniform random irreducibles of a given
//! degree, and the class sizes come from the necklace-counting formula
//! implemented in [`count_irreducibles`].

use crate::int::prime_divisors;
use crate::modring::ModCtx;
use crate::poly::Poly;
use crate::rng::SplitMix64;
use crate::{Error, Result};

/// Rabin's irreducibility test.
///
/// `f` of degree `n ≥ 1` is irreducible over GF(2) iff
/// `x^(2^n) ≡ x (mod f)` and, for every prime `q | n`,
/// `gcd(x^(2^(n/q)) − x, f) = 1`.
///
/// ```
/// use gf2poly::{is_irreducible, Poly};
/// assert!(is_irreducible(Poly::from_mask(0b1011)));   // x^3 + x + 1
/// assert!(!is_irreducible(Poly::from_mask(0b1001)));  // x^3 + 1 = (x+1)(x^2+x+1)
/// ```
pub fn is_irreducible(f: Poly) -> bool {
    let n = match f.degree() {
        None | Some(0) => return false,
        Some(n) => n,
    };
    if n == 1 {
        return true;
    }
    // Any irreducible of degree ≥ 2 has a nonzero constant term
    // (otherwise x divides it).
    if !f.has_constant_term() {
        return false;
    }
    let ctx = ModCtx::new(f).expect("degree >= 1");
    // x^(2^n) == x (mod f)
    if ctx.x_pow_pow2(n) != Poly::X {
        return false;
    }
    for q in prime_divisors(n as u64) {
        let k = n / q as u32;
        let h = ctx.x_pow_pow2(k) + Poly::X;
        if f.gcd(h).degree() != Some(0) {
            return false;
        }
    }
    true
}

/// Tests whether `f` is primitive: irreducible with `x` generating the full
/// multiplicative group of `GF(2^n)`, i.e. `ord(x) = 2^n − 1`.
///
/// Primitive polynomials maximize the length at which 2-bit errors stay
/// detectable; the paper proves no 32-bit *primitive* polynomial achieves
/// HD > 4 at the Ethernet MTU length.
///
/// ```
/// use gf2poly::{is_primitive, Poly};
/// assert!(is_primitive(Poly::from_mask(0b1011)));     // x^3 + x + 1
/// // x^4 + x^3 + x^2 + x + 1 is irreducible but has order 5, not 15.
/// assert!(!is_primitive(Poly::from_mask(0b11111)));
/// ```
pub fn is_primitive(f: Poly) -> bool {
    let n = match f.degree() {
        None | Some(0) => return false,
        Some(n) => n,
    };
    if n > 63 {
        // 2^n − 1 would overflow u64; unsupported widths are non-primitive
        // by fiat here, and unreachable from the CRC search space (≤ 64).
        return n == 64 && is_primitive_deg64(f);
    }
    if !is_irreducible(f) {
        return false;
    }
    let ctx = ModCtx::new(f).expect("degree >= 1");
    let group = (1u64 << n) - 1;
    for p in prime_divisors(group) {
        if ctx.x_pow(group / p) == Poly::ONE {
            return false;
        }
    }
    true
}

fn is_primitive_deg64(f: Poly) -> bool {
    if !is_irreducible(f) {
        return false;
    }
    let ctx = ModCtx::new(f).expect("degree 64");
    // 2^64 - 1 = 3 · 5 · 17 · 257 · 641 · 65537 · 6700417.
    for p in [3u64, 5, 17, 257, 641, 65537, 6700417] {
        // x^((2^64-1)/p): exponent fits u64.
        let e = u64::MAX / p;
        if ctx.x_pow(e) == Poly::ONE {
            return false;
        }
    }
    true
}

/// Number of irreducible polynomials of degree `d` over GF(2), by the
/// necklace/Möbius formula `(1/d) Σ_{e|d} μ(e) 2^(d/e)`.
///
/// ```
/// use gf2poly::count_irreducibles;
/// assert_eq!(count_irreducibles(1), 2);   // x, x+1
/// assert_eq!(count_irreducibles(15), 2182);
/// // The paper: "6.93·10^7 possibilities" of primitive degree-31 factors —
/// // every degree-31 irreducible is primitive because 2^31 − 1 is prime.
/// assert_eq!(count_irreducibles(31), 69_273_666);
/// ```
///
/// # Panics
///
/// Panics if `d == 0` or `d > 64`.
pub fn count_irreducibles(d: u32) -> u64 {
    assert!((1..=64).contains(&d), "degree must be in 1..=64");
    let mut total: i128 = 0;
    for e in 1..=d {
        if !d.is_multiple_of(e) {
            continue;
        }
        let mu = moebius(e as u64);
        if mu == 0 {
            continue;
        }
        let term = 1i128 << (d / e);
        total += mu as i128 * term;
    }
    debug_assert!(total > 0 && total % d as i128 == 0);
    (total / d as i128) as u64
}

/// Möbius function for small arguments.
fn moebius(n: u64) -> i32 {
    if n == 1 {
        return 1;
    }
    let f = crate::int::factor_u64(n);
    if f.iter().any(|&(_, e)| e > 1) {
        0
    } else if f.len().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

/// Iterator over all irreducible polynomials of degree `d`, in ascending
/// mask order. Intended for small degrees (the iteration space is `2^(d-1)`
/// candidates); the exhaustive-search experiments use it up to `d ≈ 16`.
pub fn enumerate_irreducibles(d: u32) -> impl Iterator<Item = Poly> {
    assert!(
        (1..=32).contains(&d),
        "enumeration supported for degree 1..=32"
    );
    let lo = 1u128 << d;
    let hi = 1u128 << (d + 1);
    (lo..hi).map(Poly::from_mask).filter(move |p| {
        // Degree-1: x and x+1 both count. Higher degrees need constant term.
        (d == 1 || p.has_constant_term()) && is_irreducible(*p)
    })
}

/// Draws a uniformly random irreducible polynomial of degree `d`
/// (with nonzero constant term when `d ≥ 2`) by rejection sampling;
/// the expected number of trials is about `d`.
///
/// # Errors
///
/// [`Error::DegreeOverflow`] if `d` is 0 or exceeds 64.
pub fn random_irreducible(d: u32, rng: &mut SplitMix64) -> Result<Poly> {
    if d == 0 || d > 64 {
        return Err(Error::DegreeOverflow);
    }
    if d == 1 {
        // Only x+1 is useful as a CRC factor (x is excluded by the
        // nonzero-constant-term requirement), but stay uniform over both.
        return Ok(if rng.next_u64() & 1 == 0 {
            Poly::X
        } else {
            Poly::X_PLUS_1
        });
    }
    loop {
        // Random monic degree-d polynomial with constant term 1.
        let inner_bits = d - 1;
        let mid = if inner_bits == 0 {
            0
        } else if inner_bits <= 64 {
            (rng.next_u64() as u128) & ((1u128 << inner_bits) - 1)
        } else {
            rng.next_u128() & ((1u128 << inner_bits) - 1)
        };
        let candidate = Poly::from_mask((1u128 << d) | (mid << 1) | 1);
        if is_irreducible(candidate) {
            return Ok(candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_one_and_two() {
        assert!(is_irreducible(Poly::X));
        assert!(is_irreducible(Poly::X_PLUS_1));
        assert!(is_irreducible(Poly::from_mask(0b111))); // x^2+x+1
        assert!(!is_irreducible(Poly::from_mask(0b101))); // (x+1)^2
        assert!(!is_irreducible(Poly::from_mask(0b110))); // x(x+1)
        assert!(!is_irreducible(Poly::ONE));
        assert!(!is_irreducible(Poly::ZERO));
    }

    #[test]
    fn counts_match_enumeration_small_degrees() {
        for d in 1..=12u32 {
            let counted = count_irreducibles(d);
            let enumerated = enumerate_irreducibles(d).count() as u64;
            assert_eq!(counted, enumerated, "degree {d}");
        }
    }

    #[test]
    fn known_irreducible_counts() {
        // OEIS A001037.
        let expect = [
            2u64, 1, 2, 3, 6, 9, 18, 30, 56, 99, 186, 335, 630, 1161, 2182, 4080,
        ];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(count_irreducibles(i as u32 + 1), e, "degree {}", i + 1);
        }
        assert_eq!(count_irreducibles(28), 9_586_395);
        assert_eq!(count_irreducibles(30), 35_790_267);
        assert_eq!(count_irreducibles(31), 69_273_666);
    }

    #[test]
    fn primitivity_subset_of_irreducibility() {
        for d in 2..=8u32 {
            let mut prim = 0u64;
            for p in enumerate_irreducibles(d) {
                if is_primitive(p) {
                    prim += 1;
                }
            }
            // #primitive(d) = φ(2^d - 1) / d  (OEIS A011260).
            let expect = [1u64, 2, 2, 6, 6, 18, 16][(d - 2) as usize];
            assert_eq!(prim, expect, "degree {d}");
        }
    }

    #[test]
    fn paper_polynomials_irreducibility_status() {
        // The paper calls 802.3 "irreducible, but not primitive", but direct
        // computation shows x has full order 2^32 − 1, i.e. the polynomial
        // IS primitive — consistent with the paper's own Table 1, where
        // 802.3 keeps HD=3 beyond 131072 bits (a small order would cap it).
        // We record the prose statement as a paper erratum in EXPERIMENTS.md.
        let ieee = Poly::from_mask(0x1_04C1_1DB7);
        assert!(is_irreducible(ieee));
        assert!(is_primitive(ieee));
        // Castagnoli 0xD419CC15 {32}: "irreducible, although not primitive".
        let cast = Poly::from_mask(0x1_A833_982B);
        assert!(is_irreducible(cast));
        assert!(!is_primitive(cast));
    }

    #[test]
    fn random_irreducibles_have_right_degree_and_pass_test() {
        let mut rng = SplitMix64::new(12345);
        for d in [2u32, 3, 8, 15, 28, 31, 32, 64] {
            let p = random_irreducible(d, &mut rng).unwrap();
            assert_eq!(p.degree(), Some(d));
            assert!(is_irreducible(p));
            if d >= 2 {
                assert!(p.has_constant_term());
            }
        }
        assert!(random_irreducible(0, &mut rng).is_err());
        assert!(random_irreducible(65, &mut rng).is_err());
    }

    #[test]
    fn degree_31_irreducibles_are_all_primitive() {
        // 2^31 − 1 is prime, so order can only be 1 or 2^31−1.
        let mut rng = SplitMix64::new(777);
        for _ in 0..3 {
            let p = random_irreducible(31, &mut rng).unwrap();
            assert!(is_primitive(p));
        }
    }
}
