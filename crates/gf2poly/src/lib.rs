//! Polynomial algebra over GF(2) for CRC analysis.
//!
//! This crate is the algebraic substrate for the reproduction of
//! Koopman's DSN 2002 paper *"32-Bit Cyclic Redundancy Codes for Internet
//! Applications"*. The paper reasons about CRC generator polynomials through
//! their algebraic structure: irreducibility, primitivity, multiplicative
//! order (which fixes where 2-bit errors become undetectable), divisibility
//! by `x + 1` (which makes all odd-weight errors detectable), and
//! irreducible-factorization *classes* such as `{1,3,28}`.
//!
//! Everything here is exact, deterministic (randomized factoring uses a
//! seeded, self-contained PRNG), and dependency-free.
//!
//! # Quick start
//!
//! ```
//! use gf2poly::{Poly, factor::factor, order::order_of_x};
//!
//! // The polynomial behind Koopman's 0xBA0DC66B (full 33-bit form).
//! let g = Poly::from_mask(0x1_741B_8CD7);
//! let f = factor(g);
//! assert_eq!(f.signature().to_string(), "{1,3,28}");
//! // The order of x mod g bounds where 2-bit errors become undetectable.
//! assert_eq!(order_of_x(g).unwrap(), 114_695);
//! ```
//!
//! # Representation
//!
//! [`Poly`] packs coefficients into a `u128` bit mask (bit *i* is the
//! coefficient of `x^i`), so degrees up to 127 are supported — enough for
//! CRC generators up to width 64 and all products arising during their
//! factorization. Arithmetic that could exceed that cap returns an error
//! rather than silently truncating.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod class;
pub mod factor;
pub mod int;
pub mod irred;
pub mod modring;
pub mod order;
pub mod poly;
pub mod rng;

pub use class::FactorClass;
pub use factor::{factor, FactorSignature, Factorization};
pub use irred::{count_irreducibles, is_irreducible, is_primitive};
pub use modring::{fold_constants, ModCtx};
pub use order::order_of_x;
pub use poly::Poly;
pub use rng::SplitMix64;

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by `gf2poly` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A result would exceed the supported maximum degree (127).
    DegreeOverflow,
    /// Division or reduction by the zero polynomial.
    DivisionByZero,
    /// The operation requires a nonzero constant term (i.e. `x ∤ f`).
    DivisibleByX,
    /// The operation requires a nonzero polynomial.
    ZeroPolynomial,
    /// A polynomial string could not be parsed.
    Parse(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DegreeOverflow => {
                write!(f, "result degree exceeds the supported maximum of 127")
            }
            Error::DivisionByZero => write!(f, "division by the zero polynomial"),
            Error::DivisibleByX => write!(f, "polynomial must have a nonzero constant term"),
            Error::ZeroPolynomial => write!(f, "operation is undefined for the zero polynomial"),
            Error::Parse(s) => write!(f, "invalid polynomial syntax: {s}"),
        }
    }
}

impl StdError for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
