//! Complete factorization over GF(2): square-free decomposition,
//! distinct-degree factorization, and Cantor–Zassenhaus equal-degree
//! splitting (characteristic-2 trace variant).
//!
//! The output [`FactorSignature`] is exactly the paper's class notation:
//! `{1,3,28}` denotes `(x+1)·(deg-3 irreducible)·(deg-28 irreducible)`.

use crate::modring::ModCtx;
use crate::poly::Poly;
use crate::rng::SplitMix64;
use std::fmt;
use std::str::FromStr;

/// A complete factorization `f = Π factorᵢ^multiplicityᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factorization {
    factors: Vec<(Poly, u32)>,
}

impl Factorization {
    /// The irreducible factors with multiplicities, sorted by
    /// (degree, coefficient mask).
    pub fn factors(&self) -> &[(Poly, u32)] {
        &self.factors
    }

    /// Reconstructs the original polynomial.
    pub fn product(&self) -> Poly {
        let mut acc = Poly::ONE;
        for &(p, m) in &self.factors {
            for _ in 0..m {
                acc = acc
                    .checked_mul(p)
                    .expect("factor product fits by construction");
            }
        }
        acc
    }

    /// The factorization-class signature, e.g. `{1,3,28}`.
    pub fn signature(&self) -> FactorSignature {
        let mut degrees = Vec::new();
        for &(p, m) in &self.factors {
            let d = p.degree().expect("factors are nonzero");
            for _ in 0..m {
                degrees.push(d);
            }
        }
        degrees.sort_unstable();
        FactorSignature { degrees }
    }

    /// True if the polynomial is irreducible (single factor, multiplicity 1).
    pub fn is_irreducible(&self) -> bool {
        self.factors.len() == 1 && self.factors[0].1 == 1
    }

    /// True if `x + 1` divides the polynomial — the paper's implicit-parity
    /// property (all odd-weight errors detected).
    pub fn has_parity_factor(&self) -> bool {
        self.factors.iter().any(|&(p, _)| p == Poly::X_PLUS_1)
    }
}

impl fmt::Display for Factorization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(p, m) in &self.factors {
            if !first {
                write!(f, " · ")?;
            }
            if m == 1 {
                write!(f, "({p})")?;
            } else {
                write!(f, "({p})^{m}")?;
            }
            first = false;
        }
        if first {
            write!(f, "1")?;
        }
        Ok(())
    }
}

/// A factorization-class signature: the multiset of irreducible-factor
/// degrees, in the paper's `{d1,..,dk}` notation.
///
/// ```
/// use gf2poly::FactorSignature;
/// let sig: FactorSignature = "{1,3,28}".parse().unwrap();
/// assert_eq!(sig.total_degree(), 32);
/// assert_eq!(sig.to_string(), "{1,3,28}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactorSignature {
    degrees: Vec<u32>,
}

impl FactorSignature {
    /// Builds a signature from factor degrees (order irrelevant).
    pub fn new(mut degrees: Vec<u32>) -> FactorSignature {
        degrees.sort_unstable();
        FactorSignature { degrees }
    }

    /// The sorted factor degrees (with multiplicity).
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Sum of all factor degrees — the degree of any member polynomial.
    pub fn total_degree(&self) -> u32 {
        self.degrees.iter().sum()
    }

    /// Number of irreducible factors counted with multiplicity.
    pub fn factor_count(&self) -> usize {
        self.degrees.len()
    }

    /// True if the class contains a degree-1 factor, i.e. `x+1` for CRC
    /// polynomials (which cannot contain the factor `x`).
    pub fn has_degree_one_factor(&self) -> bool {
        self.degrees.first() == Some(&1)
    }
}

impl fmt::Display for FactorSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.degrees.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

impl FromStr for FactorSignature {
    type Err = crate::Error;

    fn from_str(s: &str) -> crate::Result<FactorSignature> {
        let t = s.trim();
        let inner = t
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| crate::Error::Parse(format!("signature must be braced: {s:?}")))?;
        let mut degrees = Vec::new();
        for part in inner.split(',') {
            let d: u32 = part
                .trim()
                .parse()
                .map_err(|_| crate::Error::Parse(format!("bad degree {part:?}")))?;
            if d == 0 || d > 127 {
                return Err(crate::Error::Parse(format!("degree {d} out of range")));
            }
            degrees.push(d);
        }
        if degrees.is_empty() {
            return Err(crate::Error::Parse("empty signature".into()));
        }
        Ok(FactorSignature::new(degrees))
    }
}

/// Completely factors `f` into irreducibles.
///
/// Deterministic: the randomized equal-degree splitting runs on a fixed
/// seed, and retries until the (always possible) split succeeds.
///
/// ```
/// use gf2poly::{factor, Poly};
/// // x^4 + x^2 + 1 = (x^2 + x + 1)^2
/// let f = factor(Poly::from_mask(0b10101));
/// assert_eq!(f.factors(), &[(Poly::from_mask(0b111), 2)]);
/// assert_eq!(f.signature().to_string(), "{2,2}");
/// ```
///
/// # Panics
///
/// Panics if `f` is zero (the zero polynomial has no factorization).
pub fn factor(f: Poly) -> Factorization {
    assert!(!f.is_zero(), "cannot factor the zero polynomial");
    let mut factors: Vec<(Poly, u32)> = Vec::new();
    if f.degree() == Some(0) {
        return Factorization { factors };
    }
    // Pull out the power of x first so that everything downstream can
    // assume a nonzero constant term.
    let mut g = f;
    let xs = g.mask().trailing_zeros();
    if xs > 0 {
        factors.push((Poly::X, xs));
        g = Poly::from_mask(g.mask() >> xs);
    }
    let mut rng = SplitMix64::new(0xFAC7_0E5E_ED01);
    for (part, mult) in squarefree_decomposition(g) {
        for (prod, d) in distinct_degree(part) {
            for irred in equal_degree(prod, d, &mut rng) {
                factors.push((irred, mult));
            }
        }
    }
    factors.sort_by_key(|&(p, _)| (p.degree().unwrap_or(0), p.mask()));
    // Merge any duplicate factors (possible when different square-free
    // multiplicities share an irreducible — cannot happen from a valid
    // decomposition, but merging keeps the invariant obvious).
    let mut merged: Vec<(Poly, u32)> = Vec::new();
    for (p, m) in factors {
        match merged.last_mut() {
            Some((q, e)) if *q == p => *e += m,
            _ => merged.push((p, m)),
        }
    }
    Factorization { factors: merged }
}

/// Square-free decomposition in characteristic 2:
/// returns pairwise-coprime square-free parts `gᵢ` with multiplicities
/// `mᵢ` such that `f = Π gᵢ^mᵢ`. Degree-0 parts are dropped.
fn squarefree_decomposition(f: Poly) -> Vec<(Poly, u32)> {
    let mut out = Vec::new();
    sff_into(f, 1, &mut out);
    out
}

fn sff_into(f: Poly, scale: u32, out: &mut Vec<(Poly, u32)>) {
    if f.degree().is_none_or(|d| d == 0) {
        return;
    }
    let fd = f.derivative();
    if fd.is_zero() {
        // f is a perfect square: f = s(x)^2.
        let s = f
            .sqrt()
            .expect("zero derivative implies perfect square in char 2");
        sff_into(s, scale * 2, out);
        return;
    }
    let mut c = f.gcd(fd);
    let mut w = f.div_rem(c).expect("gcd divides f").0;
    let mut i = 1u32;
    while w.degree() != Some(0) {
        let y = w.gcd(c);
        let z = w.div_rem(y).expect("y divides w").0;
        if z.degree() != Some(0) {
            out.push((z, i * scale));
        }
        i += 1;
        w = y;
        c = c.div_rem(y).expect("y divides c").0;
    }
    if c.degree() != Some(0) {
        let s = c
            .sqrt()
            .expect("residual part is a perfect square in char 2");
        sff_into(s, scale * 2, out);
    }
}

/// Distinct-degree factorization of a square-free `f`: returns pairs
/// `(product of all irreducible factors of degree d, d)`.
fn distinct_degree(f: Poly) -> Vec<(Poly, u32)> {
    let mut out = Vec::new();
    let mut rest = f;
    // Handle a factor of x up front (x | f iff constant term is 0).
    if !rest.has_constant_term() && !rest.is_zero() {
        out.push((Poly::X, 1));
        rest = rest.div_rem(Poly::X).expect("x divides").0;
    }
    let mut d = 1u32;
    // h = x^(2^d) mod rest, maintained incrementally.
    let mut ctx = match rest.degree() {
        None | Some(0) => return out,
        Some(_) => ModCtx::new(rest).expect("degree >= 1"),
    };
    let mut h = ctx.reduce(Poly::X);
    loop {
        let rd = match rest.degree() {
            None | Some(0) => break,
            Some(rd) => rd,
        };
        if d > rd / 2 {
            // Whatever remains is a single irreducible.
            out.push((rest, rd));
            break;
        }
        h = ctx.square(h);
        let g = rest.gcd(h + Poly::X);
        if g.degree().is_some_and(|gd| gd > 0) {
            out.push((g, d));
            rest = rest.div_rem(g).expect("g divides rest").0;
            if rest.degree().is_none_or(|rd| rd == 0) {
                break;
            }
            ctx = ModCtx::new(rest).expect("degree >= 1");
            h = ctx.reduce(h);
        }
        d += 1;
    }
    out
}

/// Equal-degree splitting (Cantor–Zassenhaus, char-2 trace variant):
/// splits a product of distinct degree-`d` irreducibles into its factors.
fn equal_degree(f: Poly, d: u32, rng: &mut SplitMix64) -> Vec<Poly> {
    let fdeg = f.degree().expect("nonzero");
    if fdeg == d {
        return vec![f];
    }
    debug_assert!(fdeg.is_multiple_of(d));
    let ctx = ModCtx::new(f).expect("degree >= 1");
    loop {
        // Random residue of degree < deg f.
        let a = Poly::from_mask(rng.next_u128() & ((1u128 << fdeg) - 1));
        if a.is_zero() {
            continue;
        }
        let t = ctx.trace(a, d);
        let g = f.gcd(t);
        if let Some(gd) = g.degree() {
            if gd > 0 && gd < fdeg {
                let other = f.div_rem(g).expect("g divides f").0;
                let mut out = equal_degree(g, d, rng);
                out.extend(equal_degree(other, d, rng));
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irred::{enumerate_irreducibles, is_irreducible};

    #[test]
    fn factors_constants_and_monomials() {
        assert!(factor(Poly::ONE).factors().is_empty());
        assert_eq!(factor(Poly::X).factors(), &[(Poly::X, 1)]);
        assert_eq!(factor(Poly::from_mask(0b100)).factors(), &[(Poly::X, 2)]);
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn zero_polynomial_panics() {
        let _ = factor(Poly::ZERO);
    }

    #[test]
    fn squarefree_products_round_trip() {
        // (x+1)(x^2+x+1)(x^3+x+1)
        let f = Poly::X_PLUS_1 * Poly::from_mask(0b111) * Poly::from_mask(0b1011);
        let fac = factor(f);
        assert_eq!(fac.product(), f);
        assert_eq!(fac.signature().to_string(), "{1,2,3}");
        assert!(fac.has_parity_factor());
    }

    #[test]
    fn repeated_factors_found_with_multiplicity() {
        // (x+1)^2 (x^3+x+1)^3
        let p3 = Poly::from_mask(0b1011);
        let mut f = Poly::X_PLUS_1 * Poly::X_PLUS_1;
        for _ in 0..3 {
            f = f * p3;
        }
        let fac = factor(f);
        assert_eq!(fac.factors(), &[(Poly::X_PLUS_1, 2), (p3, 3)]);
        assert_eq!(fac.signature().to_string(), "{1,1,3,3,3}");
        assert_eq!(fac.product(), f);
    }

    #[test]
    fn perfect_squares_of_high_power() {
        // ((x^2+x+1)^4): derivative chain must recurse through sqrt twice.
        let p = Poly::from_mask(0b111);
        let f = (p * p) * (p * p);
        let fac = factor(f);
        assert_eq!(fac.factors(), &[(p, 4)]);
    }

    #[test]
    fn exhaustive_cross_check_small_degrees() {
        // Factor every polynomial of degree ≤ 10 and verify the product
        // reconstructs and every factor is irreducible.
        for mask in 2u128..(1 << 11) {
            let f = Poly::from_mask(mask);
            let fac = factor(f);
            assert_eq!(fac.product(), f, "mask {mask:#x}");
            for &(p, _) in fac.factors() {
                assert!(is_irreducible(p), "factor {p} of {f} not irreducible");
            }
        }
    }

    #[test]
    fn equal_degree_splitting_many_same_degree_factors() {
        // Product of all 6 irreducibles of degree 5 → degree 30 poly.
        let mut f = Poly::ONE;
        let irreds: Vec<Poly> = enumerate_irreducibles(5).collect();
        assert_eq!(irreds.len(), 6);
        for &p in &irreds {
            f = f * p;
        }
        let fac = factor(f);
        let got: Vec<Poly> = fac.factors().iter().map(|&(p, _)| p).collect();
        assert_eq!(got, irreds);
    }

    #[test]
    fn paper_polynomial_classes() {
        // Full 33-bit generator masks: ((K << 1) | 1) | (1 << 32).
        let cases: [(u64, &str); 8] = [
            (0x82608EDB, "{32}"),        // IEEE 802.3
            (0x8F6E37A0, "{1,31}"),      // Castagnoli / iSCSI (CRC-32C)
            (0xBA0DC66B, "{1,3,28}"),    // Koopman's headline polynomial
            (0xFA567D89, "{1,1,15,15}"), // Castagnoli HD=6
            (0x992C1A4C, "{1,1,30}"),    // Koopman
            (0x90022004, "{1,1,30}"),    // Koopman low-tap HD=6
            (0xD419CC15, "{32}"),        // Castagnoli HD=5
            (0x80108400, "{32}"),        // Koopman low-tap HD=5
        ];
        for (k, sig) in cases {
            let full = Poly::from_mask(((k as u128) << 1 | 1) | (1 << 32));
            let fac = factor(full);
            assert_eq!(fac.signature().to_string(), sig, "poly {k:#010X}");
            assert_eq!(fac.product(), full);
        }
    }

    #[test]
    fn paper_published_factor_values() {
        // §3: 0xBA0DC66B = (x+1)(x^3+x^2+1)(x^28+x^22+x^20+x^19+x^16+x^14
        //                  +x^12+x^9+x^8+x^6+1)
        let full = Poly::from_mask((0xBA0DC66Bu128 << 1 | 1) | (1 << 32));
        let fac = factor(full);
        let p3 = Poly::from_exponents(&[3, 2, 0]);
        let p28 = Poly::from_exponents(&[28, 22, 20, 19, 16, 14, 12, 9, 8, 6, 0]);
        assert_eq!(fac.factors(), &[(Poly::X_PLUS_1, 1), (p3, 1), (p28, 1)]);
    }

    #[test]
    fn signature_parsing() {
        let sig: FactorSignature = "{1,1,15,15}".parse().unwrap();
        assert_eq!(sig.degrees(), &[1, 1, 15, 15]);
        assert_eq!(sig.factor_count(), 4);
        assert!(sig.has_degree_one_factor());
        assert!("{}".parse::<FactorSignature>().is_err());
        assert!("1,2".parse::<FactorSignature>().is_err());
        assert!("{0}".parse::<FactorSignature>().is_err());
        // Order-insensitivity.
        let a: FactorSignature = "{28,3,1}".parse().unwrap();
        let b: FactorSignature = "{1,3,28}".parse().unwrap();
        assert_eq!(a, b);
    }
}
