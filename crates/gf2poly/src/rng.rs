//! A tiny, self-contained, deterministic PRNG.
//!
//! Randomized polynomial factoring (Cantor–Zassenhaus) and random
//! irreducible generation need a source of pseudo-random bits. Keeping the
//! algebra crate dependency-free, we ship SplitMix64 — a well-studied 64-bit
//! mixer with full period 2^64 — rather than pulling in `rand`. Simulation
//! code elsewhere in the workspace uses `rand` proper.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// Deterministic given its seed; *not* cryptographically secure.
///
/// ```
/// use gf2poly::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 bits (two draws).
    pub fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl Default for SplitMix64 {
    /// A fixed, documented default seed — experiments are reproducible by
    /// default and callers opt *in* to other seeds.
    fn default() -> SplitMix64 {
        SplitMix64::new(0x5EED_C0DE_2002_D5A1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value from the SplitMix64 reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }
}
