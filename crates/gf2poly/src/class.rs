//! Factorization classes: exact census sizes and uniform-ish sampling.
//!
//! Table 2 of the paper counts, per factorization class, the polynomials
//! achieving HD=6 at Ethernet MTU length. Estimating those counts by
//! sampling requires (a) the exact number of polynomials in each class and
//! (b) a way to draw random members. Both live here.

use crate::factor::FactorSignature;
use crate::irred::{count_irreducibles, random_irreducible};
use crate::poly::Poly;
use crate::rng::SplitMix64;
use crate::{Error, Result};
use std::collections::BTreeMap;

/// A factorization class: all polynomials (with nonzero constant term)
/// whose irreducible factorization has a given degree signature.
///
/// Degree-1 factors are always `x + 1`: the factor `x` is excluded because
/// CRC generator polynomials have a nonzero constant term (the paper's
/// implicit "+1").
///
/// ```
/// use gf2poly::FactorClass;
/// let class = FactorClass::parse("{1,3,28}").unwrap();
/// assert_eq!(class.total_degree(), 32);
/// // 2 degree-3 irreducibles × 9,586,395 degree-28 irreducibles.
/// assert_eq!(class.size(), 2 * 9_586_395);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorClass {
    signature: FactorSignature,
    /// degree → number of factors of that degree.
    by_degree: BTreeMap<u32, u32>,
}

impl FactorClass {
    /// Builds a class from a signature.
    ///
    /// # Errors
    ///
    /// [`Error::DegreeOverflow`] if the total degree exceeds 127 or any
    /// factor degree exceeds 64 (orders would overflow).
    pub fn new(signature: FactorSignature) -> Result<FactorClass> {
        if signature.total_degree() > 127 || signature.degrees().iter().any(|&d| d > 64) {
            return Err(Error::DegreeOverflow);
        }
        let mut by_degree = BTreeMap::new();
        for &d in signature.degrees() {
            *by_degree.entry(d).or_insert(0) += 1;
        }
        Ok(FactorClass {
            signature,
            by_degree,
        })
    }

    /// Parses a class from the paper's notation, e.g. `"{1,1,15,15}"`.
    ///
    /// # Errors
    ///
    /// Propagates signature parse errors and degree-range errors.
    pub fn parse(s: &str) -> Result<FactorClass> {
        FactorClass::new(s.parse()?)
    }

    /// The degree signature of the class.
    pub fn signature(&self) -> &FactorSignature {
        &self.signature
    }

    /// Degree of every member polynomial.
    pub fn total_degree(&self) -> u32 {
        self.signature.total_degree()
    }

    /// Exact number of distinct member polynomials.
    ///
    /// For `k` factors of degree `d` drawn from `I'(d)` available
    /// irreducibles (with repetition allowed — multiplicities are part of
    /// the signature), the count is the multiset coefficient
    /// `C(I'(d) + k − 1, k)`; counts multiply across degrees.
    /// `I'(1) = 1` because only `x+1` is admissible.
    pub fn size(&self) -> u128 {
        let mut total: u128 = 1;
        for (&d, &k) in &self.by_degree {
            let pool = if d == 1 {
                1
            } else {
                count_irreducibles(d) as u128
            };
            total = total.saturating_mul(multiset_coefficient(pool, k));
        }
        total
    }

    /// Draws a random member of the class.
    ///
    /// Factors are drawn independently and uniformly from the irreducibles
    /// of each degree; for the astronomically large pools of the paper's
    /// classes this is indistinguishable from uniform over the class
    /// (repeat draws have probability ≈ k²/I'(d)).
    ///
    /// # Errors
    ///
    /// Propagates irreducible-generation errors (degree out of range).
    pub fn sample(&self, rng: &mut SplitMix64) -> Result<Poly> {
        let mut acc = Poly::ONE;
        for (&d, &k) in &self.by_degree {
            for _ in 0..k {
                let p = if d == 1 {
                    Poly::X_PLUS_1
                } else {
                    random_irreducible(d, rng)?
                };
                acc = acc.checked_mul(p)?;
            }
        }
        Ok(acc)
    }

    /// The Table 2 classes of the paper, with the published HD=6 census.
    ///
    /// Returned as `(class, published_count)` pairs; the published total is
    /// 21,292.
    pub fn table2_classes() -> Vec<(FactorClass, u64)> {
        [
            ("{1,1,30}", 658u64),
            ("{1,3,28}", 448),
            ("{1,1,15,15}", 9887),
            ("{1,1,2,28}", 895),
            ("{1,3,14,14}", 4154),
            ("{1,1,1,1,28}", 448),
            ("{1,1,2,14,14}", 2639),
            ("{1,1,1,1,14,14}", 2263),
        ]
        .into_iter()
        .map(|(s, n)| (FactorClass::parse(s).expect("valid class"), n))
        .collect()
    }
}

impl std::fmt::Display for FactorClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.signature.fmt(f)
    }
}

/// Multiset coefficient `C(n + k − 1, k)`: ways to choose `k` items from
/// `n` with repetition.
fn multiset_coefficient(n: u128, k: u32) -> u128 {
    if n == 0 {
        return if k == 0 { 1 } else { 0 };
    }
    binomial(n + k as u128 - 1, k)
}

/// Binomial coefficient with `u128` arithmetic (numerically exact for the
/// ranges used here: k is a small factor count).
fn binomial(n: u128, k: u32) -> u128 {
    let k = k as u128;
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    // Ascending factors keep every intermediate division exact:
    // after step i, acc = C(n - k + i + 1, i + 1).
    for i in 0..k {
        acc = acc * (n - k + i + 1) / (i + 1);
    }
    acc
}

/// Number of polynomials in the paper's full `r`-bit search space:
/// all degree-`r` polynomials with nonzero constant term, counted up to
/// reciprocal equivalence: `2^(r-2) + 2^(r/2 - 1)` for even `r`.
///
/// ```
/// use gf2poly::class::distinct_search_space;
/// // The paper: "the entire set of 1,073,774,592 distinct polynomials".
/// assert_eq!(distinct_search_space(32), 1_073_774_592);
/// ```
///
/// # Panics
///
/// Panics for `r < 2` or odd `r` (CRC widths of interest are even).
pub fn distinct_search_space(r: u32) -> u64 {
    assert!(
        r >= 2 && r.is_multiple_of(2),
        "width must be an even integer >= 2"
    );
    // Space: coefficients of x^(r-1)..x^1 free, x^r and x^0 fixed to 1.
    // Reciprocal pairing identifies p with its coefficient reversal.
    // Palindromes are fixed points: coefficient pairs (i, r-i) for
    // i = 1..r/2 plus the free middle coefficient give 2^(r/2) of them.
    let total = 1u64 << (r - 1);
    let palindromes = 1u64 << (r / 2);
    (total - palindromes) / 2 + palindromes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::factor;

    #[test]
    fn binomial_and_multiset() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(multiset_coefficient(2182, 2), 2182 * 2183 / 2);
        assert_eq!(multiset_coefficient(1, 2), 1);
        assert_eq!(multiset_coefficient(0, 3), 0);
    }

    #[test]
    fn class_sizes_for_paper_classes() {
        // {1,31}: only-primitive deg-31 irreducibles (all of them are):
        // the paper says 6.93e7 possibilities.
        let c = FactorClass::parse("{1,31}").unwrap();
        assert_eq!(c.size(), 69_273_666);
        // {1,3,28}: 2 cubic irreducibles × I(28).
        let c = FactorClass::parse("{1,3,28}").unwrap();
        assert_eq!(c.size(), 2 * 9_586_395);
        // {1,1,15,15}: single (x+1)^2 choice × multiset of two deg-15s.
        let c = FactorClass::parse("{1,1,15,15}").unwrap();
        assert_eq!(c.size(), 2182u128 * 2183 / 2);
        // {1,1,30}: I(30) members.
        let c = FactorClass::parse("{1,1,30}").unwrap();
        assert_eq!(c.size(), 35_790_267);
    }

    #[test]
    fn class_size_cross_checked_by_enumeration() {
        // Degree-6 class {3,3}: 2 cubics with repetition → C(3,2) = 3.
        let c = FactorClass::parse("{3,3}").unwrap();
        assert_eq!(c.size(), 3);
        // Enumerate all degree-6 polys with constant term and count.
        let mut n = 0u32;
        for mask in (1u128 << 6)..(1u128 << 7) {
            let p = Poly::from_mask(mask | 1);
            if mask & 1 == 0 {
                continue;
            }
            if factor(p).signature() == *c.signature() {
                n += 1;
            }
        }
        assert_eq!(n as u128, c.size());
    }

    #[test]
    fn sampling_lands_in_class() {
        let mut rng = SplitMix64::new(404);
        for s in ["{1,3,28}", "{1,1,15,15}", "{1,1,30}", "{32}", "{1,31}"] {
            let class = FactorClass::parse(s).unwrap();
            let member = class.sample(&mut rng).unwrap();
            assert_eq!(member.degree(), Some(class.total_degree()));
            assert!(member.has_constant_term());
            assert_eq!(factor(member).signature(), *class.signature(), "class {s}");
        }
    }

    #[test]
    fn table2_classes_all_degree_32_with_parity() {
        let classes = FactorClass::table2_classes();
        assert_eq!(classes.len(), 8);
        let total: u64 = classes.iter().map(|&(_, n)| n).sum();
        // The paper's prose says "21,292 polynomials with HD=6", but its
        // Table 2 entries sum to 21,392 — an internal inconsistency of the
        // paper, recorded in EXPERIMENTS.md. We pin the table sum.
        assert_eq!(total, 21_392, "sum of the paper's Table 2 entries");
        for (c, _) in &classes {
            assert_eq!(c.total_degree(), 32);
            assert!(
                c.signature().has_degree_one_factor(),
                "all HD=6 classes are divisible by x+1"
            );
        }
    }

    #[test]
    fn search_space_constant_from_paper() {
        assert_eq!(distinct_search_space(32), 1_073_774_592);
        assert_eq!(distinct_search_space(8), 72); // 64 + 8
        assert_eq!(distinct_search_space(16), 16_512);
    }

    #[test]
    fn rejects_oversized_classes() {
        assert!(FactorClass::parse("{64,64}").is_err());
        assert!(FactorClass::parse("{65}").is_err());
        assert!(FactorClass::parse("{64,63}").is_ok());
    }
}
