//! Cross-validation of the Monte-Carlo engine against the exact weight
//! oracles in `crc-hd` — the repo's own version of the paper's §4.5
//! "simple code" cross-checks.
//!
//! For small generators and lengths the undetected fraction of random
//! weight-`k` errors is known *exactly*: `Wₖ / C(n+r, k)`, with `Wₖ`
//! computed two independent ways (exhaustive spectrum enumeration and the
//! closed-form `weights234` shift decomposition). Driving
//! [`FixedWeightChannel`] through the [`Simulator`] must reproduce that
//! fraction within the Wilson 95% interval — on the XOR-delta fast path,
//! on the eager path (forced via a wrapper channel), and in pipelined
//! mode, with the delta and eager tallies bit-identical because CRC
//! linearity makes the verdict independent of payload content.

use crc_hd::{costmodel, distribution, spectrum, weights, GenPoly};
use crckit::catalog;
use netsim::channel::{BscChannel, Channel, FixedWeightChannel};
use netsim::frame::FrameCodec;
use netsim::montecarlo::{Simulator, TrialConfig, TrialStats};

/// Forces a content-independent channel onto the eager path by lying in
/// the conservative direction (claiming content dependence is always
/// safe — the engine just loses the delta shortcut).
struct ForceEager(Box<dyn Channel>);

impl Channel for ForceEager {
    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        self.0.corrupt(frame)
    }
    fn reseed(&mut self, seed: u64) {
        self.0.reseed(seed);
    }
    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        Box::new(ForceEager(self.0.fork(seed)))
    }
    fn content_independent(&self) -> bool {
        false
    }
    fn corrupt_batch(&mut self, frames: &mut [Vec<u8>], flips: &mut Vec<u32>) {
        self.0.corrupt_batch(frames, flips);
    }
}

/// The exact undetected fraction of weight-`k` errors for `(width,
/// normal)` at `data_bits`, cross-checked between the two oracles.
fn exact_rate(width: u32, normal: u64, data_bits: u32, k: u32) -> f64 {
    let g = GenPoly::from_normal(width, normal).expect("valid generator");
    let spec = spectrum::spectrum(&g, data_bits).expect("within enumeration cap");
    let w_spec = spec.count(k);
    let w_closed = {
        let w = weights::weights234(&g, data_bits).expect("within order");
        match k {
            2 => w.w2,
            3 => w.w3,
            4 => w.w4,
            _ => unreachable!("oracle comparison covers k in 2..=4"),
        }
    };
    assert_eq!(
        w_spec, w_closed,
        "spectrum and weights234 oracles disagree: {normal:#x} n={data_bits} k={k}"
    );
    // Third oracle: the full weight distribution (MacWilliams transfer)
    // must reproduce the same count from a completely different
    // algorithm — and it extends the cross-check to every weight, not
    // just W₂..W₄ (see `distribution_rate`).
    let w_dist = distribution::distribution(&g, data_bits)
        .expect("within budget")
        .count_u128(k)
        .expect("fits u128 at these lengths");
    assert_eq!(
        w_spec, w_dist,
        "spectrum and distribution oracles disagree: {normal:#x} n={data_bits} k={k}"
    );
    let codeword_bits = data_bits + width;
    w_spec as f64 / costmodel::error_patterns(codeword_bits, k) as f64
}

/// The exact undetected fraction of weight-`k` errors from the full
/// weight distribution alone — the oracle for weights the `weights234`
/// closed form cannot reach (`k ≥ 5`), pinned against the exhaustive
/// spectrum where that is available.
fn distribution_rate(width: u32, normal: u64, data_bits: u32, k: u32) -> f64 {
    let g = GenPoly::from_normal(width, normal).expect("valid generator");
    let dist = distribution::distribution(&g, data_bits).expect("within budget");
    let w_k = dist.count_u128(k).expect("fits u128 at these lengths");
    let spec = spectrum::spectrum(&g, data_bits).expect("within enumeration cap");
    assert_eq!(
        w_k,
        spec.count(k),
        "distribution disagrees with exhaustive spectrum: {normal:#x} n={data_bits} k={k}"
    );
    w_k as f64 / costmodel::error_patterns(data_bits + width, k) as f64
}

/// Runs weighted trials and checks the measurement against the oracle.
fn check_against_oracle(
    codec: &FrameCodec,
    width: u32,
    normal: u64,
    payload_bytes: usize,
    k: u32,
    trials: u64,
    seed: u64,
) -> TrialStats {
    let predicted = exact_rate(width, normal, payload_bytes as u32 * 8, k);
    check_predicted(codec, normal, payload_bytes, k, trials, seed, predicted)
}

/// Runs weighted trials against an already-computed exact rate.
fn check_predicted(
    codec: &FrameCodec,
    normal: u64,
    payload_bytes: usize,
    k: u32,
    trials: u64,
    seed: u64,
    predicted: f64,
) -> TrialStats {
    let sim = Simulator::new();
    let stats = sim.run_weighted(codec, payload_bytes, k, trials, seed);
    assert_eq!(
        stats.corrupted(),
        stats.total(),
        "a fixed-weight channel corrupts every frame"
    );
    if predicted == 0.0 {
        // The oracle says these patterns are all detectable; the
        // simulator must agree exactly, not just statistically.
        assert_eq!(
            stats.undetected, 0,
            "{normal:#x} k={k}: oracle predicts zero undetected"
        );
    } else {
        let (lo, hi) = stats.undetected_ci95().expect("corrupted frames exist");
        assert!(
            (lo..=hi).contains(&predicted),
            "{normal:#x} payload={payload_bytes}B k={k}: exact rate {predicted:.6} \
             outside Wilson 95% [{lo:.6}, {hi:.6}] ({}/{} undetected)",
            stats.undetected,
            stats.total()
        );
    }
    stats
}

#[test]
fn crc8_weighted_trials_match_exact_oracles() {
    // CRC-8/0x07 (SMBus): divisible by x+1, so every odd-weight pattern
    // is detected (W3 = 0) while W4 gives a measurable ~2⁻⁸-scale rate —
    // the paper's reason for validating at 8-bit scale first.
    let codec = FrameCodec::new(catalog::CRC8_SMBUS);
    for (payload_bytes, k, seed) in [(2usize, 4u32, 0x0AC1), (3, 4, 0x0AC2), (2, 3, 0x0AC3)] {
        check_against_oracle(&codec, 8, 0x07, payload_bytes, k, 60_000, seed as u64);
    }
}

#[test]
fn crc8_high_weight_trials_match_the_distribution_oracle() {
    // Weights the closed-form oracle cannot reach: 0x07 is divisible by
    // x+1, so W₅ = 0 (odd weight) and the simulator must measure *zero*
    // undetected weight-5 patterns; W₆ > 0 gives a measurable rate only
    // the full distribution predicts.
    let codec = FrameCodec::new(catalog::CRC8_SMBUS);
    let zero = distribution_rate(8, 0x07, 16, 5);
    assert_eq!(zero, 0.0, "x+1 divisibility kills every odd weight");
    check_predicted(&codec, 0x07, 2, 5, 60_000, 0x0AC6, zero);
    let w6_rate = distribution_rate(8, 0x07, 16, 6);
    assert!(w6_rate > 0.0, "weight-6 rate must be measurable");
    check_predicted(&codec, 0x07, 2, 6, 60_000, 0x0AC7, w6_rate);
}

#[test]
fn crc16_weighted_trials_match_exact_oracles() {
    let codec = FrameCodec::new(catalog::CRC16_ARC);
    check_against_oracle(&codec, 16, 0x8005, 2, 4, 80_000, 0x0AC4);
}

#[test]
fn delta_and_eager_paths_tally_bit_identically() {
    // For a content-independent channel the verdict of `verify(frame ⊕ δ)`
    // depends only on δ (CRC linearity), so forcing the eager path must
    // reproduce the delta path's tally exactly — same channel stream,
    // same verdicts, same integers.
    let codec8 = FrameCodec::new(catalog::CRC8_SMBUS);
    let weighted = FixedWeightChannel::new(4);
    let eager_weighted = ForceEager(Box::new(FixedWeightChannel::new(4)));
    let cfg = TrialConfig {
        payload_len: 2,
        trials: 60_000,
        seed: 0x0AC1,
    };
    let sim = Simulator::new();
    let delta = sim.run(&codec8, &weighted, &cfg);
    let eager = sim.run(&codec8, &eager_weighted, &cfg);
    assert_eq!(delta, eager, "delta vs eager divergence (fixed weight)");
    assert!(
        delta.undetected > 0,
        "rate must be measurable at CRC-8 scale"
    );

    // Same property for a channel with clean frames in the mix: clean
    // tallies and the per-burst verdict order must also agree.
    let codec32 = FrameCodec::new(catalog::CRC32_ISO_HDLC);
    let bsc = BscChannel::new(2e-4);
    let eager_bsc = ForceEager(Box::new(BscChannel::new(2e-4)));
    let cfg32 = TrialConfig {
        payload_len: 640,
        trials: 20_000,
        seed: 0x0AC5,
    };
    let delta32 = sim.run(&codec32, &bsc, &cfg32);
    let eager32 = sim.run(&codec32, &eager_bsc, &cfg32);
    assert_eq!(delta32, eager32, "delta vs eager divergence (BSC)");
    assert!(delta32.clean > 0 && delta32.detected > 0);
}

#[test]
fn pipelined_oracle_run_is_bit_identical_to_sharded() {
    let codec = FrameCodec::new(catalog::CRC8_SMBUS);
    let sharded = Simulator::new()
        .threads(1)
        .run_weighted(&codec, 2, 4, 60_000, 0x0AC1);
    for threads in [2usize, 4] {
        let piped = Simulator::new()
            .pipelined()
            .threads(threads)
            .run_weighted(&codec, 2, 4, 60_000, 0x0AC1);
        assert_eq!(sharded, piped, "pipelined x{threads} diverged");
    }
    // And the pipelined tally still satisfies the oracle bound.
    let predicted = exact_rate(8, 0x07, 16, 4);
    let (lo, hi) = sharded.undetected_ci95().expect("all frames corrupted");
    assert!((lo..=hi).contains(&predicted));
}
