//! Property tests for the channel models: structural guarantees
//! (burst span, fixed weight, fork determinism, stuffing slip bounds,
//! truncation length bounds) and the Gilbert–Elliott chain's stationary
//! occupancy.

use netsim::channel::{
    BscChannel, BurstChannel, Channel, FixedWeightChannel, GilbertElliottChannel, JammerChannel,
    StuffingChannel, TruncationChannel,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Bit positions set in a frame (all-zero before corruption).
fn set_bits(frame: &[u8]) -> Vec<usize> {
    (0..frame.len() * 8)
        .filter(|&i| frame[i / 8] >> (i % 8) & 1 == 1)
        .collect()
}

/// Deterministic random frame content for the content-dependent channels.
fn random_frame(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut frame = vec![0u8; len];
    rng.fill(&mut frame[..]);
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every burst fits inside a `max_span`-bit window — on the per-frame
    /// path and on the batch path.
    #[test]
    fn burst_never_exceeds_max_span(args in (1u32..65, 1usize..200, any::<u64>())) {
        let (max_span, frame_len, seed) = args;
        let mut ch = BurstChannel::new(max_span);
        ch.reseed(seed);
        let mut frames = vec![vec![0u8; frame_len]; 8];
        let mut flips = Vec::new();
        ch.corrupt_batch(&mut frames, &mut flips);
        for (frame, &f) in frames.iter().zip(&flips) {
            let positions = set_bits(frame);
            prop_assert!(f >= 1, "a burst always flips at least one bit");
            prop_assert_eq!(positions.len(), f as usize);
            let span = positions.last().unwrap() - positions.first().unwrap() + 1;
            prop_assert!(
                span as u32 <= max_span,
                "burst spanned {} bits with max_span {}",
                span,
                max_span
            );
        }
    }

    /// The fixed-weight channel flips exactly `k` distinct positions.
    #[test]
    fn fixed_weight_is_exact(args in (1u32..33, 8usize..100, any::<u64>())) {
        let (k, frame_len, seed) = args;
        let mut ch = FixedWeightChannel::new(k);
        ch.reseed(seed);
        let mut frame = vec![0u8; frame_len];
        prop_assert_eq!(ch.corrupt(&mut frame), k);
        prop_assert_eq!(set_bits(&frame).len(), k as usize);
    }

    /// Forks are pure functions of the fork seed: two forks of channels
    /// with different histories corrupt identically.
    #[test]
    fn forks_reproduce_regardless_of_history(seed in any::<u64>()) {
        let channels: [(Box<dyn Channel>, Box<dyn Channel>); 3] = [
            (Box::new(BscChannel::new(0.01)), Box::new(BscChannel::new(0.01))),
            (Box::new(BurstChannel::new(13)), Box::new(BurstChannel::new(13))),
            (
                Box::new(GilbertElliottChannel::new(0.1, 0.1, 0.0, 0.5)),
                Box::new(GilbertElliottChannel::new(0.1, 0.1, 0.0, 0.5)),
            ),
        ];
        for (mut used, fresh) in channels {
            let mut junk = vec![0u8; 512];
            used.corrupt(&mut junk); // advance RNG and channel state
            let mut a = used.fork(seed);
            let mut b = fresh.fork(seed);
            let mut fa = vec![0u8; 256];
            let mut fb = vec![0u8; 256];
            let ca = a.corrupt(&mut fa);
            let cb = b.corrupt(&mut fb);
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(fa, fb);
        }
    }

    /// The default batch path equals the sequential path bit-for-bit for
    /// stateful channels (Gilbert–Elliott keeps its Markov state across
    /// frames either way).
    #[test]
    fn ge_batch_matches_sequential(seed in any::<u64>()) {
        let proto = GilbertElliottChannel::new(0.01, 0.05, 1e-3, 0.3);
        let mut batch_ch = proto.fork(seed);
        let mut seq_ch = proto.fork(seed);
        let mut batch_frames = vec![vec![0u8; 64]; 6];
        let mut seq_frames = batch_frames.clone();
        let mut flips = Vec::new();
        batch_ch.corrupt_batch(&mut batch_frames, &mut flips);
        for (frame, &f) in seq_frames.iter_mut().zip(&flips) {
            prop_assert_eq!(seq_ch.corrupt(frame), f);
        }
        prop_assert_eq!(batch_frames, seq_frames);
    }

    /// Jammer forks are pure functions of the fork seed even on frames
    /// with arbitrary content, regardless of the prototype's history.
    #[test]
    fn jammer_forks_are_deterministic(args in (any::<u64>(), any::<u64>(), 1usize..300)) {
        let (seed, content_seed, len) = args;
        let mut used = JammerChannel::hdlc(0.7);
        let mut junk = random_frame(content_seed ^ 1, 512);
        used.corrupt(&mut junk); // advance the prototype's RNG
        let mut a = used.fork(seed);
        let mut b = JammerChannel::hdlc(0.7).fork(seed);
        let mut fa = random_frame(content_seed, len);
        let mut fb = fa.clone();
        let ca = a.corrupt(&mut fa);
        let cb = b.corrupt(&mut fb);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(fa, fb);
    }

    /// Stuffing slips are bounded by the frame's stuffing points; slips
    /// modify the frame, and a zero return leaves it untouched.
    #[test]
    fn stuffing_slips_bounded_by_stuffing_points(
        args in (any::<u64>(), any::<u64>(), 1usize..200, 0.0f64..1.0)
    ) {
        let (seed, content_seed, len, slip_prob) = args;
        let original = random_frame(content_seed, len);
        let points = StuffingChannel::stuffing_points(&original) as u32;
        let mut ch = StuffingChannel::new(slip_prob);
        ch.reseed(seed);
        let mut frame = original.clone();
        let slips = ch.corrupt(&mut frame);
        prop_assert!(slips <= points, "slips {} > stuffing points {}", slips, points);
        if slips == 0 {
            prop_assert_eq!(frame, original, "zero slips must leave the frame intact");
        } else {
            prop_assert_ne!(frame, original, "slips must modify the frame");
            // A slip shifts/inserts/deletes single bits: length moves by
            // at most one byte per slip.
            let delta = frame.len().abs_diff(original.len());
            prop_assert!(delta <= slips as usize);
        }
    }

    /// Truncation keeps lengths within [1, len + max_delta] and its
    /// untouched frames exactly intact.
    #[test]
    fn truncation_length_distribution(
        args in (any::<u64>(), 2usize..200, 1usize..32, 0.0f64..1.0)
    ) {
        let (seed, len, max_delta, p) = args;
        let mut ch = TruncationChannel::new(p, max_delta);
        ch.reseed(seed);
        let original = random_frame(seed ^ 0xC0FFEE, len);
        for _ in 0..16 {
            let mut frame = original.clone();
            let bits = ch.corrupt(&mut frame);
            prop_assert!(!frame.is_empty());
            prop_assert!(frame.len() <= len + max_delta);
            prop_assert!(frame.len() >= len.saturating_sub(max_delta).max(1));
            if bits == 0 {
                prop_assert_eq!(&frame, &original);
            } else {
                prop_assert_ne!(frame.len(), len, "length errors change the length");
                prop_assert_eq!(bits as usize, frame.len().abs_diff(len) * 8);
            }
        }
    }

    /// For every content-dependent channel, the default batch path equals
    /// the sequential path bit-for-bit on identical content.
    #[test]
    fn content_dependent_batch_matches_sequential(args in (any::<u64>(), any::<u64>())) {
        let (seed, content_seed) = args;
        let protos: [Box<dyn Channel>; 3] = [
            Box::new(JammerChannel::hdlc(0.6)),
            Box::new(StuffingChannel::new(0.3)),
            Box::new(TruncationChannel::new(0.5, 8)),
        ];
        for proto in &protos {
            let mut batch_ch = proto.fork(seed);
            let mut seq_ch = proto.fork(seed);
            let mut batch_frames: Vec<Vec<u8>> = (0..6)
                .map(|i| random_frame(content_seed.wrapping_add(i), 48 + 17 * i as usize))
                .collect();
            let mut seq_frames = batch_frames.clone();
            let mut flips = Vec::new();
            batch_ch.corrupt_batch(&mut batch_frames, &mut flips);
            for (frame, &f) in seq_frames.iter_mut().zip(&flips) {
                prop_assert_eq!(seq_ch.corrupt(frame), f);
            }
            prop_assert_eq!(&batch_frames, &seq_frames);
        }
    }
}

proptest! {
    // Occupancy cases simulate 200k bits each; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Empirical bad-state occupancy matches `stationary_bad`. With
    /// `ber_bad = 1` and `ber_good = 0` every bad-state bit flips and no
    /// good-state bit does, so the flip fraction *is* the occupancy.
    #[test]
    fn ge_stationary_bad_matches_occupancy(
        args in (0.01f64..0.5, 0.01f64..0.5, any::<u64>())
    ) {
        let (p_g2b, p_b2g, seed) = args;
        let mut ch = GilbertElliottChannel::new(p_g2b, p_b2g, 0.0, 1.0);
        ch.reseed(seed);
        let nbits = 200_000u64;
        let mut frame = vec![0u8; (nbits / 8) as usize];
        let occupancy = ch.corrupt(&mut frame) as f64 / nbits as f64;
        let pi = ch.stationary_bad();
        // The occupancy estimator's variance is inflated by the chain's
        // autocorrelation: roughly pi*(1-pi) * (2/(p+q)) / n. Allow six
        // sigmas plus slack for the burn-in from the good-state start.
        let sigma = (pi * (1.0 - pi) * (2.0 / (p_g2b + p_b2g)) / nbits as f64).sqrt();
        prop_assert!(
            (occupancy - pi).abs() < 6.0 * sigma + 0.01,
            "occupancy {} vs stationary {} (sigma {})",
            occupancy,
            pi,
            sigma
        );
    }
}
