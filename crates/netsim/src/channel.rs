//! Bit-error channel models.
//!
//! Channels are **batch-first**: the sharded simulator corrupts frames in
//! bursts through [`Channel::corrupt_batch`], and spawns one independent
//! channel per shard with [`Channel::fork`] so results are a pure function
//! of `(seed, shard index)` — identical no matter how many worker threads
//! process the shards.

use rand::Rng;
use rand::SeedableRng;

/// A channel that corrupts frames in place, reporting how many bits it
/// flipped.
///
/// Implementations must be `Send + Sync` so a prototype channel can be
/// shared across the simulator's worker threads, each of which [`fork`]s
/// its own deterministic instance per shard.
///
/// [`fork`]: Channel::fork
pub trait Channel: Send + Sync {
    /// Corrupts `frame`, returning the number of flipped bits.
    fn corrupt(&mut self, frame: &mut [u8]) -> u32;

    /// Reseeds the channel's randomness — and resets any channel state
    /// (e.g. a Markov chain's current state) — for reproducible
    /// experiments: after `reseed(s)` the corruption stream is a pure
    /// function of `s`.
    fn reseed(&mut self, seed: u64);

    /// Returns an independent copy of this channel reseeded with `seed`,
    /// ignoring the prototype's accumulated RNG state.
    ///
    /// This is the simulator's seed-splitting primitive: shard `i` runs on
    /// `channel.fork(shard_seed(cfg.seed, i, ..))`, so the corruption each
    /// shard applies depends only on the configuration, never on which
    /// thread happens to process it.
    fn fork(&self, seed: u64) -> Box<dyn Channel>;

    /// Returns `true` when this channel's corruption is a
    /// **content-independent XOR delta**: the set of flipped bit positions
    /// never depends on the bytes of the frame, only on the channel's own
    /// randomness and the frame *length*.
    ///
    /// Every model in this module has that property, and it is what lets
    /// the simulator corrupt an all-zero delta frame first and skip CRC
    /// work entirely for frames the channel leaves untouched: because the
    /// CRC is linear, `verify(frame ⊕ δ)` depends on the payload and `δ`
    /// in a way that composing the delta afterwards reproduces exactly.
    /// Channels that inspect frame content (e.g. a jammer targeting sync
    /// words) must keep the default `false`, which routes them through
    /// the eager encode→corrupt→verify path.
    fn content_independent(&self) -> bool {
        false
    }

    /// Corrupts a burst of frames, recording per-frame flip counts into
    /// `flips` (cleared and resized to `frames.len()`).
    ///
    /// The default implementation applies [`Channel::corrupt`] frame by
    /// frame, preserving any cross-frame state evolution (as for the
    /// Gilbert–Elliott chain). Channels may override it with a faster
    /// batch path as long as the *distribution* of corruptions is
    /// unchanged; [`BscChannel`] carries its geometric skip across frame
    /// boundaries, which is exact for a memoryless channel and skips the
    /// per-frame overshoot draw.
    fn corrupt_batch(&mut self, frames: &mut [Vec<u8>], flips: &mut Vec<u32>) {
        flips.clear();
        flips.extend(frames.iter_mut().map(|frame| self.corrupt(frame)));
    }
}

/// The memoryless binary symmetric channel: every bit flips independently
/// with probability `ber`.
///
/// ```
/// use netsim::channel::{BscChannel, Channel};
/// let mut ch = BscChannel::new(0.0);
/// let mut frame = vec![0xAAu8; 64];
/// assert_eq!(ch.corrupt(&mut frame), 0); // zero BER never corrupts
/// ```
#[derive(Debug, Clone)]
pub struct BscChannel {
    ber: f64,
    rng: rand::rngs::StdRng,
}

impl BscChannel {
    /// Creates a channel with the given bit error rate (0.0..=1.0).
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]` or not finite.
    pub fn new(ber: f64) -> BscChannel {
        assert!(
            ber.is_finite() && (0.0..=1.0).contains(&ber),
            "BER must be in [0,1]"
        );
        BscChannel {
            ber,
            rng: rand::rngs::StdRng::seed_from_u64(0x0BE5_C0DE),
        }
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }
}

impl Channel for BscChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut [u8]) -> u32 {
        if self.ber == 0.0 {
            return 0;
        }
        let mut flipped = 0;
        // Geometric skipping: draw the gap to the next flipped bit instead
        // of testing every bit — exact for the BSC and far faster at the
        // low BERs networking cares about.
        let nbits = frame.len() as u64 * 8;
        let mut pos = next_gap(&mut self.rng, self.ber);
        while pos < nbits {
            frame[(pos / 8) as usize] ^= 1 << (pos % 8);
            flipped += 1;
            pos += 1 + next_gap(&mut self.rng, self.ber);
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }

    fn corrupt_batch(&mut self, frames: &mut [Vec<u8>], flips: &mut Vec<u32>) {
        flips.clear();
        flips.resize(frames.len(), 0);
        if self.ber == 0.0 {
            return;
        }
        // One geometric stream across the whole burst: because the BSC is
        // memoryless, carrying the overshoot of the last gap into the next
        // frame is exact, and at low BER a single draw skips many clean
        // frames — the main RNG saving of the batch path.
        let mut idx = 0;
        let mut pos = next_gap(&mut self.rng, self.ber);
        while idx < frames.len() {
            let nbits = frames[idx].len() as u64 * 8;
            if pos >= nbits {
                pos -= nbits;
                idx += 1;
                continue;
            }
            frames[idx][(pos / 8) as usize] ^= 1 << (pos % 8);
            flips[idx] += 1;
            pos += 1 + next_gap(&mut self.rng, self.ber);
        }
    }
}

/// Draws a geometric gap (number of untouched bits before the next flip).
fn next_gap(rng: &mut impl Rng, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// A burst channel: each corruption event flips a random nonzero pattern
/// within a contiguous span of at most `max_span` bits.
///
/// CRCs detect every burst no longer than their width — the guarantee the
/// paper notes "remains intact for all the codes we consider".
#[derive(Debug, Clone)]
pub struct BurstChannel {
    max_span: u32,
    rng: rand::rngs::StdRng,
}

impl BurstChannel {
    /// Creates a burst channel with bursts spanning at most `max_span`
    /// bits (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_span` is 0 or exceeds 64.
    pub fn new(max_span: u32) -> BurstChannel {
        assert!((1..=64).contains(&max_span), "span must be in 1..=64");
        BurstChannel {
            max_span,
            rng: rand::rngs::StdRng::seed_from_u64(0xB0B5),
        }
    }

    /// Maximum burst span in bits.
    pub fn max_span(&self) -> u32 {
        self.max_span
    }
}

impl Channel for BurstChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut [u8]) -> u32 {
        let nbits = frame.len() as u64 * 8;
        if nbits == 0 {
            return 0;
        }
        let span = self.rng.gen_range(1..=self.max_span.min(nbits as u32));
        // A burst of `span` bits: first and last bit set (defining the
        // span), interior random.
        let mut pattern: u64 = 1 | 1 << (span - 1);
        if span > 2 {
            let interior_mask = ((1u64 << (span - 2)) - 1) << 1;
            pattern |= self.rng.gen::<u64>() & interior_mask;
        }
        let start = self.rng.gen_range(0..=nbits - span as u64);
        let mut flipped = 0;
        for i in 0..span as u64 {
            if pattern >> i & 1 == 1 {
                let pos = start + i;
                frame[(pos / 8) as usize] ^= 1 << (pos % 8);
                flipped += 1;
            }
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// The two-state Gilbert–Elliott bursty channel: a Markov chain switches
/// between a good state (low BER) and a bad state (high BER), reproducing
/// the clustered errors observed on real links — the reason Stone &
/// Partridge saw CRCs exercised "once every few thousand packets".
#[derive(Debug, Clone)]
pub struct GilbertElliottChannel {
    p_g2b: f64,
    p_b2g: f64,
    ber_good: f64,
    ber_bad: f64,
    in_bad: bool,
    rng: rand::rngs::StdRng,
}

impl GilbertElliottChannel {
    /// Creates a Gilbert–Elliott channel.
    ///
    /// `p_g2b`/`p_b2g` are per-bit transition probabilities; `ber_good`/
    /// `ber_bad` are the flip probabilities in each state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_g2b: f64, p_b2g: f64, ber_good: f64, ber_bad: f64) -> GilbertElliottChannel {
        for (name, p) in [
            ("p_g2b", p_g2b),
            ("p_b2g", p_b2g),
            ("ber_good", ber_good),
            ("ber_bad", ber_bad),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{name} must be in [0,1]"
            );
        }
        GilbertElliottChannel {
            p_g2b,
            p_b2g,
            ber_good,
            ber_bad,
            in_bad: false,
            rng: rand::rngs::StdRng::seed_from_u64(0x6E11),
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_g2b + self.p_b2g == 0.0 {
            0.0
        } else {
            self.p_g2b / (self.p_g2b + self.p_b2g)
        }
    }
}

impl Channel for GilbertElliottChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut [u8]) -> u32 {
        let mut flipped = 0;
        for byte in frame.iter_mut() {
            for bit in 0..8 {
                let transition = if self.in_bad { self.p_b2g } else { self.p_g2b };
                if self.rng.gen::<f64>() < transition {
                    self.in_bad = !self.in_bad;
                }
                let ber = if self.in_bad {
                    self.ber_bad
                } else {
                    self.ber_good
                };
                if ber > 0.0 && self.rng.gen::<f64>() < ber {
                    *byte ^= 1 << bit;
                    flipped += 1;
                }
            }
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        // Reset the Markov state too: reproducibility demands the whole
        // corruption stream be a function of the seed alone.
        self.in_bad = false;
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// A directed-error channel that flips exactly `weight` distinct random
/// bit positions per frame — the empirical probe of the paper's
/// `Wₖ / C(n+r, k)` undetected fraction, packaged as a [`Channel`] so
/// weighted trials ride the same sharded simulator as random traffic.
#[derive(Debug, Clone)]
pub struct FixedWeightChannel {
    weight: u32,
    rng: rand::rngs::StdRng,
    scratch: Vec<u64>,
}

impl FixedWeightChannel {
    /// Creates a channel flipping exactly `weight` bits per frame (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is 0.
    pub fn new(weight: u32) -> FixedWeightChannel {
        assert!(weight >= 1, "weight must be at least 1");
        FixedWeightChannel {
            weight,
            rng: rand::rngs::StdRng::seed_from_u64(0x3162),
            scratch: Vec::with_capacity(weight as usize),
        }
    }

    /// The number of bits flipped per frame.
    pub fn weight(&self) -> u32 {
        self.weight
    }
}

impl Channel for FixedWeightChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut [u8]) -> u32 {
        let nbits = frame.len() as u64 * 8;
        assert!(
            self.weight as u64 <= nbits,
            "frame of {nbits} bits cannot hold {} distinct flips",
            self.weight
        );
        self.scratch.clear();
        while self.scratch.len() < self.weight as usize {
            let p = self.rng.gen_range(0..nbits);
            if !self.scratch.contains(&p) {
                self.scratch.push(p);
            }
        }
        for &p in &self.scratch {
            frame[(p / 8) as usize] ^= 1 << (p % 8);
        }
        self.weight
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsc_flip_count_tracks_ber() {
        let mut ch = BscChannel::new(0.01);
        ch.reseed(42);
        let mut total = 0u64;
        let trials = 400;
        for _ in 0..trials {
            let mut frame = vec![0u8; 125]; // 1000 bits
            total += ch.corrupt(&mut frame) as u64;
        }
        let mean = total as f64 / trials as f64;
        // Expect ~10 flips/frame; allow generous slack for 400 trials.
        assert!((8.0..12.0).contains(&mean), "mean flips {mean}");
    }

    #[test]
    fn bsc_zero_and_one_extremes() {
        let mut frame = vec![0u8; 16];
        assert_eq!(BscChannel::new(0.0).corrupt(&mut frame), 0);
        assert!(frame.iter().all(|&b| b == 0));
        let mut all = BscChannel::new(1.0);
        let flips = all.corrupt(&mut frame);
        assert_eq!(flips, 128, "BER 1.0 flips every bit");
        assert!(frame.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn bsc_batch_extremes_match_sequential() {
        let mut ch = BscChannel::new(1.0);
        let mut frames = vec![vec![0u8; 16], vec![0u8; 3]];
        let mut flips = Vec::new();
        ch.corrupt_batch(&mut frames, &mut flips);
        assert_eq!(flips, vec![128, 24]);
        assert!(frames.iter().flatten().all(|&b| b == 0xFF));

        let mut zero = BscChannel::new(0.0);
        zero.corrupt_batch(&mut frames, &mut flips);
        assert_eq!(flips, vec![0, 0]);
    }

    #[test]
    fn bsc_batch_flip_count_tracks_ber() {
        let mut ch = BscChannel::new(0.01);
        ch.reseed(42);
        let mut total = 0u64;
        let bursts = 4;
        let mut flips = Vec::new();
        for _ in 0..bursts {
            let mut frames = vec![vec![0u8; 125]; 100]; // 1000 bits each
            ch.corrupt_batch(&mut frames, &mut flips);
            total += flips.iter().map(|&f| f as u64).sum::<u64>();
        }
        let mean = total as f64 / (bursts * 100) as f64;
        assert!((8.0..12.0).contains(&mean), "mean flips {mean}");
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn bsc_rejects_bad_ber() {
        let _ = BscChannel::new(1.5);
    }

    #[test]
    fn bsc_is_reproducible_after_reseed() {
        let mut ch = BscChannel::new(0.05);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ch.reseed(9);
        ch.corrupt(&mut a);
        ch.reseed(9);
        ch.corrupt(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut proto = BscChannel::new(0.05);
        // Disturb the prototype's RNG: forks must not care.
        let mut junk = vec![0u8; 256];
        proto.corrupt(&mut junk);
        let mut a = proto.fork(123);
        let mut b = BscChannel::new(0.05).fork(123);
        let mut fa = vec![0u8; 64];
        let mut fb = vec![0u8; 64];
        a.corrupt(&mut fa);
        b.corrupt(&mut fb);
        assert_eq!(fa, fb, "fork output is a function of the fork seed only");
    }

    #[test]
    fn ge_fork_resets_markov_state() {
        // Drive the prototype hard so it is almost surely in the bad state,
        // then check a fork reproduces a fresh channel bit-for-bit.
        let mut proto = GilbertElliottChannel::new(0.9, 0.0, 0.0, 1.0);
        let mut junk = vec![0u8; 64];
        proto.corrupt(&mut junk);
        let mut forked = proto.fork(7);
        let mut fresh = GilbertElliottChannel::new(0.9, 0.0, 0.0, 1.0).fork(7);
        let mut fa = vec![0u8; 64];
        let mut fb = vec![0u8; 64];
        forked.corrupt(&mut fa);
        fresh.corrupt(&mut fb);
        assert_eq!(fa, fb);
    }

    #[test]
    fn burst_stays_within_span() {
        let mut ch = BurstChannel::new(32);
        ch.reseed(3);
        for _ in 0..200 {
            let mut frame = vec![0u8; 100];
            let flips = ch.corrupt(&mut frame);
            assert!(flips >= 1);
            // All set bits must fit within a 32-bit window.
            let positions: Vec<usize> = (0..800)
                .filter(|&i| frame[i / 8] >> (i % 8) & 1 == 1)
                .collect();
            let span = positions.last().unwrap() - positions.first().unwrap() + 1;
            assert!(span <= 32, "burst spanned {span} bits");
        }
    }

    #[test]
    fn fixed_weight_flips_exactly_k() {
        let mut ch = FixedWeightChannel::new(5);
        ch.reseed(11);
        for _ in 0..100 {
            let mut frame = vec![0u8; 32];
            assert_eq!(ch.corrupt(&mut frame), 5);
            let ones: u32 = frame.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 5, "exactly k distinct positions flipped");
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn fixed_weight_rejects_short_frames() {
        let mut ch = FixedWeightChannel::new(9);
        let mut frame = vec![0u8; 1];
        ch.corrupt(&mut frame);
    }

    #[test]
    fn gilbert_elliott_is_burstier_than_bsc_at_equal_average() {
        // Same average BER; the GE channel should concentrate errors in
        // fewer frames (higher variance of per-frame flips).
        let frames = 600;
        let frame_len = 250;
        let avg_ber = 1e-3;
        let mut bsc = BscChannel::new(avg_ber);
        bsc.reseed(1);
        // GE: bad state 1% of the time with 100x the error rate.
        let mut ge = GilbertElliottChannel::new(1e-4, 9.9e-3, 0.0, avg_ber * 101.0);
        ge.reseed(1);
        assert!((ge.stationary_bad() - 0.0099).abs() < 1e-3);
        let var = |ch: &mut dyn Channel| {
            let mut counts = Vec::new();
            for _ in 0..frames {
                let mut f = vec![0u8; frame_len];
                counts.push(ch.corrupt(&mut f) as f64);
            }
            let mean = counts.iter().sum::<f64>() / frames as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / frames as f64
        };
        let v_bsc = var(&mut bsc);
        let v_ge = var(&mut ge);
        assert!(
            v_ge > v_bsc,
            "Gilbert–Elliott variance {v_ge} should exceed BSC variance {v_bsc}"
        );
    }
}
