//! Bit-error channel models.
//!
//! Channels are **batch-first**: the sharded simulator corrupts frames in
//! bursts through [`Channel::corrupt_batch`], and spawns one independent
//! channel per shard with [`Channel::fork`] so results are a pure function
//! of `(seed, shard index)` — identical no matter how many worker threads
//! process the shards.
//!
//! Two families live here:
//!
//! * **Content-independent XOR-delta channels** ([`BscChannel`],
//!   [`BurstChannel`], [`GilbertElliottChannel`], [`FixedWeightChannel`]):
//!   the flipped positions never depend on the frame bytes, so the
//!   simulator can run them on its zero-delta fast path.
//! * **Content-dependent channels** ([`JammerChannel`],
//!   [`StuffingChannel`], [`TruncationChannel`]): the corruption inspects
//!   frame content or changes the frame *length*, which no XOR delta can
//!   express — these always take the eager encode→corrupt→verify path.

use rand::Rng;
use rand::SeedableRng;

/// A channel that corrupts frames in place, reporting a corruption
/// magnitude.
///
/// `corrupt` receives the frame as a `Vec` so channels modeling
/// synchronization slips or length errors can insert and remove bits or
/// bytes, not just flip them. The contract on the return value is:
/// **zero if and only if the frame is byte-identical to what was sent** —
/// the simulator tallies zero-return frames as clean without verifying
/// them. For flip channels the magnitude is the number of flipped bits;
/// length-changing channels document their own unit.
///
/// Implementations must be `Send + Sync` so a prototype channel can be
/// shared across the simulator's worker threads, each of which [`fork`]s
/// its own deterministic instance per shard.
///
/// [`fork`]: Channel::fork
pub trait Channel: Send + Sync {
    /// Corrupts `frame`, returning a nonzero magnitude iff it was
    /// modified (the number of flipped bits, for bit-flip channels).
    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32;

    /// Reseeds the channel's randomness — and resets any channel state
    /// (e.g. a Markov chain's current state) — for reproducible
    /// experiments: after `reseed(s)` the corruption stream is a pure
    /// function of `s`.
    fn reseed(&mut self, seed: u64);

    /// Returns an independent copy of this channel reseeded with `seed`,
    /// ignoring the prototype's accumulated RNG state.
    ///
    /// This is the simulator's seed-splitting primitive: shard `i` runs on
    /// `channel.fork(shard_seed(cfg.seed, i, ..))`, so the corruption each
    /// shard applies depends only on the configuration, never on which
    /// thread happens to process it.
    fn fork(&self, seed: u64) -> Box<dyn Channel>;

    /// Returns `true` when this channel's corruption is a
    /// **content-independent XOR delta**: the set of flipped bit positions
    /// never depends on the bytes of the frame, only on the channel's own
    /// randomness and the frame *length*.
    ///
    /// This property is what lets the simulator corrupt an all-zero delta
    /// frame first and skip CRC work entirely for frames the channel
    /// leaves untouched: because the CRC is linear, `verify(frame ⊕ δ)`
    /// depends on the payload and `δ` in a way that composing the delta
    /// afterwards reproduces exactly. Channels that inspect frame content
    /// (e.g. [`JammerChannel`] targeting sync words) or change the frame
    /// length ([`StuffingChannel`], [`TruncationChannel`] — a length
    /// change is never an XOR delta) must keep the default `false`, which
    /// routes them through the eager encode→corrupt→verify path. In debug
    /// builds the simulator probes channels claiming `true` and panics on
    /// a mis-flagged one.
    fn content_independent(&self) -> bool {
        false
    }

    /// Corrupts a burst of frames, recording per-frame flip counts into
    /// `flips` (cleared and resized to `frames.len()`).
    ///
    /// The default implementation applies [`Channel::corrupt`] frame by
    /// frame, preserving any cross-frame state evolution (as for the
    /// Gilbert–Elliott chain). Channels may override it with a faster
    /// batch path as long as the *distribution* of corruptions is
    /// unchanged; [`BscChannel`] carries its geometric skip across frame
    /// boundaries, which is exact for a memoryless channel and skips the
    /// per-frame overshoot draw.
    fn corrupt_batch(&mut self, frames: &mut [Vec<u8>], flips: &mut Vec<u32>) {
        flips.clear();
        flips.extend(frames.iter_mut().map(|frame| self.corrupt(frame)));
    }
}

/// The memoryless binary symmetric channel: every bit flips independently
/// with probability `ber`.
///
/// ```
/// use netsim::channel::{BscChannel, Channel};
/// let mut ch = BscChannel::new(0.0);
/// let mut frame = vec![0xAAu8; 64];
/// assert_eq!(ch.corrupt(&mut frame), 0); // zero BER never corrupts
/// ```
#[derive(Debug, Clone)]
pub struct BscChannel {
    ber: f64,
    rng: rand::rngs::StdRng,
}

impl BscChannel {
    /// Creates a channel with the given bit error rate (0.0..=1.0).
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]` or not finite.
    pub fn new(ber: f64) -> BscChannel {
        assert!(
            ber.is_finite() && (0.0..=1.0).contains(&ber),
            "BER must be in [0,1]"
        );
        BscChannel {
            ber,
            rng: rand::rngs::StdRng::seed_from_u64(0x0BE5_C0DE),
        }
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }
}

impl Channel for BscChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        if self.ber == 0.0 {
            return 0;
        }
        let mut flipped = 0;
        // Geometric skipping: draw the gap to the next flipped bit instead
        // of testing every bit — exact for the BSC and far faster at the
        // low BERs networking cares about.
        let nbits = frame.len() as u64 * 8;
        let mut pos = next_gap(&mut self.rng, self.ber);
        while pos < nbits {
            frame[(pos / 8) as usize] ^= 1 << (pos % 8);
            flipped += 1;
            pos += 1 + next_gap(&mut self.rng, self.ber);
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }

    fn corrupt_batch(&mut self, frames: &mut [Vec<u8>], flips: &mut Vec<u32>) {
        flips.clear();
        flips.resize(frames.len(), 0);
        if self.ber == 0.0 {
            return;
        }
        // One geometric stream across the whole burst: because the BSC is
        // memoryless, carrying the overshoot of the last gap into the next
        // frame is exact, and at low BER a single draw skips many clean
        // frames — the main RNG saving of the batch path.
        let mut idx = 0;
        let mut pos = next_gap(&mut self.rng, self.ber);
        while idx < frames.len() {
            let nbits = frames[idx].len() as u64 * 8;
            if pos >= nbits {
                pos -= nbits;
                idx += 1;
                continue;
            }
            frames[idx][(pos / 8) as usize] ^= 1 << (pos % 8);
            flips[idx] += 1;
            pos += 1 + next_gap(&mut self.rng, self.ber);
        }
    }
}

/// Draws a geometric gap (number of untouched bits before the next flip).
fn next_gap(rng: &mut impl Rng, p: f64) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// A burst channel: each corruption event flips a random nonzero pattern
/// within a contiguous span of at most `max_span` bits.
///
/// CRCs detect every burst no longer than their width — the guarantee the
/// paper notes "remains intact for all the codes we consider".
#[derive(Debug, Clone)]
pub struct BurstChannel {
    max_span: u32,
    rng: rand::rngs::StdRng,
}

impl BurstChannel {
    /// Creates a burst channel with bursts spanning at most `max_span`
    /// bits (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `max_span` is 0 or exceeds 64.
    pub fn new(max_span: u32) -> BurstChannel {
        assert!((1..=64).contains(&max_span), "span must be in 1..=64");
        BurstChannel {
            max_span,
            rng: rand::rngs::StdRng::seed_from_u64(0xB0B5),
        }
    }

    /// Maximum burst span in bits.
    pub fn max_span(&self) -> u32 {
        self.max_span
    }
}

impl Channel for BurstChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        let nbits = frame.len() as u64 * 8;
        if nbits == 0 {
            return 0;
        }
        let span = self.rng.gen_range(1..=self.max_span.min(nbits as u32));
        // A burst of `span` bits: first and last bit set (defining the
        // span), interior random.
        let mut pattern: u64 = 1 | 1 << (span - 1);
        if span > 2 {
            let interior_mask = ((1u64 << (span - 2)) - 1) << 1;
            pattern |= self.rng.gen::<u64>() & interior_mask;
        }
        let start = self.rng.gen_range(0..=nbits - span as u64);
        let mut flipped = 0;
        for i in 0..span as u64 {
            if pattern >> i & 1 == 1 {
                let pos = start + i;
                frame[(pos / 8) as usize] ^= 1 << (pos % 8);
                flipped += 1;
            }
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// The two-state Gilbert–Elliott bursty channel: a Markov chain switches
/// between a good state (low BER) and a bad state (high BER), reproducing
/// the clustered errors observed on real links — the reason Stone &
/// Partridge saw CRCs exercised "once every few thousand packets".
#[derive(Debug, Clone)]
pub struct GilbertElliottChannel {
    p_g2b: f64,
    p_b2g: f64,
    ber_good: f64,
    ber_bad: f64,
    in_bad: bool,
    rng: rand::rngs::StdRng,
}

impl GilbertElliottChannel {
    /// Creates a Gilbert–Elliott channel.
    ///
    /// `p_g2b`/`p_b2g` are per-bit transition probabilities; `ber_good`/
    /// `ber_bad` are the flip probabilities in each state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_g2b: f64, p_b2g: f64, ber_good: f64, ber_bad: f64) -> GilbertElliottChannel {
        for (name, p) in [
            ("p_g2b", p_g2b),
            ("p_b2g", p_b2g),
            ("ber_good", ber_good),
            ("ber_bad", ber_bad),
        ] {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "{name} must be in [0,1]"
            );
        }
        GilbertElliottChannel {
            p_g2b,
            p_b2g,
            ber_good,
            ber_bad,
            in_bad: false,
            rng: rand::rngs::StdRng::seed_from_u64(0x6E11),
        }
    }

    /// Stationary probability of being in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_g2b + self.p_b2g == 0.0 {
            0.0
        } else {
            self.p_g2b / (self.p_g2b + self.p_b2g)
        }
    }
}

impl Channel for GilbertElliottChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        let mut flipped = 0;
        for byte in frame.iter_mut() {
            for bit in 0..8 {
                let transition = if self.in_bad { self.p_b2g } else { self.p_g2b };
                if self.rng.gen::<f64>() < transition {
                    self.in_bad = !self.in_bad;
                }
                let ber = if self.in_bad {
                    self.ber_bad
                } else {
                    self.ber_good
                };
                if ber > 0.0 && self.rng.gen::<f64>() < ber {
                    *byte ^= 1 << bit;
                    flipped += 1;
                }
            }
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        // Reset the Markov state too: reproducibility demands the whole
        // corruption stream be a function of the seed alone.
        self.in_bad = false;
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// A directed-error channel that flips exactly `weight` distinct random
/// bit positions per frame — the empirical probe of the paper's
/// `Wₖ / C(n+r, k)` undetected fraction, packaged as a [`Channel`] so
/// weighted trials ride the same sharded simulator as random traffic.
#[derive(Debug, Clone)]
pub struct FixedWeightChannel {
    weight: u32,
    rng: rand::rngs::StdRng,
    scratch: Vec<u64>,
}

impl FixedWeightChannel {
    /// Creates a channel flipping exactly `weight` bits per frame (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is 0.
    pub fn new(weight: u32) -> FixedWeightChannel {
        assert!(weight >= 1, "weight must be at least 1");
        FixedWeightChannel {
            weight,
            rng: rand::rngs::StdRng::seed_from_u64(0x3162),
            scratch: Vec::with_capacity(weight as usize),
        }
    }

    /// The number of bits flipped per frame.
    pub fn weight(&self) -> u32 {
        self.weight
    }
}

impl Channel for FixedWeightChannel {
    fn content_independent(&self) -> bool {
        true
    }

    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        let nbits = frame.len() as u64 * 8;
        assert!(
            self.weight as u64 <= nbits,
            "frame of {nbits} bits cannot hold {} distinct flips",
            self.weight
        );
        self.scratch.clear();
        while self.scratch.len() < self.weight as usize {
            let p = self.rng.gen_range(0..nbits);
            if !self.scratch.contains(&p) {
                self.scratch.push(p);
            }
        }
        for &p in &self.scratch {
            frame[(p / 8) as usize] ^= 1 << (p % 8);
        }
        self.weight
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// A content-dependent jammer: scans the frame for bytes matching a sync
/// pattern and, with probability `hit_prob` per match, flips one random
/// bit of the matching byte — interference that keys on recognizable
/// structure in the data (flag bytes, preambles) rather than striking
/// uniformly.
///
/// Because the flipped positions — and even the number of RNG draws — are
/// a function of the frame *content*, this channel cannot be expressed as
/// a content-independent XOR delta and always takes the simulator's eager
/// encode→corrupt→verify path.
#[derive(Debug, Clone)]
pub struct JammerChannel {
    sync: u8,
    hit_prob: f64,
    rng: rand::rngs::StdRng,
}

impl JammerChannel {
    /// Creates a jammer striking bytes equal to `sync` with probability
    /// `hit_prob` each.
    ///
    /// # Panics
    ///
    /// Panics if `hit_prob` is outside `[0, 1]` or not finite.
    pub fn new(sync: u8, hit_prob: f64) -> JammerChannel {
        assert!(
            hit_prob.is_finite() && (0.0..=1.0).contains(&hit_prob),
            "hit_prob must be in [0,1]"
        );
        JammerChannel {
            sync,
            hit_prob,
            rng: rand::rngs::StdRng::seed_from_u64(0x7A77),
        }
    }

    /// A jammer keyed on the HDLC flag byte `0x7E`.
    pub fn hdlc(hit_prob: f64) -> JammerChannel {
        JammerChannel::new(0x7E, hit_prob)
    }

    /// The byte pattern the jammer strikes.
    pub fn sync(&self) -> u8 {
        self.sync
    }
}

impl Channel for JammerChannel {
    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        let mut flipped = 0;
        for byte in frame.iter_mut() {
            if *byte == self.sync && self.rng.gen::<f64>() < self.hit_prob {
                *byte ^= 1 << self.rng.gen_range(0..8u32);
                flipped += 1;
            }
        }
        flipped
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// HDLC bit-stuffing slips — the paper's §3 motivation for FCS failures
/// on framed links.
///
/// HDLC transmitters insert ("stuff") a 0 after every run of five 1 bits
/// so data can never mimic the `0x7E` flag. A noise hit on or near a
/// stuffing bit desynchronizes that process: the receiver either deletes
/// a data bit it mistook for stuffing, or keeps a spurious stuffed zero —
/// and the entire rest of the frame shifts by one bit position. The FCS is
/// then computed over shifted data, which is exactly the failure mode a
/// pure bit-flip channel never produces.
///
/// This model treats the frame bits (LSB-first within each byte) as the
/// transmitted stream: every position following a run of five consecutive
/// 1 bits is a *stuffing point*, and each suffers a slip independently
/// with probability `slip_prob`. A slip either inserts a spurious 0 bit
/// at the point, or deletes the bit sitting there, chosen 50/50; all
/// slips are decided against the original bit sequence, then applied in
/// one rebuild pass (so the slip count is bounded by the original frame's
/// stuffing points). The rebuilt stream is repacked into bytes, zero-
/// padding any final partial byte, so the frame can shrink, grow, or keep
/// its length with every bit after the slip shifted.
///
/// [`Channel::corrupt`] returns the number of slips applied. Length
/// changes and bit shifts are not XOR deltas, so the channel is
/// content-dependent by construction and rides the eager path.
#[derive(Debug, Clone)]
pub struct StuffingChannel {
    slip_prob: f64,
    rng: rand::rngs::StdRng,
    slips: Vec<(usize, bool)>,
    rebuilt: Vec<u8>,
}

impl StuffingChannel {
    /// Creates a stuffing-slip channel with the given per-stuffing-point
    /// slip probability.
    ///
    /// # Panics
    ///
    /// Panics if `slip_prob` is outside `[0, 1]` or not finite.
    pub fn new(slip_prob: f64) -> StuffingChannel {
        assert!(
            slip_prob.is_finite() && (0.0..=1.0).contains(&slip_prob),
            "slip_prob must be in [0,1]"
        );
        StuffingChannel {
            slip_prob,
            rng: rand::rngs::StdRng::seed_from_u64(0x57FF),
            slips: Vec::new(),
            rebuilt: Vec::new(),
        }
    }

    /// Counts the stuffing points of a frame: positions following each
    /// run of five consecutive 1 bits, LSB-first within bytes. The upper
    /// bound on the slips any single [`Channel::corrupt`] call applies.
    pub fn stuffing_points(frame: &[u8]) -> usize {
        let mut points = 0;
        let mut run = 0u32;
        for i in 0..frame.len() * 8 {
            if frame[i / 8] >> (i % 8) & 1 == 1 {
                run += 1;
                if run == 5 {
                    points += 1;
                    run = 0;
                }
            } else {
                run = 0;
            }
        }
        points
    }
}

impl Channel for StuffingChannel {
    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        let nbits = frame.len() * 8;
        // Pass 1: decide every slip against the original bit sequence.
        self.slips.clear();
        let mut run = 0u32;
        for i in 0..nbits {
            if frame[i / 8] >> (i % 8) & 1 == 1 {
                run += 1;
                if run == 5 {
                    if self.rng.gen::<f64>() < self.slip_prob {
                        let insert = self.rng.gen::<bool>();
                        // A deletion past the last bit has nothing to
                        // delete; dropping it keeps the contract that a
                        // nonzero return means the frame was modified.
                        if insert || i + 1 < nbits {
                            self.slips.push((i + 1, insert));
                        }
                    }
                    run = 0;
                }
            } else {
                run = 0;
            }
        }
        if self.slips.is_empty() {
            return 0;
        }
        // Pass 2: rebuild the received stream with the slips applied.
        self.rebuilt.clear();
        let mut out_bits = 0usize;
        let mut skip_next = false;
        let mut s = 0usize;
        for i in 0..=nbits {
            if s < self.slips.len() && self.slips[s].0 == i {
                let insert = self.slips[s].1;
                s += 1;
                if insert {
                    // Spurious stuffed zero enters the stream here.
                    if out_bits.is_multiple_of(8) {
                        self.rebuilt.push(0);
                    }
                    out_bits += 1;
                } else {
                    // The bit at this position is swallowed.
                    skip_next = true;
                }
            }
            if i == nbits {
                break;
            }
            if skip_next {
                skip_next = false;
                continue;
            }
            if out_bits.is_multiple_of(8) {
                self.rebuilt.push(0);
            }
            if frame[i / 8] >> (i % 8) & 1 == 1 {
                self.rebuilt[out_bits / 8] |= 1 << (out_bits % 8);
            }
            out_bits += 1;
        }
        // A slip in a shift-invariant tail (e.g. deleting one of many
        // trailing zeros) can rebuild the exact original frame; report
        // those as clean so `corrupt > 0 ⇔ frame modified` stays exact.
        if self.rebuilt == *frame {
            return 0;
        }
        std::mem::swap(frame, &mut self.rebuilt);
        self.slips.len() as u32
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

/// Length errors: frames cut short or extended with any length field left
/// untouched — the DMA glitches and reassembly bugs Stone & Partridge
/// traced behind checksum failures, where the checksum covers a different
/// number of bytes than was sent.
///
/// With probability `p` per frame, either truncates 1..=`max_delta`
/// trailing bytes (never below one byte) or appends 1..=`max_delta`
/// random bytes, 50/50. [`Channel::corrupt`] returns 8× the number of
/// bytes cut or appended.
///
/// The corruption draws no randomness from the frame content, but a
/// length change is not an XOR delta, so the channel must keep
/// [`Channel::content_independent`] `false` and ride the eager path.
#[derive(Debug, Clone)]
pub struct TruncationChannel {
    p: f64,
    max_delta: usize,
    rng: rand::rngs::StdRng,
}

impl TruncationChannel {
    /// Creates a length-error channel hitting each frame with probability
    /// `p`, cutting or extending up to `max_delta` bytes (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `max_delta` is 0.
    pub fn new(p: f64, max_delta: usize) -> TruncationChannel {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p must be in [0,1]"
        );
        assert!(max_delta >= 1, "max_delta must be at least 1");
        TruncationChannel {
            p,
            max_delta,
            rng: rand::rngs::StdRng::seed_from_u64(0x7255),
        }
    }

    /// Maximum bytes cut or appended per length error.
    pub fn max_delta(&self) -> usize {
        self.max_delta
    }
}

impl Channel for TruncationChannel {
    fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
        if frame.is_empty() || self.rng.gen::<f64>() >= self.p {
            return 0;
        }
        let delta = self.rng.gen_range(1..=self.max_delta);
        if self.rng.gen::<bool>() {
            // Cut, but never to an empty frame.
            let cut = delta.min(frame.len() - 1);
            if cut == 0 {
                return 0;
            }
            frame.truncate(frame.len() - cut);
            (cut * 8) as u32
        } else {
            for _ in 0..delta {
                let b: u8 = self.rng.gen();
                frame.push(b);
            }
            (delta * 8) as u32
        }
    }

    fn reseed(&mut self, seed: u64) {
        self.rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    fn fork(&self, seed: u64) -> Box<dyn Channel> {
        let mut ch = self.clone();
        ch.reseed(seed);
        Box::new(ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsc_flip_count_tracks_ber() {
        let mut ch = BscChannel::new(0.01);
        ch.reseed(42);
        let mut total = 0u64;
        let trials = 400;
        for _ in 0..trials {
            let mut frame = vec![0u8; 125]; // 1000 bits
            total += ch.corrupt(&mut frame) as u64;
        }
        let mean = total as f64 / trials as f64;
        // Expect ~10 flips/frame; allow generous slack for 400 trials.
        assert!((8.0..12.0).contains(&mean), "mean flips {mean}");
    }

    #[test]
    fn bsc_zero_and_one_extremes() {
        let mut frame = vec![0u8; 16];
        assert_eq!(BscChannel::new(0.0).corrupt(&mut frame), 0);
        assert!(frame.iter().all(|&b| b == 0));
        let mut all = BscChannel::new(1.0);
        let flips = all.corrupt(&mut frame);
        assert_eq!(flips, 128, "BER 1.0 flips every bit");
        assert!(frame.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn bsc_batch_extremes_match_sequential() {
        let mut ch = BscChannel::new(1.0);
        let mut frames = vec![vec![0u8; 16], vec![0u8; 3]];
        let mut flips = Vec::new();
        ch.corrupt_batch(&mut frames, &mut flips);
        assert_eq!(flips, vec![128, 24]);
        assert!(frames.iter().flatten().all(|&b| b == 0xFF));

        let mut zero = BscChannel::new(0.0);
        zero.corrupt_batch(&mut frames, &mut flips);
        assert_eq!(flips, vec![0, 0]);
    }

    #[test]
    fn bsc_batch_flip_count_tracks_ber() {
        let mut ch = BscChannel::new(0.01);
        ch.reseed(42);
        let mut total = 0u64;
        let bursts = 4;
        let mut flips = Vec::new();
        for _ in 0..bursts {
            let mut frames = vec![vec![0u8; 125]; 100]; // 1000 bits each
            ch.corrupt_batch(&mut frames, &mut flips);
            total += flips.iter().map(|&f| f as u64).sum::<u64>();
        }
        let mean = total as f64 / (bursts * 100) as f64;
        assert!((8.0..12.0).contains(&mean), "mean flips {mean}");
    }

    #[test]
    #[should_panic(expected = "BER must be in")]
    fn bsc_rejects_bad_ber() {
        let _ = BscChannel::new(1.5);
    }

    #[test]
    fn bsc_is_reproducible_after_reseed() {
        let mut ch = BscChannel::new(0.05);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ch.reseed(9);
        ch.corrupt(&mut a);
        ch.reseed(9);
        ch.corrupt(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut proto = BscChannel::new(0.05);
        // Disturb the prototype's RNG: forks must not care.
        let mut junk = vec![0u8; 256];
        proto.corrupt(&mut junk);
        let mut a = proto.fork(123);
        let mut b = BscChannel::new(0.05).fork(123);
        let mut fa = vec![0u8; 64];
        let mut fb = vec![0u8; 64];
        a.corrupt(&mut fa);
        b.corrupt(&mut fb);
        assert_eq!(fa, fb, "fork output is a function of the fork seed only");
    }

    #[test]
    fn ge_fork_resets_markov_state() {
        // Drive the prototype hard so it is almost surely in the bad state,
        // then check a fork reproduces a fresh channel bit-for-bit.
        let mut proto = GilbertElliottChannel::new(0.9, 0.0, 0.0, 1.0);
        let mut junk = vec![0u8; 64];
        proto.corrupt(&mut junk);
        let mut forked = proto.fork(7);
        let mut fresh = GilbertElliottChannel::new(0.9, 0.0, 0.0, 1.0).fork(7);
        let mut fa = vec![0u8; 64];
        let mut fb = vec![0u8; 64];
        forked.corrupt(&mut fa);
        fresh.corrupt(&mut fb);
        assert_eq!(fa, fb);
    }

    #[test]
    fn burst_stays_within_span() {
        let mut ch = BurstChannel::new(32);
        ch.reseed(3);
        for _ in 0..200 {
            let mut frame = vec![0u8; 100];
            let flips = ch.corrupt(&mut frame);
            assert!(flips >= 1);
            // All set bits must fit within a 32-bit window.
            let positions: Vec<usize> = (0..800)
                .filter(|&i| frame[i / 8] >> (i % 8) & 1 == 1)
                .collect();
            let span = positions.last().unwrap() - positions.first().unwrap() + 1;
            assert!(span <= 32, "burst spanned {span} bits");
        }
    }

    #[test]
    fn fixed_weight_flips_exactly_k() {
        let mut ch = FixedWeightChannel::new(5);
        ch.reseed(11);
        for _ in 0..100 {
            let mut frame = vec![0u8; 32];
            assert_eq!(ch.corrupt(&mut frame), 5);
            let ones: u32 = frame.iter().map(|b| b.count_ones()).sum();
            assert_eq!(ones, 5, "exactly k distinct positions flipped");
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn fixed_weight_rejects_short_frames() {
        let mut ch = FixedWeightChannel::new(9);
        let mut frame = vec![0u8; 1];
        ch.corrupt(&mut frame);
    }

    #[test]
    fn gilbert_elliott_is_burstier_than_bsc_at_equal_average() {
        // Same average BER; the GE channel should concentrate errors in
        // fewer frames (higher variance of per-frame flips).
        let frames = 600;
        let frame_len = 250;
        let avg_ber = 1e-3;
        let mut bsc = BscChannel::new(avg_ber);
        bsc.reseed(1);
        // GE: bad state 1% of the time with 100x the error rate.
        let mut ge = GilbertElliottChannel::new(1e-4, 9.9e-3, 0.0, avg_ber * 101.0);
        ge.reseed(1);
        assert!((ge.stationary_bad() - 0.0099).abs() < 1e-3);
        let var = |ch: &mut dyn Channel| {
            let mut counts = Vec::new();
            for _ in 0..frames {
                let mut f = vec![0u8; frame_len];
                counts.push(ch.corrupt(&mut f) as f64);
            }
            let mean = counts.iter().sum::<f64>() / frames as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / frames as f64
        };
        let v_bsc = var(&mut bsc);
        let v_ge = var(&mut ge);
        assert!(
            v_ge > v_bsc,
            "Gilbert–Elliott variance {v_ge} should exceed BSC variance {v_bsc}"
        );
    }

    #[test]
    fn jammer_strikes_only_sync_bytes() {
        let mut ch = JammerChannel::new(0x7E, 1.0);
        ch.reseed(5);
        let mut frame = vec![0x11, 0x7E, 0x22, 0x7E, 0x7E, 0x33];
        let flips = ch.corrupt(&mut frame);
        assert_eq!(flips, 3, "hit_prob 1.0 strikes every sync byte");
        assert_eq!((frame[0], frame[2], frame[5]), (0x11, 0x22, 0x33));
        for i in [1usize, 3, 4] {
            assert_eq!((frame[i] ^ 0x7E).count_ones(), 1, "one bit per strike");
        }
    }

    #[test]
    fn jammer_without_sync_bytes_is_silent() {
        let mut ch = JammerChannel::hdlc(1.0);
        let mut frame = vec![0x00u8; 64];
        assert_eq!(ch.corrupt(&mut frame), 0);
        assert!(frame.iter().all(|&b| b == 0));
        let mut zero_prob = JammerChannel::hdlc(0.0);
        let mut flags = vec![0x7Eu8; 64];
        assert_eq!(zero_prob.corrupt(&mut flags), 0);
        assert!(flags.iter().all(|&b| b == 0x7E));
    }

    #[test]
    fn stuffing_slip_count_bounded_by_stuffing_points() {
        // 0xFF bytes: a stuffing point every 5 bits.
        let original = vec![0xFFu8; 20];
        assert_eq!(StuffingChannel::stuffing_points(&original), 160 / 5);
        let mut ch = StuffingChannel::new(1.0);
        ch.reseed(3);
        let mut frame = original.clone();
        let slips = ch.corrupt(&mut frame);
        assert!((1..=32).contains(&slips), "slips {slips}");
        assert_ne!(frame, original, "slips must modify the frame");
    }

    #[test]
    fn stuffing_needs_ones_runs() {
        let mut ch = StuffingChannel::new(1.0);
        // No run of five 1s anywhere: 0x55 alternates bits.
        let mut frame = vec![0x55u8; 32];
        assert_eq!(StuffingChannel::stuffing_points(&frame), 0);
        assert_eq!(ch.corrupt(&mut frame), 0);
        assert!(frame.iter().all(|&b| b == 0x55));
        let mut never = StuffingChannel::new(0.0);
        let mut ones = vec![0xFFu8; 32];
        assert_eq!(never.corrupt(&mut ones), 0);
        assert!(ones.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn stuffing_insertion_shifts_the_tail() {
        // One stuffing point (bits 0..=4 are 1s), then a distinctive tail:
        // any slip shifts every later bit by one position.
        let original = vec![0x1F, 0xA5, 0xC3, 0x99];
        assert_eq!(StuffingChannel::stuffing_points(&original), 1);
        let mut ch = StuffingChannel::new(1.0);
        let mut saw_change = 0;
        for seed in 0..20 {
            ch.reseed(seed);
            let mut frame = original.clone();
            if ch.corrupt(&mut frame) > 0 {
                assert_ne!(frame, original);
                saw_change += 1;
            }
        }
        assert_eq!(saw_change, 20, "slip_prob 1.0 always slips here");
    }

    #[test]
    fn truncation_respects_length_bounds() {
        let mut ch = TruncationChannel::new(1.0, 8);
        ch.reseed(9);
        let mut cuts = 0;
        let mut extends = 0;
        for _ in 0..200 {
            let mut frame = vec![0xA5u8; 64];
            let bits = ch.corrupt(&mut frame);
            assert!(bits > 0, "p = 1.0 always corrupts multi-byte frames");
            assert_eq!(bits % 8, 0, "magnitude is whole bytes");
            assert!((56..=72).contains(&frame.len()), "len {}", frame.len());
            if frame.len() < 64 {
                cuts += 1;
                assert!(frame.iter().all(|&b| b == 0xA5), "cut keeps the prefix");
            } else {
                extends += 1;
                assert!(frame[..64].iter().all(|&b| b == 0xA5));
            }
        }
        assert!(cuts > 50 && extends > 50, "{cuts} cuts / {extends} extends");
    }

    #[test]
    fn truncation_never_empties_a_frame() {
        let mut ch = TruncationChannel::new(1.0, 100);
        ch.reseed(1);
        for _ in 0..100 {
            let mut frame = vec![0u8; 3];
            ch.corrupt(&mut frame);
            assert!(!frame.is_empty());
        }
        let mut untouched = TruncationChannel::new(0.0, 4);
        let mut frame = vec![7u8; 10];
        assert_eq!(untouched.corrupt(&mut frame), 0);
        assert_eq!(frame, vec![7u8; 10]);
    }

    #[test]
    fn content_dependent_channels_stay_off_the_delta_path() {
        let channels: [Box<dyn Channel>; 3] = [
            Box::new(JammerChannel::hdlc(0.5)),
            Box::new(StuffingChannel::new(0.1)),
            Box::new(TruncationChannel::new(0.1, 4)),
        ];
        for ch in &channels {
            assert!(!ch.content_independent());
            assert!(!ch.fork(1).content_independent(), "forks keep the flag");
        }
    }
}
