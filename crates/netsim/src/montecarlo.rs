//! Monte-Carlo corruption experiments and directed error injection.
//!
//! Two complementary modes validate the weight analysis of `crc-hd`:
//!
//! * **Random trials** ([`run_trials`], [`run_weighted_trials`], or the
//!   underlying [`Simulator`]) measure detected/undetected rates under a
//!   channel model. Undetected events are astronomically rare for 32-bit
//!   CRCs (≈2⁻³² of corruptions), so statistical validation uses small
//!   widths where the rate is measurable (≈2⁻⁸ for CRC-8), exactly like
//!   the paper's 8/16-bit validation searches.
//! * **Directed injection** ([`inject_undetectable`]) XORs a *known
//!   codeword* (a multiple of the generator) onto a frame, demonstrating
//!   the blind spots the weight analysis predicts — without waiting 2³²
//!   trials for one to occur naturally.
//!
//! # The sharded engine
//!
//! [`Simulator`] partitions a run into fixed-size **shards** (default
//! [`Simulator::DEFAULT_SHARD_FRAMES`] frames). Shard `i` derives its
//! plan, fill and [`Channel::fork`] seeds from
//! [`shard_seed`]`(cfg.seed, i, stream)`, so the work inside a shard is a
//! pure function of the configuration. Worker threads claim shard indices
//! from an atomic counter and merge [`TrialStats`] with exact integer
//! sums — commutative, so the tally is **bit-identical for any thread
//! count**. Within a shard, frames are processed in bursts of
//! [`Simulator::DEFAULT_BATCH`]: payloads are filled and sealed in place
//! (no per-frame allocation), corrupted through
//! [`Channel::corrupt_batch`], and verified through
//! [`FrameCodec::verify_batch`] so the CLMUL engine sees contiguous work.
//!
//! # The two-stage pipeline
//!
//! Every burst passes through two stages: **produce** (plan frame
//! lengths, prepare buffers, run the channel — RNG-bound) and **consume**
//! (compose payloads, batch-verify CRCs, tally — CRC-bound). Sharded
//! mode alternates them on one thread; [`Simulator::pipelined`] mode
//! pairs worker threads into lanes running the stages concurrently, with
//! bursts double-buffered between them, so channel randomness for shard
//! `k+1` overlaps verification of shard `k`. Because planning, channel
//! and payload randomness live on **disjoint** [`shard_seed`] streams
//! ([`STREAM_PLAN`]/[`STREAM_CHANNEL`]/[`STREAM_FILL`] — the stage that
//! fills payloads owns the fill stream), both modes consume identical
//! streams and tally bit-identically at any thread count.
//!
//! Which stage fills payloads depends on the path: content-independent
//! channels ride the **delta path** (corrupt all-zero frames in produce;
//! fill, seal and compose only the corrupted minority in consume), while
//! content-dependent channels — jammers keying on frame bytes, stuffing
//! slips, length errors — are filled and sealed eagerly in produce so
//! the channel sees real content.

use crate::channel::{Channel, FixedWeightChannel};
use crate::frame::FrameCodec;
use crckit::CrcParams;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Bucket bounds (µs) for the consume-stage burst histogram: a burst is
/// a few hundred frames of compose + batch-verify, so the interesting
/// range spans tens of microseconds to tens of milliseconds.
const CONSUME_BURST_BOUNDS: [u64; 9] = [10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000];

/// Cached handles for one pipeline lane (`sim.lane.{l}.*`), resolved
/// once at lane spawn so the burst loop never touches the registry lock.
/// `None` when telemetry is disabled — the lane threads then run their
/// plain blocking send/recv paths with zero added work.
#[derive(Clone)]
struct LaneMetrics {
    /// Frames tallied by this lane's consumer (`sim.lane.{l}.frames`).
    frames: Arc<telemetry::Counter>,
    /// Times the producer found no free buffer or a full job queue.
    producer_stalls: Arc<telemetry::Counter>,
    /// Times the consumer found the job queue empty.
    consumer_stalls: Arc<telemetry::Counter>,
    /// Wall-clock µs the lane's consumer ran, set once at lane exit.
    elapsed_us: Arc<telemetry::Gauge>,
}

fn lane_metrics(lane: usize) -> Option<LaneMetrics> {
    let reg = telemetry::global();
    if !reg.enabled() {
        return None;
    }
    Some(LaneMetrics {
        frames: reg.counter(&format!("sim.lane.{lane}.frames")),
        producer_stalls: reg.counter(&format!("sim.lane.{lane}.producer_stalls")),
        consumer_stalls: reg.counter(&format!("sim.lane.{lane}.consumer_stalls")),
        elapsed_us: reg.gauge(&format!("sim.lane.{lane}.elapsed_us")),
    })
}

/// Process-wide engine-path counters (`sim.path.*`) and the consume-stage
/// burst histogram, shared by the sharded loop, the pipeline's solo
/// worker, and every lane consumer.
struct PathMetrics {
    /// Frames tallied on the eager (encode→corrupt→verify) path.
    eager_frames: Arc<telemetry::Counter>,
    /// Frames tallied on the delta (all-zero composition) path.
    delta_frames: Arc<telemetry::Counter>,
    /// Duration of each consume stage call, µs.
    consume_burst_us: Arc<telemetry::Histogram>,
}

fn path_metrics() -> Option<&'static PathMetrics> {
    if !telemetry::global().enabled() {
        return None;
    }
    static CELL: OnceLock<PathMetrics> = OnceLock::new();
    Some(CELL.get_or_init(|| {
        let reg = telemetry::global();
        PathMetrics {
            eager_frames: reg.counter("sim.path.eager_frames"),
            delta_frames: reg.counter("sim.path.delta_frames"),
            consume_burst_us: reg.histogram("sim.consume_burst_us", &CONSUME_BURST_BOUNDS),
        }
    }))
}

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Payload length per frame, bytes.
    pub payload_len: usize,
    /// Number of frames to push through the channel.
    pub trials: u64,
    /// RNG seed (payloads and channel are derived deterministically).
    pub seed: u64,
}

/// Tally of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialStats {
    /// Frames the channel left untouched.
    pub clean: u64,
    /// Corrupted frames the CRC caught.
    pub detected: u64,
    /// Corrupted frames the CRC accepted — undetected errors.
    pub undetected: u64,
    /// Total bits flipped across all frames.
    pub bits_flipped: u64,
}

impl TrialStats {
    /// Total frames.
    pub fn total(&self) -> u64 {
        self.clean + self.detected + self.undetected
    }

    /// Frames the channel corrupted (detected or not).
    pub fn corrupted(&self) -> u64 {
        self.detected + self.undetected
    }

    /// Accumulates another tally into this one — exact integer sums, so
    /// merging is commutative and associative: shard results can be
    /// combined in any order with an identical outcome.
    pub fn merge(&mut self, other: &TrialStats) {
        self.clean += other.clean;
        self.detected += other.detected;
        self.undetected += other.undetected;
        self.bits_flipped += other.bits_flipped;
    }

    /// Folds one frame's outcome into the tally: `verdict` is `None` for
    /// an untouched frame, otherwise whether the corrupted frame still
    /// verified (an undetected error).
    pub(crate) fn tally_frame(&mut self, flips: u32, verdict: Option<bool>) {
        self.bits_flipped += flips as u64;
        match verdict {
            None => self.clean += 1,
            Some(true) => self.undetected += 1,
            Some(false) => self.detected += 1,
        }
    }

    /// Undetected fraction among corrupted frames (`None` if nothing was
    /// corrupted).
    pub fn undetected_rate(&self) -> Option<f64> {
        let corrupted = self.corrupted();
        if corrupted == 0 {
            None
        } else {
            Some(self.undetected as f64 / corrupted as f64)
        }
    }

    /// Wilson score interval for the undetected rate at critical value
    /// `z` (`None` if nothing was corrupted).
    ///
    /// Unlike the normal approximation, Wilson stays inside `[0, 1]` and
    /// gives a meaningful upper bound even when zero undetected events
    /// were observed — the usual situation for 32-bit CRCs, where the
    /// interesting number is "how small a rate have the trials excluded".
    pub fn undetected_wilson(&self, z: f64) -> Option<(f64, f64)> {
        let n = self.corrupted() as f64;
        if n == 0.0 {
            return None;
        }
        let p = self.undetected as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        // Pin the degenerate endpoints: algebraically the bound is exactly
        // 0 (or 1) there, but `center - half` leaves float residue.
        let lo = if self.undetected == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let hi = if self.undetected == self.corrupted() {
            1.0
        } else {
            (center + half).min(1.0)
        };
        Some((lo, hi))
    }

    /// The 95% Wilson interval ([`TrialStats::undetected_wilson`] at
    /// z = 1.96).
    pub fn undetected_ci95(&self) -> Option<(f64, f64)> {
        self.undetected_wilson(1.959_963_984_540_054)
    }
}

/// Derives the deterministic seed for one shard of a run.
///
/// `stream` separates independent random streams inside the same shard
/// (stream 0 drives frame planning — lengths and traffic classes —
/// stream 1 the channel fork, stream 2 payload content); the SplitMix64
/// finalizer decorrelates the structured inputs. This function is the
/// whole seeding scheme: any shard of any CI run can be reproduced
/// locally from `(seed, shard, stream)` alone.
///
/// Plan, channel and fill draw from **disjoint streams** so the engine's
/// two stages never contend for one generator: the produce stage (plan +
/// corrupt) and the consume stage (compose + verify) can run on different
/// threads in pipelined mode, each seeding its own streams from the shard
/// index alone, and still reproduce the sharded mode bit for bit.
pub fn shard_seed(seed: u64, shard: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random stream index for frame planning (lengths, traffic classes)
/// within a shard.
pub const STREAM_PLAN: u64 = 0;
/// Random stream index for the channel fork within a shard.
pub const STREAM_CHANNEL: u64 = 1;
/// Random stream index for payload content within a shard.
pub const STREAM_FILL: u64 = 2;

/// The two payload-side random streams of one shard: `plan` draws frame
/// lengths and tags, `fill` draws payload bytes. Whichever stage fills
/// payloads (produce on the eager path, consume on the delta path) owns
/// `fill` — the split is what lets the stages live on different threads.
pub(crate) struct ShardStreams {
    pub(crate) plan: rand::rngs::StdRng,
    pub(crate) fill: rand::rngs::StdRng,
}

impl ShardStreams {
    pub(crate) fn new(seed: u64, shard: u64) -> ShardStreams {
        ShardStreams {
            plan: rand::rngs::StdRng::seed_from_u64(shard_seed(seed, shard, STREAM_PLAN)),
            fill: rand::rngs::StdRng::seed_from_u64(shard_seed(seed, shard, STREAM_FILL)),
        }
    }
}

/// The sharded, batch-driven trial engine.
///
/// ```
/// use netsim::channel::BscChannel;
/// use netsim::frame::FrameCodec;
/// use netsim::montecarlo::{Simulator, TrialConfig};
/// use crckit::catalog;
///
/// let codec = FrameCodec::new(catalog::CRC32_ISCSI);
/// let cfg = TrialConfig { payload_len: 256, trials: 4_000, seed: 7 };
/// let one = Simulator::new().threads(1).run(&codec, &BscChannel::new(1e-3), &cfg);
/// let four = Simulator::new().threads(4).run(&codec, &BscChannel::new(1e-3), &cfg);
/// assert_eq!(one, four); // same seed => identical stats, any thread count
/// let piped = Simulator::new().pipelined().threads(4).run(&codec, &BscChannel::new(1e-3), &cfg);
/// assert_eq!(one, piped); // pipelining reschedules work, never changes it
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    threads: usize,
    batch: usize,
    shard_frames: u64,
    pipelined: bool,
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator::new()
    }
}

impl Simulator {
    /// Frames per burst fed through `corrupt_batch`/`verify_batch`.
    pub const DEFAULT_BATCH: usize = 256;
    /// Frames per shard — the determinism unit. Small enough that modest
    /// runs still fan out across workers, large enough that per-shard
    /// setup (channel fork, RNG init) is noise.
    pub const DEFAULT_SHARD_FRAMES: u64 = 1024;
    /// Bursts queued between a pipeline lane's producer and consumer (the
    /// double buffer), on top of the burst each stage holds in hand.
    const PIPE_DEPTH: usize = 2;

    /// A simulator with default sharding that uses every available core.
    pub fn new() -> Simulator {
        Simulator {
            threads: 0,
            batch: Self::DEFAULT_BATCH,
            shard_frames: Self::DEFAULT_SHARD_FRAMES,
            pipelined: false,
        }
    }

    /// Switches to the two-stage pipelined execution mode: worker threads
    /// pair into lanes whose **producer** half plans frames and runs the
    /// channel (the RNG-bound stage) while the **consumer** half composes
    /// payloads, batch-verifies CRCs and tallies (the CRC-bound stage) —
    /// so channel corruption for the next burst overlaps verification of
    /// the previous one through a double-buffered handoff.
    ///
    /// Purely a scheduling change: plan, channel and fill randomness live
    /// on disjoint [`shard_seed`] streams, laid out identically in both
    /// modes, so a pipelined run is **bit-identical** to the sharded mode
    /// at any thread count. With fewer than two workers the stages simply
    /// run back to back on one thread; an odd worker count runs the
    /// unpaired worker the same sequential way alongside the lanes, so no
    /// requested thread idles.
    pub fn pipelined(mut self) -> Simulator {
        self.pipelined = true;
        self
    }

    /// Whether [`Simulator::pipelined`] mode is selected.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Sets the worker thread count (0 = one per available core).
    ///
    /// Thread count affects wall-clock only, never results: shards are
    /// claimed dynamically but their contents depend only on the seed.
    pub fn threads(mut self, threads: usize) -> Simulator {
        self.threads = threads;
        self
    }

    /// Sets the burst size (frames encoded/corrupted/verified together).
    ///
    /// Like [`Simulator::shard_frames`], this is part of the random-stream
    /// layout for channels whose `corrupt_batch` override spans frame
    /// boundaries (e.g. [`crate::channel::BscChannel`]): exact tallies are reproducible at
    /// equal `batch`; the distribution is identical at any `batch`.
    pub fn batch(mut self, batch: usize) -> Simulator {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// Sets the shard size in frames.
    ///
    /// Changing this changes which RNG stream each frame draws from, so
    /// runs are only comparable bit-for-bit at equal `shard_frames`.
    pub fn shard_frames(mut self, shard_frames: u64) -> Simulator {
        assert!(shard_frames >= 1, "shard_frames must be at least 1");
        self.shard_frames = shard_frames;
        self
    }

    /// The resolved worker count for a run of `shards` shards.
    fn worker_count(&self, shards: u64) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.clamp(1, shards.max(1) as usize)
    }

    /// Shard-pool driver: claims shard indices from an atomic counter,
    /// runs `make_worker()`'s closure on each, and merges the partial
    /// tallies. `make_worker` is called once per worker so burst scratch
    /// buffers are reused across that worker's shards.
    pub(crate) fn run_sharded<S, G, F>(&self, trials: u64, make_worker: G) -> S
    where
        S: Default + Send + Merge,
        G: Fn() -> F + Sync,
        F: FnMut(u64, u64) -> S,
    {
        let shard_frames = self.shard_frames;
        let shards = trials.div_ceil(shard_frames);
        let shard_len = |shard: u64| shard_frames.min(trials - shard * shard_frames);
        let workers = self.worker_count(shards);
        if workers <= 1 {
            let mut acc = S::default();
            let mut work = make_worker();
            for shard in 0..shards {
                acc.merge_from(work(shard, shard_len(shard)));
            }
            return acc;
        }
        let next = AtomicU64::new(0);
        let partials: Vec<S> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local = S::default();
                        let mut work = make_worker();
                        loop {
                            let shard = next.fetch_add(1, Ordering::Relaxed);
                            if shard >= shards {
                                break;
                            }
                            local.merge_from(work(shard, shard_len(shard)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulator worker"))
                .collect()
        })
        .expect("simulator scope");
        let mut acc = S::default();
        for partial in partials {
            acc.merge_from(partial);
        }
        acc
    }

    /// Pushes random frames through forks of `channel`, tallying CRC
    /// verdicts. Deterministic for a given `(cfg, shard_frames)`
    /// regardless of `threads` and of sharded vs [`Simulator::pipelined`]
    /// mode. Exact tallies are also reproducible at equal `batch`; a
    /// channel whose `corrupt_batch` override carries a random stream
    /// across frame boundaries (e.g. [`crate::channel::BscChannel`]'s geometric skip)
    /// lays that stream out per burst, so a *different* batch size can
    /// regroup it — same distribution, different draws.
    ///
    /// For [`Channel::content_independent`] channels the engine runs the
    /// **delta path**: the burst is corrupted as all-zero delta frames
    /// first, frames the channel left untouched are tallied clean with no
    /// payload or CRC work at all, and only the corrupted minority is
    /// filled, sealed, composed with its delta and batch-verified. CRC
    /// linearity makes the verdict distribution identical to the eager
    /// encode→corrupt→verify path, which content-dependent channels
    /// (e.g. [`crate::channel::JammerChannel`] or the length-changing
    /// slip models) always take. In debug builds a mis-flagged channel —
    /// one claiming content independence whose corruption actually
    /// depends on frame bytes — panics before any trial runs.
    pub fn run(&self, codec: &FrameCodec, channel: &dyn Channel, cfg: &TrialConfig) -> TrialStats {
        #[cfg(debug_assertions)]
        assert_content_flag(channel, cfg.seed, cfg.payload_len + codec.overhead());
        let payload_len = cfg.payload_len;
        self.run_engine(
            codec,
            channel,
            cfg.seed,
            cfg.trials,
            || move |_: &mut rand::rngs::StdRng| (payload_len, 0),
            |stats: &mut TrialStats, _tag, flips, verdict| stats.tally_frame(flips, verdict),
        )
    }

    /// Engine core shared by [`Simulator::run`] and [`Simulator::run_mix`]:
    /// dispatches a run to the sharded or pipelined driver. `make_plan`
    /// yields a per-worker closure fixing each frame's `(payload_len,
    /// tag)` from the shard's plan stream; `sink` folds one frame's
    /// outcome into the mergeable partial `S` (`verdict = None` for
    /// frames the channel left untouched).
    pub(crate) fn run_engine<S, GP, FP>(
        &self,
        codec: &FrameCodec,
        channel: &dyn Channel,
        seed: u64,
        trials: u64,
        make_plan: GP,
        sink: impl Fn(&mut S, usize, u32, Option<bool>) + Sync,
    ) -> S
    where
        S: Default + Send + Merge,
        GP: Fn() -> FP + Sync,
        FP: FnMut(&mut rand::rngs::StdRng) -> (usize, usize),
    {
        let shards = trials.div_ceil(self.shard_frames);
        if self.pipelined && self.worker_count(shards) >= 2 {
            return self.run_pipeline(codec, channel, seed, trials, &make_plan, &sink);
        }
        let batch = self.batch;
        let sink = &sink;
        let make_plan = &make_plan;
        self.run_sharded(trials, move || {
            let mut scratch = ShardScratch::new(batch);
            let mut plan = make_plan();
            move |shard, count| {
                let mut local = S::default();
                run_shard_two_stage(
                    codec,
                    channel,
                    seed,
                    shard,
                    count,
                    &mut scratch,
                    &mut plan,
                    |tag, flips, verdict| sink(&mut local, tag, flips, verdict),
                );
                local
            }
        })
    }

    /// The two-stage pipelined driver: `workers / 2` lanes, each pairing
    /// a producer thread (plan + corrupt — it claims shards from the
    /// shared counter) with a consumer thread (compose + verify + tally)
    /// over a bounded queue of [`Simulator::PIPE_DEPTH`] bursts. Burst
    /// buffers recycle through a return channel, so the steady state
    /// allocates nothing and at most `PIPE_DEPTH + 2` bursts per lane are
    /// ever in flight.
    fn run_pipeline<S, GP, FP>(
        &self,
        codec: &FrameCodec,
        channel: &dyn Channel,
        seed: u64,
        trials: u64,
        make_plan: &GP,
        sink: &(impl Fn(&mut S, usize, u32, Option<bool>) + Sync),
    ) -> S
    where
        S: Default + Send + Merge,
        GP: Fn() -> FP + Sync,
        FP: FnMut(&mut rand::rngs::StdRng) -> (usize, usize),
    {
        use std::sync::mpsc;
        let shard_frames = self.shard_frames;
        let shards = trials.div_ceil(shard_frames);
        let shard_len = move |shard: u64| shard_frames.min(trials - shard * shard_frames);
        let workers = self.worker_count(shards);
        let lanes = (workers / 2).max(1);
        let batch = self.batch;
        let delta = channel.content_independent();
        let next = AtomicU64::new(0);
        let partials: Vec<S> = crossbeam::scope(|scope| {
            let next = &next;
            let mut consumers = Vec::with_capacity(lanes + 1);
            // An odd worker count leaves one thread unpaired: run it as a
            // sequential two-stage worker on the same shard counter (same
            // stage functions, same streams — shard results are pure, so
            // mixing lane and solo workers cannot change the tally).
            if workers > lanes * 2 {
                consumers.push(scope.spawn(move |_| {
                    let mut local = S::default();
                    let mut scratch = ShardScratch::new(batch);
                    let mut plan = make_plan();
                    loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards {
                            break;
                        }
                        run_shard_two_stage(
                            codec,
                            channel,
                            seed,
                            shard,
                            shard_len(shard),
                            &mut scratch,
                            &mut plan,
                            |tag, f, v| sink(&mut local, tag, f, v),
                        );
                    }
                    local
                }));
            }
            for lane in 0..lanes {
                let (job_tx, job_rx) = mpsc::sync_channel::<BurstJob>(Self::PIPE_DEPTH);
                let (free_tx, free_rx) = mpsc::channel::<BurstJob>();
                // The circulating buffer pool: the queue plus one burst in
                // each stage's hands.
                for _ in 0..Self::PIPE_DEPTH + 2 {
                    free_tx
                        .send(BurstJob::new(batch))
                        .expect("receiver is live");
                }
                // Resolved once per lane; the burst loops pay one branch
                // per blocking point when telemetry is off.
                let lane_prod = lane_metrics(lane);
                let lane_cons = lane_prod.clone();
                scope.spawn(move |_| {
                    let lm = lane_prod;
                    let mut plan = make_plan();
                    loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards {
                            break;
                        }
                        let mut streams = ShardStreams::new(seed, shard);
                        let mut ch = channel.fork(shard_seed(seed, shard, STREAM_CHANNEL));
                        let mut left = shard_len(shard);
                        while left > 0 {
                            let burst = (batch as u64).min(left) as usize;
                            // A closed return channel means the consumer
                            // died (panicked); stop producing. When
                            // instrumented, an empty pool counts as a
                            // producer stall (the consumer is behind)
                            // before falling back to the blocking wait.
                            let recycled = match &lm {
                                Some(m) => match free_rx.try_recv() {
                                    Ok(job) => Ok(job),
                                    Err(mpsc::TryRecvError::Empty) => {
                                        m.producer_stalls.inc();
                                        free_rx.recv().map_err(|_| ())
                                    }
                                    Err(mpsc::TryRecvError::Disconnected) => Err(()),
                                },
                                None => free_rx.recv().map_err(|_| ()),
                            };
                            let Ok(mut job) = recycled else { return };
                            job.shard = shard;
                            produce_burst(
                                codec,
                                ch.as_mut(),
                                &mut streams,
                                &mut job,
                                burst,
                                &mut plan,
                            );
                            // A full job queue is the other producer-side
                            // stall: the burst is ready but the consumer
                            // has not drained the pipe.
                            let sent = match &lm {
                                Some(m) => match job_tx.try_send(job) {
                                    Ok(()) => Ok(()),
                                    Err(mpsc::TrySendError::Full(job)) => {
                                        m.producer_stalls.inc();
                                        job_tx.send(job).map_err(|_| ())
                                    }
                                    Err(mpsc::TrySendError::Disconnected(_)) => Err(()),
                                },
                                None => job_tx.send(job).map_err(|_| ()),
                            };
                            if sent.is_err() {
                                return;
                            }
                            left -= burst as u64;
                        }
                    }
                });
                consumers.push(scope.spawn(move |_| {
                    let lm = lane_cons;
                    let pm = path_metrics();
                    let t0 = std::time::Instant::now();
                    let mut local = S::default();
                    let mut work = Vec::new();
                    // On the delta path the consumer owns the fill stream,
                    // re-derived from the shard index at each shard
                    // boundary (bursts of one shard arrive contiguously
                    // and in order from this lane's producer).
                    let mut fill: Option<(u64, rand::rngs::StdRng)> = None;
                    loop {
                        // An empty job queue counts as a consumer stall
                        // (the producer is behind) before the blocking
                        // wait; a disconnect means the producer finished.
                        let received = match &lm {
                            Some(m) => match job_rx.try_recv() {
                                Ok(job) => Ok(job),
                                Err(mpsc::TryRecvError::Empty) => {
                                    m.consumer_stalls.inc();
                                    job_rx.recv().map_err(|_| ())
                                }
                                Err(mpsc::TryRecvError::Disconnected) => Err(()),
                            },
                            None => job_rx.recv().map_err(|_| ()),
                        };
                        let Ok(mut job) = received else { break };
                        let fill_rng = if delta {
                            if fill.as_ref().map(|(s, _)| *s) != Some(job.shard) {
                                fill = Some((job.shard, ShardStreams::new(seed, job.shard).fill));
                            }
                            fill.as_mut().map(|(_, rng)| rng)
                        } else {
                            None
                        };
                        let span = pm.map(|p| telemetry::Span::start(&p.consume_burst_us));
                        consume_burst(codec, fill_rng, &mut job, &mut work, |tag, f, v| {
                            sink(&mut local, tag, f, v)
                        });
                        if let Some(sp) = span {
                            sp.finish();
                        }
                        if let Some(m) = &lm {
                            m.frames.add(job.used as u64);
                        }
                        if let Some(p) = pm {
                            let path = if delta {
                                &p.delta_frames
                            } else {
                                &p.eager_frames
                            };
                            path.add(job.used as u64);
                        }
                        let _ = free_tx.send(job);
                    }
                    if let Some(m) = &lm {
                        m.elapsed_us.set(t0.elapsed().as_micros() as u64);
                    }
                    local
                }));
            }
            consumers
                .into_iter()
                .map(|h| h.join().expect("pipeline consumer"))
                .collect()
        })
        .expect("simulator scope");
        let mut acc = S::default();
        for partial in partials {
            acc.merge_from(partial);
        }
        acc
    }

    /// Flips exactly `k` distinct random bit positions per frame and
    /// tallies verdicts: the empirical estimate of the paper's
    /// `Wₖ / C(n+r, k)` undetected fraction, on the sharded engine.
    pub fn run_weighted(
        &self,
        codec: &FrameCodec,
        payload_len: usize,
        k: u32,
        trials: u64,
        seed: u64,
    ) -> TrialStats {
        let channel = FixedWeightChannel::new(k);
        self.run(
            codec,
            &channel,
            &TrialConfig {
                payload_len,
                trials,
                seed,
            },
        )
    }
}

/// One burst of frames in flight through the engine: the unit the produce
/// stage (plan + corrupt) hands to the consume stage (compose + verify +
/// tally). In pipelined mode jobs travel between the lane's two threads
/// and recycle through a return channel; in sharded mode a single job is
/// reused in place.
pub(crate) struct BurstJob {
    /// Shard this burst belongs to — the consume stage derives the
    /// shard's fill stream from it on the delta path.
    shard: u64,
    /// Frames in use this burst (`frames[..used]`).
    used: usize,
    frames: Vec<Vec<u8>>,
    flips: Vec<u32>,
    tags: Vec<usize>,
}

impl BurstJob {
    fn new(batch: usize) -> BurstJob {
        BurstJob {
            shard: 0,
            used: 0,
            frames: vec![Vec::new(); batch],
            flips: Vec::new(),
            tags: vec![0; batch],
        }
    }
}

/// Reusable per-worker buffers for the sequential (sharded-mode) loop.
pub(crate) struct ShardScratch {
    job: BurstJob,
    work: Vec<u8>,
}

impl ShardScratch {
    pub(crate) fn new(batch: usize) -> ShardScratch {
        ShardScratch {
            job: BurstJob::new(batch),
            work: Vec::new(),
        }
    }
}

/// Stage one of the engine: plans the burst's frames — drawing lengths
/// and tags from the shard's plan stream — prepares their buffers, and
/// corrupts them through the channel.
///
/// Content-dependent channels (the eager path) see real frames: payloads
/// drawn from the fill stream and sealed in place. Content-independent
/// channels see all-zero delta frames, so untouched frames cost no
/// payload or CRC work at all; the delta path's all-zero invariant holds
/// across length changes because growing re-zeroes exactly the truncated
/// bytes.
pub(crate) fn produce_burst(
    codec: &FrameCodec,
    ch: &mut dyn Channel,
    streams: &mut ShardStreams,
    job: &mut BurstJob,
    burst: usize,
    frame_plan: &mut impl FnMut(&mut rand::rngs::StdRng) -> (usize, usize),
) {
    let eager = !ch.content_independent();
    let overhead = codec.overhead();
    job.used = burst;
    for i in 0..burst {
        let (payload_len, tag) = frame_plan(&mut streams.plan);
        job.tags[i] = tag;
        let frame = &mut job.frames[i];
        if eager {
            frame.clear();
            frame.resize(payload_len, 0);
            streams.fill.fill(&mut frame[..]);
            codec.seal(frame);
        } else {
            frame.resize(payload_len + overhead, 0);
        }
    }
    ch.corrupt_batch(&mut job.frames[..burst], &mut job.flips);
}

/// Stage two of the engine: on the delta path (`fill` is `Some`),
/// composes a real sealed frame under each corrupted delta — `(payload ‖
/// FCS) ⊕ δ`, payloads drawn from the fill stream — then batch-verifies
/// the corrupted subset, reports every frame to `sink` (`verdict = None`
/// for untouched frames), and restores the delta path's all-zero
/// invariant on dirty frames so the job can be recycled.
pub(crate) fn consume_burst(
    codec: &FrameCodec,
    fill: Option<&mut rand::rngs::StdRng>,
    job: &mut BurstJob,
    work: &mut Vec<u8>,
    mut sink: impl FnMut(usize, u32, Option<bool>),
) {
    let burst = job.used;
    let delta = fill.is_some();
    if let Some(rng) = fill {
        let overhead = codec.overhead();
        for (frame, &f) in job.frames[..burst].iter_mut().zip(job.flips.iter()) {
            if f == 0 {
                continue;
            }
            work.clear();
            work.resize(frame.len() - overhead, 0);
            rng.fill(&mut work[..]);
            codec.seal(work);
            for (d, w) in frame.iter_mut().zip(work.iter()) {
                *d ^= w;
            }
        }
    }
    // Verify the corrupted subset in one contiguous batch.
    let corrupted: Vec<&[u8]> = job.frames[..burst]
        .iter()
        .zip(job.flips.iter())
        .filter(|(_, &f)| f > 0)
        .map(|(frame, _)| frame.as_slice())
        .collect();
    let verdicts = codec.verify_batch(&corrupted);
    let mut v = verdicts.iter();
    for (&tag, &f) in job.tags[..burst].iter().zip(job.flips.iter()) {
        let verdict = if f == 0 {
            None
        } else {
            Some(*v.next().expect("one verdict per corrupted frame"))
        };
        sink(tag, f, verdict);
    }
    if delta {
        for (frame, &f) in job.frames[..burst].iter_mut().zip(job.flips.iter()) {
            if f > 0 {
                frame.iter_mut().for_each(|b| *b = 0);
            }
        }
    }
}

/// Runs one shard start to finish on a single thread: produce and consume
/// alternate burst by burst. These are exactly the pipeline's stage
/// functions against the same stream layout, which is what makes sharded
/// and pipelined mode tally bit-identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_shard_two_stage(
    codec: &FrameCodec,
    channel: &dyn Channel,
    seed: u64,
    shard: u64,
    count: u64,
    scratch: &mut ShardScratch,
    frame_plan: &mut impl FnMut(&mut rand::rngs::StdRng) -> (usize, usize),
    mut sink: impl FnMut(usize, u32, Option<bool>),
) {
    let batch = scratch.job.frames.len();
    let mut streams = ShardStreams::new(seed, shard);
    let mut ch = channel.fork(shard_seed(seed, shard, STREAM_CHANNEL));
    let delta = channel.content_independent();
    let pm = path_metrics();
    scratch.job.shard = shard;
    let mut left = count;
    while left > 0 {
        let burst = (batch as u64).min(left) as usize;
        produce_burst(
            codec,
            ch.as_mut(),
            &mut streams,
            &mut scratch.job,
            burst,
            frame_plan,
        );
        let fill = if delta { Some(&mut streams.fill) } else { None };
        let span = pm.map(|p| telemetry::Span::start(&p.consume_burst_us));
        consume_burst(codec, fill, &mut scratch.job, &mut scratch.work, &mut sink);
        if let Some(sp) = span {
            sp.finish();
        }
        if let Some(p) = pm {
            let path = if delta {
                &p.delta_frames
            } else {
                &p.eager_frames
            };
            path.add(burst as u64);
        }
        left -= burst as u64;
    }
}

/// Debug-build guard against mis-flagged channels: one claiming
/// [`Channel::content_independent`] must, for the same fork seed, apply
/// the same XOR delta (and keep the same length) on an all-zero frame as
/// on arbitrary content. Content-dependent corruption routed onto the
/// delta path would silently tally wrong verdicts; this probe turns that
/// into a loud panic before any trial runs.
#[cfg(debug_assertions)]
pub(crate) fn assert_content_flag(channel: &dyn Channel, seed: u64, frame_len: usize) {
    if !channel.content_independent() || frame_len == 0 {
        return;
    }
    let probe_seed = shard_seed(seed, u64::MAX, STREAM_CHANNEL);
    let mut zero = vec![0u8; frame_len];
    let flips_zero = channel.fork(probe_seed).corrupt(&mut zero);
    let mut payload_rng = rand::rngs::StdRng::seed_from_u64(probe_seed ^ 0x5EED);
    // Two independent payloads: the chance a content-dependent channel
    // mimics its zero-frame delta on both is negligible.
    for _ in 0..2 {
        let mut payload = vec![0u8; frame_len];
        payload_rng.fill(&mut payload[..]);
        let mut noisy = payload.clone();
        let flips = channel.fork(probe_seed).corrupt(&mut noisy);
        let delta_matches = zero.len() == frame_len
            && noisy.len() == frame_len
            && flips == flips_zero
            && noisy
                .iter()
                .zip(payload.iter())
                .zip(zero.iter())
                .all(|((n, p), z)| n ^ p == *z);
        assert!(
            delta_matches,
            "channel claims content_independent() but its corruption depends on frame \
             bytes; it must return false and take the eager path"
        );
    }
}

/// Mergeable partial results for the shard-pool driver.
pub(crate) trait Merge {
    /// Folds `other` into `self`; must be commutative and associative so
    /// shard completion order cannot affect the merged result.
    fn merge_from(&mut self, other: Self);
}

impl Merge for TrialStats {
    fn merge_from(&mut self, other: TrialStats) {
        self.merge(&other);
    }
}

/// Pushes random frames through a channel and tallies CRC verdicts.
///
/// Convenience wrapper over [`Simulator::run`] with default sharding and
/// all available cores; the channel argument is the fork prototype (its
/// current RNG state is ignored, as [`run_trials`] has always reseeded).
pub fn run_trials(codec: &FrameCodec, channel: &mut dyn Channel, cfg: &TrialConfig) -> TrialStats {
    Simulator::new().run(codec, &*channel, cfg)
}

/// Flips exactly `k` distinct random bit positions per frame and tallies
/// verdicts. Convenience wrapper over [`Simulator::run_weighted`].
pub fn run_weighted_trials(
    codec: &FrameCodec,
    payload_len: usize,
    k: u32,
    trials: u64,
    seed: u64,
) -> TrialStats {
    Simulator::new().run_weighted(codec, payload_len, k, trials, seed)
}

/// Builds an undetectable error pattern for `params` sized for
/// `payload_len`-byte frames: a random multiple of the generator,
/// byte-aligned for reflected or unreflected conventions.
///
/// The returned vector has frame length (`payload_len` + FCS bytes);
/// XORing it onto any valid frame yields another valid frame.
pub fn undetectable_pattern(params: CrcParams, payload_len: usize, seed: u64) -> Vec<u8> {
    // A codeword of the *pure* algorithm (init 0, no reflection, xorout 0)
    // is a multiple of G in MSB-first bit order. For reflected algorithms
    // the per-byte bit-reversal of a multiple is exactly an undetectable
    // delta for the reflected computation, so we build pure and reflect as
    // needed. init/xorout cancel in any XOR delta and need no handling.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pure = CrcParams {
        name: "PURE",
        init: 0,
        refin: false,
        refout: false,
        xorout: 0,
        check: 0,
        ..params
    };
    let codec = FrameCodec::new(pure);
    let mut msg = vec![0u8; payload_len];
    rng.fill(&mut msg[..]);
    // Keep the pattern sparse-ish so tests exercise interesting weights.
    for b in msg.iter_mut() {
        if rng.gen::<f64>() < 0.9 {
            *b = 0;
        }
    }
    let mut pattern = codec.encode(&msg);
    if params.refin {
        for b in pattern.iter_mut() {
            *b = b.reverse_bits();
        }
    }
    pattern
}

/// XORs a known-undetectable pattern onto `frame`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn inject_undetectable(frame: &mut [u8], pattern: &[u8]) {
    assert_eq!(
        frame.len(),
        pattern.len(),
        "pattern must match frame length"
    );
    for (f, p) in frame.iter_mut().zip(pattern) {
        *f ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{
        BscChannel, BurstChannel, GilbertElliottChannel, JammerChannel, StuffingChannel,
        TruncationChannel,
    };
    use crckit::catalog;

    #[test]
    fn zero_ber_all_clean() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mut ch = BscChannel::new(0.0);
        let cfg = TrialConfig {
            payload_len: 64,
            trials: 50,
            seed: 1,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert_eq!(s.clean, 50);
        assert_eq!(s.undetected_rate(), None);
        assert_eq!(s.undetected_ci95(), None);
    }

    #[test]
    fn crc32_catches_every_random_corruption() {
        // 2000 corrupted frames is ~2^-21 of the way to an expected
        // undetected event for a 32-bit CRC: zero undetected expected.
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let mut ch = BscChannel::new(5e-3);
        let cfg = TrialConfig {
            payload_len: 200,
            trials: 2000,
            seed: 2,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert!(s.detected > 1000, "BER should corrupt most frames");
        assert_eq!(s.undetected, 0);
    }

    #[test]
    fn bursts_within_width_always_detected() {
        let codec = FrameCodec::new(catalog::CRC32_MEF);
        let mut ch = BurstChannel::new(32);
        let cfg = TrialConfig {
            payload_len: 150,
            trials: 3000,
            seed: 3,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert_eq!(s.clean, 0, "burst channel always corrupts");
        assert_eq!(s.undetected, 0, "bursts <= width are always detected");
    }

    #[test]
    fn stats_are_identical_across_thread_counts() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let cfg = TrialConfig {
            payload_len: 300,
            trials: 5_000,
            seed: 0xDE7E_2717,
        };
        for channel in [
            &BscChannel::new(1e-3) as &dyn Channel,
            &BurstChannel::new(24),
            &GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2),
        ] {
            let one = Simulator::new().threads(1).run(&codec, channel, &cfg);
            let three = Simulator::new().threads(3).run(&codec, channel, &cfg);
            let eight = Simulator::new().threads(8).run(&codec, channel, &cfg);
            assert_eq!(one, three, "1-thread vs 3-thread divergence");
            assert_eq!(one, eight, "1-thread vs 8-thread divergence");
        }
    }

    #[test]
    fn pipelined_mode_is_bit_identical_to_sharded() {
        // The acceptance gate in miniature: the pipelined tier reschedules
        // work, it never changes it — across delta-path channels,
        // eager-path (content-dependent) channels, thread counts, and
        // partial tail shards.
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let cfg = TrialConfig {
            payload_len: 307,
            trials: 4_777, // deliberately not a multiple of the shard size
            seed: 0x919E,
        };
        for channel in [
            &BscChannel::new(1e-3) as &dyn Channel,
            &GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2),
            &JammerChannel::hdlc(0.5),
            &StuffingChannel::new(0.02),
            &TruncationChannel::new(0.05, 16),
        ] {
            let sharded = Simulator::new().threads(1).run(&codec, channel, &cfg);
            for threads in [1usize, 2, 5] {
                let piped = Simulator::new()
                    .pipelined()
                    .threads(threads)
                    .run(&codec, channel, &cfg);
                assert_eq!(sharded, piped, "pipelined x{threads} diverged");
            }
        }
    }

    #[test]
    fn telemetry_tracks_lane_frames_and_path_split() {
        // A pipelined delta-path run must account for every trial frame in
        // the lane counters and on the delta path counter; an eager-path
        // (content-dependent) run must land on the eager counter. Counters
        // are process-global and other tests run pipelined sims in
        // parallel, so assert the delta grew by at least this run's share.
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let cfg = TrialConfig {
            payload_len: 64,
            trials: 2_000,
            seed: 7,
        };
        let reg = telemetry::global();
        let lane0 = reg.counter("sim.lane.0.frames");
        let delta = reg.counter("sim.path.delta_frames");
        let eager = reg.counter("sim.path.eager_frames");
        let (l0, d0, e0) = (lane0.get(), delta.get(), eager.get());
        Simulator::new()
            .pipelined()
            .threads(2)
            .run(&codec, &BscChannel::new(1e-3), &cfg);
        assert!(
            lane0.get() - l0 >= cfg.trials,
            "one lane tallies all frames"
        );
        assert!(delta.get() - d0 >= cfg.trials, "BSC rides the delta path");
        Simulator::new()
            .pipelined()
            .threads(2)
            .run(&codec, &JammerChannel::hdlc(0.5), &cfg);
        assert!(
            eager.get() - e0 >= cfg.trials,
            "jammer rides the eager path"
        );
    }

    #[test]
    fn pipelined_mix_matches_sharded_mix() {
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let mix = crate::imix::TrafficMix::simple_imix();
        let ch = JammerChannel::hdlc(0.3);
        let sharded = Simulator::new()
            .threads(1)
            .run_mix(&codec, &ch, &mix, 3_000, 21);
        let piped = Simulator::new()
            .pipelined()
            .threads(4)
            .run_mix(&codec, &ch, &mix, 3_000, 21);
        assert_eq!(sharded.per_class.len(), piped.per_class.len());
        for ((ca, sa), (cb, sb)) in sharded.per_class.iter().zip(&piped.per_class) {
            assert_eq!(ca, cb);
            assert_eq!(sa, sb, "per-class divergence for {}", ca.label);
        }
    }

    #[test]
    fn content_dependent_channels_ride_the_eager_path_end_to_end() {
        // Slips and length errors at CRC-32 scale: plenty of corruption,
        // nothing undetected.
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let cfg = TrialConfig {
            payload_len: 256,
            trials: 4_000,
            seed: 0xEA6E,
        };
        for (name, channel) in [
            ("jammer", &JammerChannel::hdlc(0.8) as &dyn Channel),
            ("stuffing", &StuffingChannel::new(0.05)),
            ("truncation", &TruncationChannel::new(0.2, 8)),
        ] {
            let s = Simulator::new().run(&codec, channel, &cfg);
            assert_eq!(s.total(), cfg.trials, "{name}");
            assert!(s.corrupted() > 200, "{name} corrupted too little");
            assert!(s.clean > 0, "{name} should leave some frames clean");
            assert_eq!(s.undetected, 0, "{name}: CRC-32 must catch all of these");
        }
    }

    /// A deliberately mis-flagged channel: claims content independence
    /// but keys its flips on the frame's bytes.
    #[cfg(debug_assertions)]
    #[derive(Debug, Clone)]
    struct MisflaggedChannel(JammerChannel);

    #[cfg(debug_assertions)]
    impl Channel for MisflaggedChannel {
        fn corrupt(&mut self, frame: &mut Vec<u8>) -> u32 {
            self.0.corrupt(frame)
        }
        fn reseed(&mut self, seed: u64) {
            self.0.reseed(seed);
        }
        fn fork(&self, seed: u64) -> Box<dyn Channel> {
            let mut ch = self.clone();
            ch.reseed(seed);
            Box::new(ch)
        }
        fn content_independent(&self) -> bool {
            true // the lie under test
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "content_independent")]
    fn misflagged_channel_is_caught_in_debug_builds() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let cfg = TrialConfig {
            payload_len: 512,
            trials: 100,
            seed: 3,
        };
        let ch = MisflaggedChannel(JammerChannel::hdlc(1.0));
        let _ = Simulator::new().run(&codec, &ch, &cfg);
    }

    #[test]
    fn stats_are_invariant_under_batch_size() {
        // For channels on the default per-frame corrupt_batch path (like
        // Gilbert–Elliott), batch size only groups work and must not
        // change the per-shard corruption sequence. (BscChannel's
        // cross-frame override is exempt: its gap stream is laid out per
        // burst, so it is reproducible at equal batch only.)
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let cfg = TrialConfig {
            payload_len: 128,
            trials: 3_000,
            seed: 99,
        };
        let ch = GilbertElliottChannel::new(1e-3, 1e-2, 0.0, 0.05);
        let small = Simulator::new().batch(7).run(&codec, &ch, &cfg);
        let large = Simulator::new().batch(512).run(&codec, &ch, &cfg);
        assert_eq!(small, large);
    }

    #[test]
    fn merge_is_exact() {
        let a = TrialStats {
            clean: 1,
            detected: 2,
            undetected: 3,
            bits_flipped: 10,
        };
        let mut m = TrialStats::default();
        m.merge(&a);
        m.merge(&a);
        assert_eq!(
            m,
            TrialStats {
                clean: 2,
                detected: 4,
                undetected: 6,
                bits_flipped: 20
            }
        );
        assert_eq!(m.total(), 12);
        assert_eq!(m.corrupted(), 10);
    }

    #[test]
    fn wilson_interval_brackets_the_rate() {
        let s = TrialStats {
            clean: 0,
            detected: 900,
            undetected: 100,
            bits_flipped: 0,
        };
        let (lo, hi) = s.undetected_ci95().unwrap();
        let p = s.undetected_rate().unwrap();
        assert!(lo < p && p < hi, "CI [{lo}, {hi}] must bracket {p}");
        assert!(lo > 0.08 && hi < 0.13, "CI [{lo}, {hi}] is too loose");
        // Zero observed events still give a meaningful upper bound.
        let none = TrialStats {
            clean: 0,
            detected: 10_000,
            undetected: 0,
            bits_flipped: 0,
        };
        let (lo0, hi0) = none.undetected_ci95().unwrap();
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 1e-3, "upper bound {hi0}");
    }

    #[test]
    fn shard_seed_separates_streams_and_shards() {
        assert_ne!(shard_seed(1, 0, 0), shard_seed(1, 0, 1));
        assert_ne!(shard_seed(1, 0, 0), shard_seed(1, 1, 0));
        assert_ne!(shard_seed(1, 0, 0), shard_seed(2, 0, 0));
        assert_eq!(shard_seed(7, 3, 1), shard_seed(7, 3, 1));
    }

    #[test]
    fn crc8_undetected_rate_matches_weight_prediction() {
        // CRC-8/0x07 at a 2-byte payload: k=4 random flips go undetected
        // at rate W4 / C(24, 4). Compute the exact rate from the code
        // spectrum and compare with simulation.
        let g = crc_hd_spectrum_rate();
        let codec = FrameCodec::new(catalog::CRC8_SMBUS);
        let s = run_weighted_trials(&codec, 2, 4, 60_000, 11);
        let measured = s.undetected_rate().unwrap_or(0.0);
        assert_eq!(s.corrupted(), s.total(), "every weighted frame corrupts");
        // 3-sigma tolerance for 60k Bernoulli trials.
        let sigma = (g * (1.0 - g) / 60_000f64).sqrt();
        assert!(
            (measured - g).abs() < 4.0 * sigma + 1e-4,
            "measured {measured}, predicted {g}"
        );
        // The Wilson interval agrees with the point estimate's story.
        let (lo, hi) = s.undetected_ci95().unwrap();
        assert!(lo <= g + 4.0 * sigma && g - 4.0 * sigma <= hi);
    }

    /// Exact W4/C(24,4) for CRC-8/0x07 at 16 data bits via crc-hd.
    fn crc_hd_spectrum_rate() -> f64 {
        let g = crc_hd::GenPoly::from_normal(8, 0x07).unwrap();
        let spec = crc_hd::spectrum::spectrum(&g, 16).unwrap();
        let w4 = spec.count(4) as f64;
        let total = crc_hd::costmodel::error_patterns(24, 4) as f64;
        w4 / total
    }

    #[test]
    fn injected_codewords_are_never_detected() {
        for params in [
            catalog::CRC32_ISO_HDLC,
            catalog::CRC32_ISCSI,
            catalog::CRC32_MEF,
            catalog::CRC16_ARC,
            catalog::CRC16_XMODEM,
        ] {
            let codec = FrameCodec::new(params);
            let payload = vec![0x5Au8; 96];
            let clean = codec.encode(&payload);
            for seed in 0..10 {
                let pattern = undetectable_pattern(params, payload.len(), seed);
                let mut frame = clean.clone();
                inject_undetectable(&mut frame, &pattern);
                if frame == clean {
                    continue; // the random multiple was zero — no error
                }
                assert!(
                    codec.verify(&frame),
                    "{}: injected codeword was detected (weight analysis broken)",
                    params.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "pattern must match")]
    fn inject_length_mismatch_panics() {
        let mut frame = vec![0u8; 8];
        inject_undetectable(&mut frame, &[0u8; 4]);
    }
}
