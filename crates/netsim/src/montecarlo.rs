//! Monte-Carlo corruption experiments and directed error injection.
//!
//! Two complementary modes validate the weight analysis of `crc-hd`:
//!
//! * **Random trials** ([`run_trials`], [`run_weighted_trials`]) measure
//!   detected/undetected rates under a channel model. Undetected events
//!   are astronomically rare for 32-bit CRCs (≈2⁻³² of corruptions), so
//!   statistical validation uses small widths where the rate is
//!   measurable (≈2⁻⁸ for CRC-8), exactly like the paper's 8/16-bit
//!   validation searches.
//! * **Directed injection** ([`inject_undetectable`]) XORs a *known
//!   codeword* (a multiple of the generator) onto a frame, demonstrating
//!   the blind spots the weight analysis predicts — without waiting 2³²
//!   trials for one to occur naturally.

use crate::channel::Channel;
use crate::frame::FrameCodec;
use crckit::CrcParams;
use rand::{Rng, SeedableRng};

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Payload length per frame, bytes.
    pub payload_len: usize,
    /// Number of frames to push through the channel.
    pub trials: u64,
    /// RNG seed (payloads and channel are derived deterministically).
    pub seed: u64,
}

/// Tally of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialStats {
    /// Frames the channel left untouched.
    pub clean: u64,
    /// Corrupted frames the CRC caught.
    pub detected: u64,
    /// Corrupted frames the CRC accepted — undetected errors.
    pub undetected: u64,
    /// Total bits flipped across all frames.
    pub bits_flipped: u64,
}

impl TrialStats {
    /// Total frames.
    pub fn total(&self) -> u64 {
        self.clean + self.detected + self.undetected
    }

    /// Undetected fraction among corrupted frames (`None` if nothing was
    /// corrupted).
    pub fn undetected_rate(&self) -> Option<f64> {
        let corrupted = self.detected + self.undetected;
        if corrupted == 0 {
            None
        } else {
            Some(self.undetected as f64 / corrupted as f64)
        }
    }
}

/// Pushes random frames through a channel and tallies CRC verdicts.
pub fn run_trials(codec: &FrameCodec, channel: &mut dyn Channel, cfg: &TrialConfig) -> TrialStats {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    channel.reseed(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let mut stats = TrialStats::default();
    let mut payload = vec![0u8; cfg.payload_len];
    for _ in 0..cfg.trials {
        rng.fill(&mut payload[..]);
        let mut frame = codec.encode(&payload);
        let flips = channel.corrupt(&mut frame);
        stats.bits_flipped += flips as u64;
        if flips == 0 {
            stats.clean += 1;
        } else if codec.verify(&frame) {
            stats.undetected += 1;
        } else {
            stats.detected += 1;
        }
    }
    stats
}

/// Flips exactly `k` distinct random bit positions per frame and tallies
/// verdicts: the empirical estimate of the paper's `Wₖ / C(n+r, k)`
/// undetected fraction.
pub fn run_weighted_trials(
    codec: &FrameCodec,
    payload_len: usize,
    k: u32,
    trials: u64,
    seed: u64,
) -> TrialStats {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut stats = TrialStats::default();
    let mut payload = vec![0u8; payload_len];
    let mut positions: Vec<u64> = Vec::with_capacity(k as usize);
    for _ in 0..trials {
        rng.fill(&mut payload[..]);
        let mut frame = codec.encode(&payload);
        let nbits = frame.len() as u64 * 8;
        positions.clear();
        while positions.len() < k as usize {
            let p = rng.gen_range(0..nbits);
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        for &p in &positions {
            frame[(p / 8) as usize] ^= 1 << (p % 8);
        }
        stats.bits_flipped += k as u64;
        if codec.verify(&frame) {
            stats.undetected += 1;
        } else {
            stats.detected += 1;
        }
    }
    stats
}

/// Builds an undetectable error pattern for `params` sized for
/// `payload_len`-byte frames: a random multiple of the generator,
/// byte-aligned for reflected or unreflected conventions.
///
/// The returned vector has frame length (`payload_len` + FCS bytes);
/// XORing it onto any valid frame yields another valid frame.
pub fn undetectable_pattern(params: CrcParams, payload_len: usize, seed: u64) -> Vec<u8> {
    // A codeword of the *pure* algorithm (init 0, no reflection, xorout 0)
    // is a multiple of G in MSB-first bit order. For reflected algorithms
    // the per-byte bit-reversal of a multiple is exactly an undetectable
    // delta for the reflected computation, so we build pure and reflect as
    // needed. init/xorout cancel in any XOR delta and need no handling.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pure = CrcParams {
        name: "PURE",
        init: 0,
        refin: false,
        refout: false,
        xorout: 0,
        check: 0,
        ..params
    };
    let codec = FrameCodec::new(pure);
    let mut msg = vec![0u8; payload_len];
    rng.fill(&mut msg[..]);
    // Keep the pattern sparse-ish so tests exercise interesting weights.
    for b in msg.iter_mut() {
        if rng.gen::<f64>() < 0.9 {
            *b = 0;
        }
    }
    let mut pattern = codec.encode(&msg);
    if params.refin {
        for b in pattern.iter_mut() {
            *b = b.reverse_bits();
        }
    }
    pattern
}

/// XORs a known-undetectable pattern onto `frame`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn inject_undetectable(frame: &mut [u8], pattern: &[u8]) {
    assert_eq!(
        frame.len(),
        pattern.len(),
        "pattern must match frame length"
    );
    for (f, p) in frame.iter_mut().zip(pattern) {
        *f ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BscChannel, BurstChannel};
    use crckit::catalog;

    #[test]
    fn zero_ber_all_clean() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mut ch = BscChannel::new(0.0);
        let cfg = TrialConfig {
            payload_len: 64,
            trials: 50,
            seed: 1,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert_eq!(s.clean, 50);
        assert_eq!(s.undetected_rate(), None);
    }

    #[test]
    fn crc32_catches_every_random_corruption() {
        // 2000 corrupted frames is ~2^-21 of the way to an expected
        // undetected event for a 32-bit CRC: zero undetected expected.
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let mut ch = BscChannel::new(5e-3);
        let cfg = TrialConfig {
            payload_len: 200,
            trials: 2000,
            seed: 2,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert!(s.detected > 1000, "BER should corrupt most frames");
        assert_eq!(s.undetected, 0);
    }

    #[test]
    fn bursts_within_width_always_detected() {
        let codec = FrameCodec::new(catalog::CRC32_MEF);
        let mut ch = BurstChannel::new(32);
        let cfg = TrialConfig {
            payload_len: 150,
            trials: 3000,
            seed: 3,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert_eq!(s.clean, 0, "burst channel always corrupts");
        assert_eq!(s.undetected, 0, "bursts <= width are always detected");
    }

    #[test]
    fn crc8_undetected_rate_matches_weight_prediction() {
        // CRC-8/0x07 at a 2-byte payload: k=4 random flips go undetected
        // at rate W4 / C(24, 4). Compute the exact rate from the code
        // spectrum and compare with simulation.
        let g = crc_hd_spectrum_rate();
        let codec = FrameCodec::new(catalog::CRC8_SMBUS);
        let s = run_weighted_trials(&codec, 2, 4, 60_000, 11);
        let measured = s.undetected as f64 / s.total() as f64;
        // 3-sigma tolerance for 60k Bernoulli trials.
        let sigma = (g * (1.0 - g) / 60_000f64).sqrt();
        assert!(
            (measured - g).abs() < 4.0 * sigma + 1e-4,
            "measured {measured}, predicted {g}"
        );
    }

    /// Exact W4/C(24,4) for CRC-8/0x07 at 16 data bits via crc-hd.
    fn crc_hd_spectrum_rate() -> f64 {
        let g = crc_hd::GenPoly::from_normal(8, 0x07).unwrap();
        let spec = crc_hd::spectrum::spectrum(&g, 16).unwrap();
        let w4 = spec.count(4) as f64;
        let total = crc_hd::costmodel::error_patterns(24, 4) as f64;
        w4 / total
    }

    #[test]
    fn injected_codewords_are_never_detected() {
        for params in [
            catalog::CRC32_ISO_HDLC,
            catalog::CRC32_ISCSI,
            catalog::CRC32_MEF,
            catalog::CRC16_ARC,
            catalog::CRC16_XMODEM,
        ] {
            let codec = FrameCodec::new(params);
            let payload = vec![0x5Au8; 96];
            let clean = codec.encode(&payload);
            for seed in 0..10 {
                let pattern = undetectable_pattern(params, payload.len(), seed);
                let mut frame = clean.clone();
                inject_undetectable(&mut frame, &pattern);
                if frame == clean {
                    continue; // the random multiple was zero — no error
                }
                assert!(
                    codec.verify(&frame),
                    "{}: injected codeword was detected (weight analysis broken)",
                    params.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "pattern must match")]
    fn inject_length_mismatch_panics() {
        let mut frame = vec![0u8; 8];
        inject_undetectable(&mut frame, &[0u8; 4]);
    }
}
