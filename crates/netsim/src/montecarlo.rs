//! Monte-Carlo corruption experiments and directed error injection.
//!
//! Two complementary modes validate the weight analysis of `crc-hd`:
//!
//! * **Random trials** ([`run_trials`], [`run_weighted_trials`], or the
//!   underlying [`Simulator`]) measure detected/undetected rates under a
//!   channel model. Undetected events are astronomically rare for 32-bit
//!   CRCs (≈2⁻³² of corruptions), so statistical validation uses small
//!   widths where the rate is measurable (≈2⁻⁸ for CRC-8), exactly like
//!   the paper's 8/16-bit validation searches.
//! * **Directed injection** ([`inject_undetectable`]) XORs a *known
//!   codeword* (a multiple of the generator) onto a frame, demonstrating
//!   the blind spots the weight analysis predicts — without waiting 2³²
//!   trials for one to occur naturally.
//!
//! # The sharded engine
//!
//! [`Simulator`] partitions a run into fixed-size **shards** (default
//! [`Simulator::DEFAULT_SHARD_FRAMES`] frames). Shard `i` derives its
//! payload RNG and its [`Channel::fork`] seed from
//! [`shard_seed`]`(cfg.seed, i, stream)`, so the work inside a shard is a
//! pure function of the configuration. Worker threads claim shard indices
//! from an atomic counter and merge [`TrialStats`] with exact integer
//! sums — commutative, so the tally is **bit-identical for any thread
//! count**. Within a shard, frames are processed in bursts of
//! [`Simulator::DEFAULT_BATCH`]: payloads are filled and sealed in place
//! (no per-frame allocation), corrupted through
//! [`Channel::corrupt_batch`], and verified through
//! [`FrameCodec::verify_batch`] so the CLMUL engine sees contiguous work.

use crate::channel::{Channel, FixedWeightChannel};
use crate::frame::FrameCodec;
use crckit::CrcParams;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration for a Monte-Carlo run.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Payload length per frame, bytes.
    pub payload_len: usize,
    /// Number of frames to push through the channel.
    pub trials: u64,
    /// RNG seed (payloads and channel are derived deterministically).
    pub seed: u64,
}

/// Tally of a Monte-Carlo run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialStats {
    /// Frames the channel left untouched.
    pub clean: u64,
    /// Corrupted frames the CRC caught.
    pub detected: u64,
    /// Corrupted frames the CRC accepted — undetected errors.
    pub undetected: u64,
    /// Total bits flipped across all frames.
    pub bits_flipped: u64,
}

impl TrialStats {
    /// Total frames.
    pub fn total(&self) -> u64 {
        self.clean + self.detected + self.undetected
    }

    /// Frames the channel corrupted (detected or not).
    pub fn corrupted(&self) -> u64 {
        self.detected + self.undetected
    }

    /// Accumulates another tally into this one — exact integer sums, so
    /// merging is commutative and associative: shard results can be
    /// combined in any order with an identical outcome.
    pub fn merge(&mut self, other: &TrialStats) {
        self.clean += other.clean;
        self.detected += other.detected;
        self.undetected += other.undetected;
        self.bits_flipped += other.bits_flipped;
    }

    /// Folds one frame's outcome into the tally: `verdict` is `None` for
    /// an untouched frame, otherwise whether the corrupted frame still
    /// verified (an undetected error).
    pub(crate) fn tally_frame(&mut self, flips: u32, verdict: Option<bool>) {
        self.bits_flipped += flips as u64;
        match verdict {
            None => self.clean += 1,
            Some(true) => self.undetected += 1,
            Some(false) => self.detected += 1,
        }
    }

    /// Undetected fraction among corrupted frames (`None` if nothing was
    /// corrupted).
    pub fn undetected_rate(&self) -> Option<f64> {
        let corrupted = self.corrupted();
        if corrupted == 0 {
            None
        } else {
            Some(self.undetected as f64 / corrupted as f64)
        }
    }

    /// Wilson score interval for the undetected rate at critical value
    /// `z` (`None` if nothing was corrupted).
    ///
    /// Unlike the normal approximation, Wilson stays inside `[0, 1]` and
    /// gives a meaningful upper bound even when zero undetected events
    /// were observed — the usual situation for 32-bit CRCs, where the
    /// interesting number is "how small a rate have the trials excluded".
    pub fn undetected_wilson(&self, z: f64) -> Option<(f64, f64)> {
        let n = self.corrupted() as f64;
        if n == 0.0 {
            return None;
        }
        let p = self.undetected as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        // Pin the degenerate endpoints: algebraically the bound is exactly
        // 0 (or 1) there, but `center - half` leaves float residue.
        let lo = if self.undetected == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let hi = if self.undetected == self.corrupted() {
            1.0
        } else {
            (center + half).min(1.0)
        };
        Some((lo, hi))
    }

    /// The 95% Wilson interval ([`TrialStats::undetected_wilson`] at
    /// z = 1.96).
    pub fn undetected_ci95(&self) -> Option<(f64, f64)> {
        self.undetected_wilson(1.959_963_984_540_054)
    }
}

/// Derives the deterministic seed for one shard of a run.
///
/// `stream` separates independent random streams inside the same shard
/// (stream 0 drives payload generation, stream 1 the channel fork); the
/// SplitMix64 finalizer decorrelates the structured inputs. This function
/// is the whole seeding scheme: any shard of any CI run can be reproduced
/// locally from `(seed, shard, stream)` alone.
pub fn shard_seed(seed: u64, shard: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random stream index for payload generation within a shard.
pub(crate) const STREAM_PAYLOAD: u64 = 0;
/// Random stream index for the channel fork within a shard.
pub(crate) const STREAM_CHANNEL: u64 = 1;

/// The sharded, batch-driven trial engine.
///
/// ```
/// use netsim::channel::BscChannel;
/// use netsim::frame::FrameCodec;
/// use netsim::montecarlo::{Simulator, TrialConfig};
/// use crckit::catalog;
///
/// let codec = FrameCodec::new(catalog::CRC32_ISCSI);
/// let cfg = TrialConfig { payload_len: 256, trials: 4_000, seed: 7 };
/// let one = Simulator::new().threads(1).run(&codec, &BscChannel::new(1e-3), &cfg);
/// let four = Simulator::new().threads(4).run(&codec, &BscChannel::new(1e-3), &cfg);
/// assert_eq!(one, four); // same seed => identical stats, any thread count
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    threads: usize,
    batch: usize,
    shard_frames: u64,
}

impl Default for Simulator {
    fn default() -> Simulator {
        Simulator::new()
    }
}

impl Simulator {
    /// Frames per burst fed through `corrupt_batch`/`verify_batch`.
    pub const DEFAULT_BATCH: usize = 256;
    /// Frames per shard — the determinism unit. Small enough that modest
    /// runs still fan out across workers, large enough that per-shard
    /// setup (channel fork, RNG init) is noise.
    pub const DEFAULT_SHARD_FRAMES: u64 = 1024;

    /// A simulator with default sharding that uses every available core.
    pub fn new() -> Simulator {
        Simulator {
            threads: 0,
            batch: Self::DEFAULT_BATCH,
            shard_frames: Self::DEFAULT_SHARD_FRAMES,
        }
    }

    /// Sets the worker thread count (0 = one per available core).
    ///
    /// Thread count affects wall-clock only, never results: shards are
    /// claimed dynamically but their contents depend only on the seed.
    pub fn threads(mut self, threads: usize) -> Simulator {
        self.threads = threads;
        self
    }

    /// Sets the burst size (frames encoded/corrupted/verified together).
    ///
    /// Like [`Simulator::shard_frames`], this is part of the random-stream
    /// layout for channels whose `corrupt_batch` override spans frame
    /// boundaries (e.g. [`BscChannel`]): exact tallies are reproducible at
    /// equal `batch`; the distribution is identical at any `batch`.
    pub fn batch(mut self, batch: usize) -> Simulator {
        assert!(batch >= 1, "batch must be at least 1");
        self.batch = batch;
        self
    }

    /// Sets the shard size in frames.
    ///
    /// Changing this changes which RNG stream each frame draws from, so
    /// runs are only comparable bit-for-bit at equal `shard_frames`.
    pub fn shard_frames(mut self, shard_frames: u64) -> Simulator {
        assert!(shard_frames >= 1, "shard_frames must be at least 1");
        self.shard_frames = shard_frames;
        self
    }

    /// The resolved worker count for a run of `shards` shards.
    fn worker_count(&self, shards: u64) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.clamp(1, shards.max(1) as usize)
    }

    /// Shard-pool driver: claims shard indices from an atomic counter,
    /// runs `make_worker()`'s closure on each, and merges the partial
    /// tallies. `make_worker` is called once per worker so burst scratch
    /// buffers are reused across that worker's shards.
    pub(crate) fn run_sharded<S, G, F>(&self, trials: u64, make_worker: G) -> S
    where
        S: Default + Send + Merge,
        G: Fn() -> F + Sync,
        F: FnMut(u64, u64) -> S,
    {
        let shard_frames = self.shard_frames;
        let shards = trials.div_ceil(shard_frames);
        let shard_len = |shard: u64| shard_frames.min(trials - shard * shard_frames);
        let workers = self.worker_count(shards);
        if workers <= 1 {
            let mut acc = S::default();
            let mut work = make_worker();
            for shard in 0..shards {
                acc.merge_from(work(shard, shard_len(shard)));
            }
            return acc;
        }
        let next = AtomicU64::new(0);
        let partials: Vec<S> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local = S::default();
                        let mut work = make_worker();
                        loop {
                            let shard = next.fetch_add(1, Ordering::Relaxed);
                            if shard >= shards {
                                break;
                            }
                            local.merge_from(work(shard, shard_len(shard)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulator worker"))
                .collect()
        })
        .expect("simulator scope");
        let mut acc = S::default();
        for partial in partials {
            acc.merge_from(partial);
        }
        acc
    }

    /// Pushes random frames through forks of `channel`, tallying CRC
    /// verdicts. Deterministic for a given `(cfg, shard_frames)`
    /// regardless of `threads`. Exact tallies are also reproducible at
    /// equal `batch`; a channel whose `corrupt_batch` override carries a
    /// random stream across frame boundaries (e.g. [`BscChannel`]'s
    /// geometric skip) lays that stream out per burst, so a *different*
    /// batch size can regroup it — same distribution, different draws.
    ///
    /// For [`Channel::content_independent`] channels the engine runs the
    /// **delta path**: the burst is corrupted as all-zero delta frames
    /// first, frames the channel left untouched are tallied clean with no
    /// payload or CRC work at all, and only the corrupted minority is
    /// filled, sealed, composed with its delta and batch-verified. CRC
    /// linearity makes the verdict distribution identical to the eager
    /// encode→corrupt→verify path, which content-dependent channels
    /// still take.
    pub fn run(&self, codec: &FrameCodec, channel: &dyn Channel, cfg: &TrialConfig) -> TrialStats {
        let batch = self.batch;
        self.run_sharded(cfg.trials, || {
            let mut scratch = BurstScratch::new(batch);
            move |shard, count| {
                let mut rng =
                    rand::rngs::StdRng::seed_from_u64(shard_seed(cfg.seed, shard, STREAM_PAYLOAD));
                let mut ch = channel.fork(shard_seed(cfg.seed, shard, STREAM_CHANNEL));
                let mut stats = TrialStats::default();
                run_shard_bursts(
                    codec,
                    ch.as_mut(),
                    &mut rng,
                    count,
                    &mut scratch,
                    |_| (cfg.payload_len, 0),
                    |_, flips, verdict| stats.tally_frame(flips, verdict),
                );
                stats
            }
        })
    }

    /// Flips exactly `k` distinct random bit positions per frame and
    /// tallies verdicts: the empirical estimate of the paper's
    /// `Wₖ / C(n+r, k)` undetected fraction, on the sharded engine.
    pub fn run_weighted(
        &self,
        codec: &FrameCodec,
        payload_len: usize,
        k: u32,
        trials: u64,
        seed: u64,
    ) -> TrialStats {
        let channel = FixedWeightChannel::new(k);
        self.run(
            codec,
            &channel,
            &TrialConfig {
                payload_len,
                trials,
                seed,
            },
        )
    }
}

/// Reusable per-worker buffers for the burst loop.
pub(crate) struct BurstScratch {
    batch: usize,
    frames: Vec<Vec<u8>>,
    work: Vec<u8>,
    flips: Vec<u32>,
    tags: Vec<usize>,
}

impl BurstScratch {
    pub(crate) fn new(batch: usize) -> BurstScratch {
        BurstScratch {
            batch,
            frames: vec![Vec::new(); batch],
            work: Vec::new(),
            flips: Vec::new(),
            tags: vec![0; batch],
        }
    }
}

/// One shard's burst loop — the single home of the delta/eager burst
/// machinery, shared by [`Simulator::run`] and [`Simulator::run_mix`].
///
/// `frame_plan(rng)` fixes the next frame's payload length before
/// corruption, drawing any per-frame randomness (e.g. a traffic-mix
/// class) and returning `(payload_len, tag)`; the opaque `tag` is handed
/// back to `sink` so callers can tally per class without sharing a
/// buffer across the two closures. `sink(tag, flips, verdict)` is called
/// once per frame, with `verdict = None` for frames the channel left
/// untouched.
pub(crate) fn run_shard_bursts(
    codec: &FrameCodec,
    ch: &mut dyn Channel,
    rng: &mut rand::rngs::StdRng,
    count: u64,
    scratch: &mut BurstScratch,
    mut frame_plan: impl FnMut(&mut rand::rngs::StdRng) -> (usize, usize),
    mut sink: impl FnMut(usize, u32, Option<bool>),
) {
    let overhead = codec.overhead();
    let lazy = ch.content_independent();
    let BurstScratch {
        batch,
        frames,
        work,
        flips,
        tags,
    } = scratch;
    let mut left = count;
    while left > 0 {
        let burst = (*batch as u64).min(left) as usize;
        if lazy {
            // Delta path: frames are kept all-zero between bursts; the
            // channel writes its XOR delta onto them, so untouched
            // frames cost nothing.
            for (frame, tag) in frames[..burst].iter_mut().zip(tags.iter_mut()) {
                let (payload_len, t) = frame_plan(rng);
                *tag = t;
                // Growing re-zeroes exactly the truncated bytes, so the
                // all-zero invariant holds across length changes.
                frame.resize(payload_len + overhead, 0);
            }
            ch.corrupt_batch(&mut frames[..burst], flips);
            for (frame, &f) in frames[..burst].iter_mut().zip(flips.iter()) {
                if f == 0 {
                    continue;
                }
                // Compose a real frame under this delta: (payload ‖ FCS) ⊕ δ.
                work.clear();
                work.resize(frame.len() - overhead, 0);
                rng.fill(&mut work[..]);
                codec.seal(work);
                for (d, w) in frame.iter_mut().zip(work.iter()) {
                    *d ^= w;
                }
            }
        } else {
            for (frame, tag) in frames[..burst].iter_mut().zip(tags.iter_mut()) {
                let (payload_len, t) = frame_plan(rng);
                *tag = t;
                frame.clear();
                frame.resize(payload_len, 0);
                rng.fill(&mut frame[..]);
                codec.seal(frame);
            }
            ch.corrupt_batch(&mut frames[..burst], flips);
        }
        // Verify the corrupted subset in one contiguous batch.
        let corrupted: Vec<&[u8]> = frames[..burst]
            .iter()
            .zip(flips.iter())
            .filter(|(_, &f)| f > 0)
            .map(|(frame, _)| frame.as_slice())
            .collect();
        let verdicts = codec.verify_batch(&corrupted);
        let mut v = verdicts.iter();
        for (&tag, &f) in tags[..burst].iter().zip(flips.iter()) {
            let verdict = if f == 0 {
                None
            } else {
                Some(*v.next().expect("one verdict per corrupted frame"))
            };
            sink(tag, f, verdict);
        }
        if lazy {
            // Restore the all-zero invariant on dirty frames.
            for (frame, &f) in frames[..burst].iter_mut().zip(flips.iter()) {
                if f > 0 {
                    frame.iter_mut().for_each(|b| *b = 0);
                }
            }
        }
        left -= burst as u64;
    }
}

/// Mergeable partial results for the shard-pool driver.
pub(crate) trait Merge {
    /// Folds `other` into `self`; must be commutative and associative so
    /// shard completion order cannot affect the merged result.
    fn merge_from(&mut self, other: Self);
}

impl Merge for TrialStats {
    fn merge_from(&mut self, other: TrialStats) {
        self.merge(&other);
    }
}

/// Pushes random frames through a channel and tallies CRC verdicts.
///
/// Convenience wrapper over [`Simulator::run`] with default sharding and
/// all available cores; the channel argument is the fork prototype (its
/// current RNG state is ignored, as [`run_trials`] has always reseeded).
pub fn run_trials(codec: &FrameCodec, channel: &mut dyn Channel, cfg: &TrialConfig) -> TrialStats {
    Simulator::new().run(codec, &*channel, cfg)
}

/// Flips exactly `k` distinct random bit positions per frame and tallies
/// verdicts. Convenience wrapper over [`Simulator::run_weighted`].
pub fn run_weighted_trials(
    codec: &FrameCodec,
    payload_len: usize,
    k: u32,
    trials: u64,
    seed: u64,
) -> TrialStats {
    Simulator::new().run_weighted(codec, payload_len, k, trials, seed)
}

/// Builds an undetectable error pattern for `params` sized for
/// `payload_len`-byte frames: a random multiple of the generator,
/// byte-aligned for reflected or unreflected conventions.
///
/// The returned vector has frame length (`payload_len` + FCS bytes);
/// XORing it onto any valid frame yields another valid frame.
pub fn undetectable_pattern(params: CrcParams, payload_len: usize, seed: u64) -> Vec<u8> {
    // A codeword of the *pure* algorithm (init 0, no reflection, xorout 0)
    // is a multiple of G in MSB-first bit order. For reflected algorithms
    // the per-byte bit-reversal of a multiple is exactly an undetectable
    // delta for the reflected computation, so we build pure and reflect as
    // needed. init/xorout cancel in any XOR delta and need no handling.
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pure = CrcParams {
        name: "PURE",
        init: 0,
        refin: false,
        refout: false,
        xorout: 0,
        check: 0,
        ..params
    };
    let codec = FrameCodec::new(pure);
    let mut msg = vec![0u8; payload_len];
    rng.fill(&mut msg[..]);
    // Keep the pattern sparse-ish so tests exercise interesting weights.
    for b in msg.iter_mut() {
        if rng.gen::<f64>() < 0.9 {
            *b = 0;
        }
    }
    let mut pattern = codec.encode(&msg);
    if params.refin {
        for b in pattern.iter_mut() {
            *b = b.reverse_bits();
        }
    }
    pattern
}

/// XORs a known-undetectable pattern onto `frame`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn inject_undetectable(frame: &mut [u8], pattern: &[u8]) {
    assert_eq!(
        frame.len(),
        pattern.len(),
        "pattern must match frame length"
    );
    for (f, p) in frame.iter_mut().zip(pattern) {
        *f ^= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BscChannel, BurstChannel, GilbertElliottChannel};
    use crckit::catalog;

    #[test]
    fn zero_ber_all_clean() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mut ch = BscChannel::new(0.0);
        let cfg = TrialConfig {
            payload_len: 64,
            trials: 50,
            seed: 1,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert_eq!(s.clean, 50);
        assert_eq!(s.undetected_rate(), None);
        assert_eq!(s.undetected_ci95(), None);
    }

    #[test]
    fn crc32_catches_every_random_corruption() {
        // 2000 corrupted frames is ~2^-21 of the way to an expected
        // undetected event for a 32-bit CRC: zero undetected expected.
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let mut ch = BscChannel::new(5e-3);
        let cfg = TrialConfig {
            payload_len: 200,
            trials: 2000,
            seed: 2,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert!(s.detected > 1000, "BER should corrupt most frames");
        assert_eq!(s.undetected, 0);
    }

    #[test]
    fn bursts_within_width_always_detected() {
        let codec = FrameCodec::new(catalog::CRC32_MEF);
        let mut ch = BurstChannel::new(32);
        let cfg = TrialConfig {
            payload_len: 150,
            trials: 3000,
            seed: 3,
        };
        let s = run_trials(&codec, &mut ch, &cfg);
        assert_eq!(s.clean, 0, "burst channel always corrupts");
        assert_eq!(s.undetected, 0, "bursts <= width are always detected");
    }

    #[test]
    fn stats_are_identical_across_thread_counts() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let cfg = TrialConfig {
            payload_len: 300,
            trials: 5_000,
            seed: 0xDE7E_2717,
        };
        for channel in [
            &BscChannel::new(1e-3) as &dyn Channel,
            &BurstChannel::new(24),
            &GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2),
        ] {
            let one = Simulator::new().threads(1).run(&codec, channel, &cfg);
            let three = Simulator::new().threads(3).run(&codec, channel, &cfg);
            let eight = Simulator::new().threads(8).run(&codec, channel, &cfg);
            assert_eq!(one, three, "1-thread vs 3-thread divergence");
            assert_eq!(one, eight, "1-thread vs 8-thread divergence");
        }
    }

    #[test]
    fn stats_are_invariant_under_batch_size() {
        // For channels on the default per-frame corrupt_batch path (like
        // Gilbert–Elliott), batch size only groups work and must not
        // change the per-shard corruption sequence. (BscChannel's
        // cross-frame override is exempt: its gap stream is laid out per
        // burst, so it is reproducible at equal batch only.)
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let cfg = TrialConfig {
            payload_len: 128,
            trials: 3_000,
            seed: 99,
        };
        let ch = GilbertElliottChannel::new(1e-3, 1e-2, 0.0, 0.05);
        let small = Simulator::new().batch(7).run(&codec, &ch, &cfg);
        let large = Simulator::new().batch(512).run(&codec, &ch, &cfg);
        assert_eq!(small, large);
    }

    #[test]
    fn merge_is_exact() {
        let a = TrialStats {
            clean: 1,
            detected: 2,
            undetected: 3,
            bits_flipped: 10,
        };
        let mut m = TrialStats::default();
        m.merge(&a);
        m.merge(&a);
        assert_eq!(
            m,
            TrialStats {
                clean: 2,
                detected: 4,
                undetected: 6,
                bits_flipped: 20
            }
        );
        assert_eq!(m.total(), 12);
        assert_eq!(m.corrupted(), 10);
    }

    #[test]
    fn wilson_interval_brackets_the_rate() {
        let s = TrialStats {
            clean: 0,
            detected: 900,
            undetected: 100,
            bits_flipped: 0,
        };
        let (lo, hi) = s.undetected_ci95().unwrap();
        let p = s.undetected_rate().unwrap();
        assert!(lo < p && p < hi, "CI [{lo}, {hi}] must bracket {p}");
        assert!(lo > 0.08 && hi < 0.13, "CI [{lo}, {hi}] is too loose");
        // Zero observed events still give a meaningful upper bound.
        let none = TrialStats {
            clean: 0,
            detected: 10_000,
            undetected: 0,
            bits_flipped: 0,
        };
        let (lo0, hi0) = none.undetected_ci95().unwrap();
        assert_eq!(lo0, 0.0);
        assert!(hi0 > 0.0 && hi0 < 1e-3, "upper bound {hi0}");
    }

    #[test]
    fn shard_seed_separates_streams_and_shards() {
        assert_ne!(shard_seed(1, 0, 0), shard_seed(1, 0, 1));
        assert_ne!(shard_seed(1, 0, 0), shard_seed(1, 1, 0));
        assert_ne!(shard_seed(1, 0, 0), shard_seed(2, 0, 0));
        assert_eq!(shard_seed(7, 3, 1), shard_seed(7, 3, 1));
    }

    #[test]
    fn crc8_undetected_rate_matches_weight_prediction() {
        // CRC-8/0x07 at a 2-byte payload: k=4 random flips go undetected
        // at rate W4 / C(24, 4). Compute the exact rate from the code
        // spectrum and compare with simulation.
        let g = crc_hd_spectrum_rate();
        let codec = FrameCodec::new(catalog::CRC8_SMBUS);
        let s = run_weighted_trials(&codec, 2, 4, 60_000, 11);
        let measured = s.undetected_rate().unwrap_or(0.0);
        assert_eq!(s.corrupted(), s.total(), "every weighted frame corrupts");
        // 3-sigma tolerance for 60k Bernoulli trials.
        let sigma = (g * (1.0 - g) / 60_000f64).sqrt();
        assert!(
            (measured - g).abs() < 4.0 * sigma + 1e-4,
            "measured {measured}, predicted {g}"
        );
        // The Wilson interval agrees with the point estimate's story.
        let (lo, hi) = s.undetected_ci95().unwrap();
        assert!(lo <= g + 4.0 * sigma && g - 4.0 * sigma <= hi);
    }

    /// Exact W4/C(24,4) for CRC-8/0x07 at 16 data bits via crc-hd.
    fn crc_hd_spectrum_rate() -> f64 {
        let g = crc_hd::GenPoly::from_normal(8, 0x07).unwrap();
        let spec = crc_hd::spectrum::spectrum(&g, 16).unwrap();
        let w4 = spec.count(4) as f64;
        let total = crc_hd::costmodel::error_patterns(24, 4) as f64;
        w4 / total
    }

    #[test]
    fn injected_codewords_are_never_detected() {
        for params in [
            catalog::CRC32_ISO_HDLC,
            catalog::CRC32_ISCSI,
            catalog::CRC32_MEF,
            catalog::CRC16_ARC,
            catalog::CRC16_XMODEM,
        ] {
            let codec = FrameCodec::new(params);
            let payload = vec![0x5Au8; 96];
            let clean = codec.encode(&payload);
            for seed in 0..10 {
                let pattern = undetectable_pattern(params, payload.len(), seed);
                let mut frame = clean.clone();
                inject_undetectable(&mut frame, &pattern);
                if frame == clean {
                    continue; // the random multiple was zero — no error
                }
                assert!(
                    codec.verify(&frame),
                    "{}: injected codeword was detected (weight analysis broken)",
                    params.name
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "pattern must match")]
    fn inject_length_mismatch_panics() {
        let mut frame = vec![0u8; 8];
        inject_undetectable(&mut frame, &[0u8; 4]);
    }
}
