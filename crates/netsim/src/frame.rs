//! Framing: payload + FCS codecs and an iSCSI-like PDU with separate
//! header and data digests.

use crckit::{catalog, fcs, Crc, CrcParams, EngineKind};

/// A payload ↔ framed-codeword codec over one CRC algorithm.
///
/// The codec rides whatever engine tier [`Crc::new`] selects — CLMUL
/// folding on capable hardware — so per-frame digest work in Monte-Carlo
/// corruption runs no longer pays software-slicing cost.
#[derive(Debug, Clone)]
pub struct FrameCodec {
    crc: Crc,
}

impl FrameCodec {
    /// Builds a codec for the given algorithm on the fastest engine tier
    /// the host supports.
    pub fn new(params: CrcParams) -> FrameCodec {
        FrameCodec {
            crc: Crc::new(params),
        }
    }

    /// Builds a codec pinned to a specific engine tier (e.g. the
    /// tableless [`EngineKind::Chorba`] when the surrounding workload
    /// needs the cache the slicing tables would occupy).
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail validation, like [`Crc::new`].
    pub fn with_engine(params: CrcParams, kind: EngineKind) -> FrameCodec {
        FrameCodec {
            crc: Crc::try_with_engine(params, kind).expect("invalid CRC parameters"),
        }
    }

    /// The underlying engine.
    pub fn crc(&self) -> &Crc {
        &self.crc
    }

    /// The engine tier frames are digested on.
    pub fn engine(&self) -> EngineKind {
        self.crc.engine()
    }

    /// Frames a payload (appends the FCS).
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        fcs::append(&self.crc, payload)
    }

    /// Seals a payload already sitting in `frame` by appending its FCS in
    /// place — the allocation-free encode the batch engine uses when
    /// reusing frame buffers across bursts.
    ///
    /// ```
    /// use netsim::frame::FrameCodec;
    /// use crckit::catalog;
    /// let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
    /// let mut frame = b"hello ethernet".to_vec();
    /// codec.seal(&mut frame);
    /// assert_eq!(frame, codec.encode(b"hello ethernet"));
    /// ```
    pub fn seal(&self, frame: &mut Vec<u8>) {
        fcs::append_in_place(&self.crc, frame);
    }

    /// Verifies a received frame; `true` means the FCS matches.
    ///
    /// Length errors fail closed: a frame shorter than the FCS itself is
    /// rejected outright, and a cut or extended frame (as produced by
    /// `netsim`'s truncation and bit-stuffing slip channels) simply has
    /// its last bytes reinterpreted as the FCS, which then fails to match
    /// except with the usual 2⁻ʳ false-accept probability.
    pub fn verify(&self, frame: &[u8]) -> bool {
        fcs::verify(&self.crc, frame).unwrap_or(false)
    }

    /// Verifies a burst of received frames (the receive-queue shape of a
    /// packet loop); equivalent to mapping [`FrameCodec::verify`].
    pub fn verify_batch(&self, frames: &[&[u8]]) -> Vec<bool> {
        frames.iter().map(|frame| self.verify(frame)).collect()
    }

    /// Overhead added per frame, in bytes.
    pub fn overhead(&self) -> usize {
        fcs::fcs_len(&self.crc)
    }
}

/// An iSCSI-like PDU: a fixed-size header segment and a variable data
/// segment, each protected by its own digest — the structure the iSCSI
/// drafts debated when \[Sheinwald00\] recommended Castagnoli's polynomial,
/// and where the paper's 0xBA0DC66B offers HD=6 across full-MTU bursts.
#[derive(Debug, Clone)]
pub struct IscsiPdu {
    codec: FrameCodec,
    header_len: usize,
}

/// Result of receiving an [`IscsiPdu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PduVerdict {
    /// Header digest matched.
    pub header_ok: bool,
    /// Data digest matched.
    pub data_ok: bool,
}

impl IscsiPdu {
    /// iSCSI's Basic Header Segment length in bytes.
    pub const BHS_LEN: usize = 48;

    /// Builds a PDU codec with the standard 48-byte header segment.
    pub fn new(params: CrcParams) -> IscsiPdu {
        IscsiPdu {
            codec: FrameCodec::new(params),
            header_len: Self::BHS_LEN,
        }
    }

    /// Builds the draft-standard variant: CRC-32C digests, as adopted by
    /// RFC 3720 following \[Sheinwald00\].
    pub fn crc32c() -> IscsiPdu {
        IscsiPdu::new(catalog::CRC32_ISCSI)
    }

    /// Builds the paper's proposed variant using 0xBA0DC66B
    /// (CRC-32/MEF conventions).
    pub fn koopman() -> IscsiPdu {
        IscsiPdu::new(catalog::CRC32_MEF)
    }

    /// Serializes `header` (padded/truncated to 48 bytes) and `data` into
    /// a wire PDU: `header ‖ header-digest ‖ data ‖ data-digest`.
    pub fn encode(&self, header: &[u8], data: &[u8]) -> Vec<u8> {
        let mut hdr = header.to_vec();
        hdr.resize(self.header_len, 0);
        let mut out = self.codec.encode(&hdr);
        out.extend_from_slice(&self.codec.encode(data));
        out
    }

    /// Splits and verifies a wire PDU; `None` if it is too short to parse.
    pub fn verify(&self, wire: &[u8]) -> Option<PduVerdict> {
        let hdr_total = self.header_len + self.codec.overhead();
        if wire.len() < hdr_total + self.codec.overhead() {
            return None;
        }
        let (hdr, data) = wire.split_at(hdr_total);
        Some(PduVerdict {
            header_ok: self.codec.verify(hdr),
            data_ok: self.codec.verify(data),
        })
    }

    /// Total wire overhead (header padding excluded): two digests.
    pub fn digest_overhead(&self) -> usize {
        2 * self.codec.overhead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let frame = codec.encode(b"hello ethernet");
        assert_eq!(frame.len(), 14 + 4);
        assert!(codec.verify(&frame));
        assert_eq!(codec.overhead(), 4);
    }

    #[test]
    fn batch_verify_matches_individual() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mut frames: Vec<Vec<u8>> = (0..8usize)
            .map(|i| codec.encode(&vec![i as u8; 64 + i * 100]))
            .collect();
        frames[3][10] ^= 0x01; // corrupt one
        frames[6][0] ^= 0x80; // and another
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let verdicts = codec.verify_batch(&refs);
        for (i, (frame, got)) in refs.iter().zip(&verdicts).enumerate() {
            assert_eq!(*got, codec.verify(frame), "frame {i}");
        }
        assert_eq!(verdicts.iter().filter(|&&ok| !ok).count(), 2);
    }

    #[test]
    fn pinned_engine_codec_round_trips() {
        for kind in [crckit::EngineKind::Chorba, crckit::EngineKind::Clmul] {
            let codec = FrameCodec::with_engine(catalog::CRC32_ISCSI, kind);
            assert_eq!(codec.engine(), kind);
            let frame = codec.encode(&vec![0x5A; 2000]);
            assert!(codec.verify(&frame));
        }
    }

    #[test]
    fn codec_rejects_corruption_and_length_errors() {
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let mut frame = codec.encode(b"data integrity matters");
        frame[3] ^= 0x40;
        assert!(!codec.verify(&frame));
        assert!(!codec.verify(&frame[..2]), "short frames fail closed");
        let clean = codec.encode(b"data integrity matters");
        assert!(!codec.verify(&clean[..clean.len() - 1]), "cut frames fail");
        let mut extended = clean.clone();
        extended.push(0xA5);
        assert!(!codec.verify(&extended), "extended frames fail");
    }

    #[test]
    fn pdu_round_trip_both_variants() {
        for pdu in [IscsiPdu::crc32c(), IscsiPdu::koopman()] {
            let wire = pdu.encode(b"\x01\x23opcode-ish", &vec![0xA5u8; 1024]);
            assert_eq!(
                wire.len(),
                IscsiPdu::BHS_LEN + 4 + 1024 + 4,
                "48B BHS + digest + data + digest"
            );
            let v = pdu.verify(&wire).expect("parseable");
            assert!(v.header_ok && v.data_ok);
        }
    }

    #[test]
    fn pdu_digests_are_independent() {
        let pdu = IscsiPdu::crc32c();
        let mut wire = pdu.encode(b"hdr", b"payload payload");
        // Corrupt one data byte: header digest must still pass.
        let n = wire.len();
        wire[n - 6] ^= 0xFF;
        let v = pdu.verify(&wire).unwrap();
        assert!(v.header_ok);
        assert!(!v.data_ok);
        // Corrupt the header: data digest unaffected.
        let mut wire2 = pdu.encode(b"hdr", b"payload payload");
        wire2[0] ^= 1;
        let v2 = pdu.verify(&wire2).unwrap();
        assert!(!v2.header_ok);
        assert!(v2.data_ok);
    }

    #[test]
    fn pdu_too_short_is_none() {
        let pdu = IscsiPdu::crc32c();
        assert_eq!(pdu.verify(&[0u8; 10]), None);
    }
}
