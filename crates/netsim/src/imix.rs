//! Internet-mix (IMIX) traffic workloads.
//!
//! The paper grounds its evaluation in the two most frequent Internet
//! message sizes — 40-byte acknowledgments and 576-byte data packets —
//! plus full-MTU frames (§3, Figure 1's marked lengths). This module
//! models that mix explicitly so experiments can report error-detection
//! behavior per packet class instead of a single frame size.
//!
//! Mixed-traffic runs ride the same sharded engine as fixed-size trials:
//! [`Simulator::run_mix`] partitions the run into shards, draws classes
//! and payloads from per-shard RNG streams, and merges per-class tallies
//! with exact sums — deterministic for any worker thread count.

use crate::channel::Channel;
use crate::frame::FrameCodec;
use crate::montecarlo::{Merge, Simulator, TrialStats};
use rand::Rng;

/// One packet class in a traffic mix: payload size and relative weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketClass {
    /// Payload length in bytes (before the FCS).
    pub payload_len: usize,
    /// Relative frequency weight (need not be normalized).
    pub weight: u32,
    /// Human-readable label.
    pub label: &'static str,
}

/// A weighted mix of packet classes.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    classes: Vec<PacketClass>,
    total_weight: u32,
}

impl TrafficMix {
    /// Builds a mix from classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or all weights are zero.
    pub fn new(classes: Vec<PacketClass>) -> TrafficMix {
        assert!(!classes.is_empty(), "mix needs at least one class");
        let total_weight = classes.iter().map(|c| c.weight).sum();
        assert!(total_weight > 0, "mix needs positive total weight");
        TrafficMix {
            classes,
            total_weight,
        }
    }

    /// The classic "simple IMIX": 40-byte, 576-byte and 1500-byte packets
    /// in 7:4:1 proportion — matching the paper's observation that 40-byte
    /// acks and 512+40-byte data packets dominate Internet traffic.
    pub fn simple_imix() -> TrafficMix {
        TrafficMix::new(vec![
            PacketClass {
                payload_len: 40,
                weight: 7,
                label: "40B ack",
            },
            PacketClass {
                payload_len: 576,
                weight: 4,
                label: "576B data",
            },
            PacketClass {
                payload_len: 1500,
                weight: 1,
                label: "1500B MTU",
            },
        ])
    }

    /// The packet classes.
    pub fn classes(&self) -> &[PacketClass] {
        &self.classes
    }

    /// Draws a class index according to the weights.
    fn draw(&self, rng: &mut impl Rng) -> usize {
        let mut ticket = rng.gen_range(0..self.total_weight);
        for (i, c) in self.classes.iter().enumerate() {
            if ticket < c.weight {
                return i;
            }
            ticket -= c.weight;
        }
        self.classes.len() - 1
    }
}

/// Per-class tallies from a mixed-traffic run.
#[derive(Debug, Clone, Default)]
pub struct MixStats {
    /// One tally per packet class, in mix order.
    pub per_class: Vec<(PacketClass, TrialStats)>,
}

impl MixStats {
    /// Aggregate tally across all classes.
    pub fn total(&self) -> TrialStats {
        let mut out = TrialStats::default();
        for (_, s) in &self.per_class {
            out.merge(s);
        }
        out
    }

    /// Accumulates another per-class tally (from another shard of the
    /// same mix) into this one. An empty `MixStats` (the [`Default`])
    /// merges as the identity.
    ///
    /// # Panics
    ///
    /// Panics if both sides are non-empty with different class lists.
    pub fn merge(&mut self, other: &MixStats) {
        if self.per_class.is_empty() {
            self.per_class = other.per_class.clone();
            return;
        }
        if other.per_class.is_empty() {
            return;
        }
        assert_eq!(
            self.per_class.len(),
            other.per_class.len(),
            "cannot merge tallies of different mixes"
        );
        for ((class, stats), (other_class, other_stats)) in
            self.per_class.iter_mut().zip(&other.per_class)
        {
            assert_eq!(
                class, other_class,
                "cannot merge tallies of different mixes"
            );
            stats.merge(other_stats);
        }
    }
}

impl Merge for MixStats {
    fn merge_from(&mut self, other: MixStats) {
        self.merge(&other);
    }
}

impl Simulator {
    /// Pushes mixed-size frames through forks of `channel`, tallying per
    /// class — the sharded, batch-driven form of [`run_mix`], which also
    /// honors [`Simulator::pipelined`] mode.
    pub fn run_mix(
        &self,
        codec: &FrameCodec,
        channel: &dyn Channel,
        mix: &TrafficMix,
        trials: u64,
        seed: u64,
    ) -> MixStats {
        #[cfg(debug_assertions)]
        {
            let longest = mix.classes.iter().map(|c| c.payload_len).max().unwrap_or(0);
            crate::montecarlo::assert_content_flag(channel, seed, longest + codec.overhead());
        }
        // The class index rides the engine's frame tag, so the plan and
        // sink closures need no shared buffer.
        let stats: MixStats = self.run_engine(
            codec,
            channel,
            seed,
            trials,
            || {
                |rng: &mut rand::rngs::StdRng| {
                    let class = mix.draw(rng);
                    (mix.classes[class].payload_len, class)
                }
            },
            |s: &mut MixStats, class, flips, verdict| {
                if s.per_class.is_empty() {
                    s.per_class = mix
                        .classes
                        .iter()
                        .map(|&c| (c, TrialStats::default()))
                        .collect();
                }
                s.per_class[class].1.tally_frame(flips, verdict);
            },
        );
        // A zero-trial run never reached the sink: report empty classes.
        if stats.per_class.is_empty() {
            return MixStats {
                per_class: mix
                    .classes
                    .iter()
                    .map(|&c| (c, TrialStats::default()))
                    .collect(),
            };
        }
        stats
    }
}

/// Pushes `trials` mixed-size frames through a channel, tallying per
/// class. Convenience wrapper over [`Simulator::run_mix`] with default
/// sharding and all available cores; like [`crate::run_trials`], the
/// channel argument is only the fork prototype — its current RNG state
/// is ignored and left untouched.
pub fn run_mix(
    codec: &FrameCodec,
    channel: &mut dyn Channel,
    mix: &TrafficMix,
    trials: u64,
    seed: u64,
) -> MixStats {
    Simulator::new().run_mix(codec, &*channel, mix, trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BscChannel, GilbertElliottChannel};
    use crckit::catalog;
    use rand::SeedableRng;

    #[test]
    fn simple_imix_shape() {
        let mix = TrafficMix::simple_imix();
        assert_eq!(mix.classes().len(), 3);
        assert_eq!(mix.total_weight, 12);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_panics() {
        let _ = TrafficMix::new(vec![]);
    }

    #[test]
    fn draw_respects_weights() {
        let mix = TrafficMix::simple_imix();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..12_000 {
            counts[mix.draw(&mut rng)] += 1;
        }
        // Expect roughly 7000 / 4000 / 1000.
        assert!((6500..7500).contains(&counts[0]), "{counts:?}");
        assert!((3500..4500).contains(&counts[1]), "{counts:?}");
        assert!((700..1300).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn mixed_run_tallies_and_detects() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mut ch = BscChannel::new(1e-3);
        let mix = TrafficMix::simple_imix();
        let stats = run_mix(&codec, &mut ch, &mix, 6_000, 77);
        let total = stats.total();
        assert_eq!(total.total(), 6_000);
        assert_eq!(total.undetected, 0);
        // Larger frames are corrupted more often.
        let rate = |s: &TrialStats| s.detected as f64 / s.total().max(1) as f64;
        let ack = rate(&stats.per_class[0].1);
        let mtu = rate(&stats.per_class[2].1);
        assert!(
            mtu > ack,
            "MTU frames must see more corruption ({mtu} vs {ack})"
        );
    }

    #[test]
    fn mix_stats_are_identical_across_thread_counts() {
        let codec = FrameCodec::new(catalog::CRC32_ISCSI);
        let mix = TrafficMix::simple_imix();
        let ch = GilbertElliottChannel::new(1e-4, 1e-2, 1e-7, 1e-2);
        let one = Simulator::new()
            .threads(1)
            .run_mix(&codec, &ch, &mix, 4_000, 5);
        let four = Simulator::new()
            .threads(4)
            .run_mix(&codec, &ch, &mix, 4_000, 5);
        assert_eq!(one.per_class.len(), four.per_class.len());
        for ((ca, sa), (cb, sb)) in one.per_class.iter().zip(&four.per_class) {
            assert_eq!(ca, cb);
            assert_eq!(sa, sb, "per-class divergence for {}", ca.label);
        }
    }

    #[test]
    fn mix_merge_identity_and_sums() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mix = TrafficMix::simple_imix();
        let ch = BscChannel::new(1e-3);
        let sim = Simulator::new().threads(1);
        let run = sim.run_mix(&codec, &ch, &mix, 2_000, 9);
        let mut acc = MixStats::default();
        acc.merge(&run);
        acc.merge(&run);
        assert_eq!(acc.total().total(), 2 * run.total().total());
    }
}
