//! Internet-mix (IMIX) traffic workloads.
//!
//! The paper grounds its evaluation in the two most frequent Internet
//! message sizes — 40-byte acknowledgments and 576-byte data packets —
//! plus full-MTU frames (§3, Figure 1's marked lengths). This module
//! models that mix explicitly so experiments can report error-detection
//! behavior per packet class instead of a single frame size.

use crate::channel::Channel;
use crate::frame::FrameCodec;
use crate::montecarlo::TrialStats;
use rand::{Rng, SeedableRng};

/// One packet class in a traffic mix: payload size and relative weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketClass {
    /// Payload length in bytes (before the FCS).
    pub payload_len: usize,
    /// Relative frequency weight (need not be normalized).
    pub weight: u32,
    /// Human-readable label.
    pub label: &'static str,
}

/// A weighted mix of packet classes.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    classes: Vec<PacketClass>,
    total_weight: u32,
}

impl TrafficMix {
    /// Builds a mix from classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or all weights are zero.
    pub fn new(classes: Vec<PacketClass>) -> TrafficMix {
        assert!(!classes.is_empty(), "mix needs at least one class");
        let total_weight = classes.iter().map(|c| c.weight).sum();
        assert!(total_weight > 0, "mix needs positive total weight");
        TrafficMix {
            classes,
            total_weight,
        }
    }

    /// The classic "simple IMIX": 40-byte, 576-byte and 1500-byte packets
    /// in 7:4:1 proportion — matching the paper's observation that 40-byte
    /// acks and 512+40-byte data packets dominate Internet traffic.
    pub fn simple_imix() -> TrafficMix {
        TrafficMix::new(vec![
            PacketClass {
                payload_len: 40,
                weight: 7,
                label: "40B ack",
            },
            PacketClass {
                payload_len: 576,
                weight: 4,
                label: "576B data",
            },
            PacketClass {
                payload_len: 1500,
                weight: 1,
                label: "1500B MTU",
            },
        ])
    }

    /// The packet classes.
    pub fn classes(&self) -> &[PacketClass] {
        &self.classes
    }

    /// Draws a class index according to the weights.
    fn draw(&self, rng: &mut impl Rng) -> usize {
        let mut ticket = rng.gen_range(0..self.total_weight);
        for (i, c) in self.classes.iter().enumerate() {
            if ticket < c.weight {
                return i;
            }
            ticket -= c.weight;
        }
        self.classes.len() - 1
    }
}

/// Per-class tallies from a mixed-traffic run.
#[derive(Debug, Clone)]
pub struct MixStats {
    /// One tally per packet class, in mix order.
    pub per_class: Vec<(PacketClass, TrialStats)>,
}

impl MixStats {
    /// Aggregate tally across all classes.
    pub fn total(&self) -> TrialStats {
        let mut out = TrialStats::default();
        for (_, s) in &self.per_class {
            out.clean += s.clean;
            out.detected += s.detected;
            out.undetected += s.undetected;
            out.bits_flipped += s.bits_flipped;
        }
        out
    }
}

/// Pushes `trials` mixed-size frames through a channel, tallying per class.
pub fn run_mix(
    codec: &FrameCodec,
    channel: &mut dyn Channel,
    mix: &TrafficMix,
    trials: u64,
    seed: u64,
) -> MixStats {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    channel.reseed(seed ^ 0x1313_5717_1923_2931);
    let mut per_class: Vec<(PacketClass, TrialStats)> = mix
        .classes
        .iter()
        .map(|&c| (c, TrialStats::default()))
        .collect();
    let max_len = mix.classes.iter().map(|c| c.payload_len).max().unwrap_or(0);
    let mut payload = vec![0u8; max_len];
    for _ in 0..trials {
        let idx = mix.draw(&mut rng);
        let len = per_class[idx].0.payload_len;
        rng.fill(&mut payload[..len]);
        let mut frame = codec.encode(&payload[..len]);
        let flips = channel.corrupt(&mut frame);
        let stats = &mut per_class[idx].1;
        stats.bits_flipped += flips as u64;
        if flips == 0 {
            stats.clean += 1;
        } else if codec.verify(&frame) {
            stats.undetected += 1;
        } else {
            stats.detected += 1;
        }
    }
    MixStats { per_class }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::BscChannel;
    use crckit::catalog;

    #[test]
    fn simple_imix_shape() {
        let mix = TrafficMix::simple_imix();
        assert_eq!(mix.classes().len(), 3);
        assert_eq!(mix.total_weight, 12);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_panics() {
        let _ = TrafficMix::new(vec![]);
    }

    #[test]
    fn draw_respects_weights() {
        let mix = TrafficMix::simple_imix();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        for _ in 0..12_000 {
            counts[mix.draw(&mut rng)] += 1;
        }
        // Expect roughly 7000 / 4000 / 1000.
        assert!((6500..7500).contains(&counts[0]), "{counts:?}");
        assert!((3500..4500).contains(&counts[1]), "{counts:?}");
        assert!((700..1300).contains(&counts[2]), "{counts:?}");
    }

    #[test]
    fn mixed_run_tallies_and_detects() {
        let codec = FrameCodec::new(catalog::CRC32_ISO_HDLC);
        let mut ch = BscChannel::new(1e-3);
        let mix = TrafficMix::simple_imix();
        let stats = run_mix(&codec, &mut ch, &mix, 6_000, 77);
        let total = stats.total();
        assert_eq!(total.clean + total.detected + total.undetected, 6_000);
        assert_eq!(total.undetected, 0);
        // Larger frames are corrupted more often.
        let rate = |s: &TrialStats| {
            s.detected as f64 / (s.clean + s.detected + s.undetected).max(1) as f64
        };
        let ack = rate(&stats.per_class[0].1);
        let mtu = rate(&stats.per_class[2].1);
        assert!(
            mtu > ack,
            "MTU frames must see more corruption ({mtu} vs {ack})"
        );
    }
}
