//! Channel and framing simulation for CRC error-detection experiments.
//!
//! The paper's context is Internet data integrity: Ethernet frames, iSCSI
//! PDUs, and Stone & Partridge's observation that corrupted packets reach
//! the CRC far more often than raw bit error rates suggest (§4.4). This
//! crate provides that context as an executable substrate:
//!
//! * [`channel`] — bit-error models: the memoryless binary symmetric
//!   channel, fixed-span burst errors, a two-state Gilbert–Elliott model
//!   for bursty Internet-like links, and a fixed-weight directed-error
//!   channel — plus a **content-dependent suite** (a sync-byte
//!   [`JammerChannel`], HDLC bit-stuffing slips in [`StuffingChannel`],
//!   and [`TruncationChannel`] length errors) whose corruption inspects
//!   frame bytes or changes frame length. All are batch-first
//!   ([`Channel::corrupt_batch`]) and forkable ([`Channel::fork`]) for
//!   the sharded engine.
//! * [`frame`] — Ethernet-like framing and iSCSI-like PDUs (separate
//!   header and data digests) over any `crckit` algorithm, with in-place
//!   sealing and batch verification feeding the CLMUL engine contiguous
//!   work.
//! * [`montecarlo`] — the sharded, batch-driven [`Simulator`] measuring
//!   detected/undetected corruption rates (with Wilson confidence
//!   intervals), plus directed injection of known-undetectable patterns
//!   (multiples of the generator) to exercise the blind spots the paper's
//!   weight analysis predicts.
//! * [`imix`] — mixed-size Internet traffic workloads on the same engine.
//!
//! # The sharded architecture
//!
//! A run of `trials` frames is split into fixed-size shards (default
//! [`Simulator::DEFAULT_SHARD_FRAMES`] = 1024 frames; the tail shard may
//! be short). Worker threads — one per core by default — claim shard
//! indices from an atomic counter, so scheduling is dynamic, but the
//! *work* inside shard `i` is a pure function of the configuration:
//!
//! * the payload RNG is seeded with [`montecarlo::shard_seed`]
//!   `(cfg.seed, i, 0)`;
//! * the channel is [`Channel::fork`]ed with `shard_seed(cfg.seed, i, 1)`,
//!   which resets all channel state (RNG *and* e.g. the Gilbert–Elliott
//!   Markov state);
//! * tallies merge by exact integer sums ([`TrialStats::merge`]),
//!   commutative and associative.
//!
//! Same seed ⇒ bit-identical [`TrialStats`] at 1 thread or 64. Within a
//! shard, frames are processed in bursts of [`Simulator::DEFAULT_BATCH`]
//! (256): payloads are filled and sealed in place in reused buffers
//! ([`FrameCodec::seal`]), corrupted in one [`Channel::corrupt_batch`]
//! call (the BSC carries its geometric skip across frame boundaries —
//! exact for a memoryless channel and far fewer RNG draws at low BER),
//! and the corrupted subset is verified in one
//! [`FrameCodec::verify_batch`] call.
//!
//! # The two-stage pipeline, and when eager vs delta applies
//!
//! Every burst passes through a **produce** stage (plan frame lengths,
//! prepare buffers, run the channel — RNG-bound) and a **consume** stage
//! (compose payloads, batch-verify, tally — CRC-bound). The two stages
//! draw from disjoint [`montecarlo::shard_seed`] streams
//! ([`montecarlo::STREAM_PLAN`], [`montecarlo::STREAM_CHANNEL`],
//! [`montecarlo::STREAM_FILL`]), so [`Simulator::pipelined`] mode can
//! pair worker threads into producer/consumer lanes with bursts
//! double-buffered between them — channel randomness for shard `k+1`
//! overlaps CRC verification of shard `k` — while tallying
//! **bit-identically** to sharded mode at any thread count.
//!
//! Which stage fills payloads depends on the channel:
//!
//! * [`Channel::content_independent`] channels ride the **delta path**:
//!   produce corrupts all-zero frames, and consume fills/seals/composes
//!   only the corrupted minority (CRC linearity keeps verdicts exact), so
//!   clean frames cost no payload or CRC work at all.
//! * Content-dependent channels ([`JammerChannel`], [`StuffingChannel`],
//!   [`TruncationChannel`]) take the **eager path**: produce fills and
//!   seals real frames before the channel sees them, because their
//!   corruption keys on frame bytes or changes the frame length — which
//!   no XOR delta can express. Debug builds probe channels claiming
//!   content independence and panic on a mis-flagged one.
//!
//! # Reproducing a CI simulation run locally
//!
//! CI's `sim-determinism` job runs
//! `cargo run --release -p crc-experiments --bin sim_determinism -- --threads T --mode M --out out.json`
//! at `T = 1` and `T = 4` in both `sharded` and `pipelined` mode and
//! requires all four JSON files byte-identical. To reproduce any of its
//! scenarios, build the same `Simulator` (the defaults —
//! `DEFAULT_SHARD_FRAMES` and any thread count or mode — match CI) with
//! the seed printed in the JSON; per-shard streams derive from
//! [`montecarlo::shard_seed`] as described above, so even a single shard
//! can be replayed in isolation.
//!
//! # Quick start
//!
//! ```
//! use netsim::channel::BscChannel;
//! use netsim::frame::FrameCodec;
//! use netsim::montecarlo::{Simulator, TrialConfig};
//! use crckit::catalog;
//!
//! let codec = FrameCodec::new(catalog::CRC32_ISCSI);
//! let stats = Simulator::new().run(
//!     &codec,
//!     &BscChannel::new(1e-3),
//!     &TrialConfig { payload_len: 256, trials: 200, seed: 7 },
//! );
//! assert_eq!(stats.total(), 200);
//! // At this BER every corrupted frame is caught (HD >= 4 territory).
//! assert_eq!(stats.undetected, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod imix;
pub mod montecarlo;

pub use channel::{
    BscChannel, BurstChannel, Channel, FixedWeightChannel, GilbertElliottChannel, JammerChannel,
    StuffingChannel, TruncationChannel,
};
pub use frame::FrameCodec;
pub use montecarlo::{run_trials, Simulator, TrialConfig, TrialStats};
