//! Channel and framing simulation for CRC error-detection experiments.
//!
//! The paper's context is Internet data integrity: Ethernet frames, iSCSI
//! PDUs, and Stone & Partridge's observation that corrupted packets reach
//! the CRC far more often than raw bit error rates suggest (§4.4). This
//! crate provides that context as an executable substrate:
//!
//! * [`channel`] — bit-error models: the memoryless binary symmetric
//!   channel, fixed-span burst errors, and a two-state Gilbert–Elliott
//!   model for bursty Internet-like links.
//! * [`frame`] — Ethernet-like framing and iSCSI-like PDUs (separate
//!   header and data digests) over any `crckit` algorithm.
//! * [`montecarlo`] — trial harnesses measuring detected/undetected
//!   corruption rates, with directed injection of known-undetectable
//!   patterns (multiples of the generator) to exercise the blind spots
//!   the paper's weight analysis predicts.
//!
//! # Quick start
//!
//! ```
//! use netsim::channel::BscChannel;
//! use netsim::frame::FrameCodec;
//! use netsim::montecarlo::{run_trials, TrialConfig};
//! use crckit::catalog;
//!
//! let codec = FrameCodec::new(catalog::CRC32_ISCSI);
//! let mut channel = BscChannel::new(1e-3);
//! let stats = run_trials(
//!     &codec,
//!     &mut channel,
//!     &TrialConfig { payload_len: 256, trials: 200, seed: 7 },
//! );
//! assert_eq!(stats.total(), 200);
//! // At this BER every corrupted frame is caught (HD >= 4 territory).
//! assert_eq!(stats.undetected, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod imix;
pub mod montecarlo;

pub use channel::{BscChannel, BurstChannel, Channel, GilbertElliottChannel};
pub use frame::FrameCodec;
pub use montecarlo::{run_trials, TrialConfig, TrialStats};
