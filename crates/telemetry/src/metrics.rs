//! The metric primitives: counters, gauges, histograms, and span timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone event counter.
///
/// All operations are single relaxed atomics; a counter is safe to share
/// across threads and cheap enough to bump on per-candidate hot paths.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value measurement (rates, sizes, progress fractions scaled to
/// integers).
///
/// Unlike [`Counter`], a gauge may move in either direction; `set_max`
/// supports high-water-mark use.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Create a gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are defined by a sorted list of inclusive upper bounds plus an
/// implicit overflow bucket: observation `v` lands in the first bucket
/// whose bound is `>= v`, or in the overflow bucket when `v` exceeds every
/// bound. The bucket layout is fixed at construction, which is what makes
/// [`Histogram::merge_from`] deterministic: merging is element-wise
/// integer addition, so it is associative and commutative regardless of
/// the order per-thread shards are combined in.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// Create a histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The inclusive upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final element is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Fold another histogram's observations into this one.
    ///
    /// Element-wise integer addition over identical bucket layouts, so any
    /// merge order over a set of shards produces the same result.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket bounds.
    pub fn merge_from(&self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Smallest bound covering at least `q` per mille of the observations,
    /// or the largest bound when the mass sits in the overflow bucket.
    ///
    /// This is an upper-bound estimate (histograms only know buckets), used
    /// by the table renderer; snapshots serialise the raw buckets instead.
    pub fn quantile_bound(&self, q_per_mille: u64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (total * q_per_mille).div_ceil(1000);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return self.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// A scope timer recording elapsed microseconds into a [`Histogram`].
///
/// Create with [`Span::start`]; the elapsed time is recorded when
/// [`Span::finish`] is called or when the span is dropped, whichever comes
/// first. The span holds only a reference and an `Instant`, so an
/// un-started (disabled) path pays nothing.
#[derive(Debug)]
pub struct Span<'a> {
    hist: Option<&'a Histogram>,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Start timing a scope that will record into `hist`.
    pub fn start(hist: &'a Histogram) -> Span<'a> {
        Span {
            hist: Some(hist),
            start: Instant::now(),
        }
    }

    /// Stop the timer, record the elapsed microseconds, and return them.
    pub fn finish(mut self) -> u64 {
        let us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        if let Some(h) = self.hist.take() {
            h.observe(us);
        }
        us
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            let us = self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            h.observe(us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_high_waters() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 20, 50]);
        // Exactly on a bound lands in that bucket; one past it spills over.
        h.observe(0);
        h.observe(10);
        h.observe(11);
        h.observe(20);
        h.observe(21);
        h.observe(50);
        h.observe(51);
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 1]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 163); // 0+10+11+20+21+50+51
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let bounds = [5u64, 50, 500];
        let obs_a = [1u64, 5, 6, 700];
        let obs_b = [50u64, 51, 2];
        let obs_c = [500u64, 501, 4, 4, 4];

        let fill = |obs: &[u64]| {
            let h = Histogram::new(&bounds);
            for &v in obs {
                h.observe(v);
            }
            h
        };

        // (a + b) + c
        let left = fill(&obs_a);
        left.merge_from(&fill(&obs_b));
        left.merge_from(&fill(&obs_c));

        // a + (b + c), merged in a different order
        let right = fill(&obs_c);
        right.merge_from(&fill(&obs_a));
        right.merge_from(&fill(&obs_b));

        assert_eq!(left.bucket_counts(), right.bucket_counts());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let a = Histogram::new(&[1, 2]);
        let b = Histogram::new(&[1, 3]);
        a.merge_from(&b);
    }

    #[test]
    fn histogram_quantile_bound_walks_buckets() {
        let h = Histogram::new(&[10, 20, 50]);
        for v in [1, 2, 3, 15, 100] {
            h.observe(v);
        }
        assert_eq!(h.quantile_bound(500), 10); // 3 of 5 within the first bucket
        assert_eq!(h.quantile_bound(800), 20);
        assert_eq!(h.quantile_bound(1000), u64::MAX); // overflow bucket
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Histogram::new(&[1_000_000]);
        let us = Span::start(&h).finish();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), us);
        {
            let _implicit = Span::start(&h);
        }
        assert_eq!(h.count(), 2, "dropping a span records it");
    }
}
