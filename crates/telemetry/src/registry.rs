//! The named metric registry, the process-global instance, and the two
//! sinks (deterministic JSON snapshots and the human table).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// A registered metric: shared handles are handed out as `Arc`s so callers
/// can cache them (e.g. in a `OnceLock`) and avoid registry lookups on hot
/// paths.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A last-value gauge.
    Gauge(Arc<Gauge>),
    /// A fixed-bucket histogram.
    Histogram(Arc<Histogram>),
}

/// A collection of metrics addressed by hierarchical dot-separated names
/// (`survey.funnel.hd_pass`, `sim.lane.0.frames`).
///
/// Registration is get-or-create: asking twice for the same name returns
/// the same underlying metric. Names are kept in a `BTreeMap`, so every
/// enumeration (snapshots, tables) walks them in lexicographic order —
/// one of the two properties that make snapshots byte-deterministic (the
/// other being that only integers are ever serialised).
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Characters permitted in metric names. Names are embedded verbatim in
/// JSON snapshots and table rows, so the alphabet is kept to things that
/// need no escaping.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl Registry {
    /// Create an empty registry with instrumentation enabled.
    pub fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(true),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instrumented code should record anything.
    ///
    /// This is the hot-path switch: callers check it once (a relaxed load)
    /// and skip metric updates entirely when it is false, so the disabled
    /// path costs one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn instrumentation on or off. Existing metric values are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Get or register the counter called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is invalid (see module docs) or already registered
    /// as a different metric kind — both programming errors.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the gauge called `name`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the histogram called `name` with the given bucket
    /// bounds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::counter`], plus a panic when the
    /// name exists as a histogram with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        let entry = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match entry {
            Metric::Histogram(h) => {
                assert_eq!(
                    h.bounds(),
                    bounds,
                    "metric {name:?} already registered with different bounds"
                );
                Arc::clone(h)
            }
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Look up a metric without registering it.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics
            .lock()
            .expect("telemetry registry poisoned")
            .get(name)
            .cloned()
    }

    /// All registered names, in lexicographic order.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .expect("telemetry registry poisoned")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics
            .lock()
            .expect("telemetry registry poisoned")
            .len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render a byte-deterministic JSON snapshot of every metric.
    ///
    /// The schema (see `docs/OBSERVABILITY.md`) contains only integers:
    /// counters and gauges serialise their value, histograms their bounds,
    /// per-bucket counts (overflow last), count, and sum. Keys appear in
    /// lexicographic name order; rendering the same registry state twice
    /// yields identical bytes.
    pub fn snapshot(&self) -> String {
        let map = self.metrics.lock().expect("telemetry registry poisoned");
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"format\": \"telemetry-snapshot\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str("  \"metrics\": {");
        let mut first = true;
        for (name, metric) in map.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            let _ = write!(out, "    \"{name}\": ");
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{{\"type\": \"counter\", \"value\": {}}}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {}}}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\": \"histogram\", \"bounds\": {}, \"buckets\": {}, \"count\": {}, \"sum\": {}}}",
                        int_array(h.bounds()),
                        int_array(&h.bucket_counts()),
                        h.count(),
                        h.sum()
                    );
                }
            }
        }
        if !map.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write [`Registry::snapshot`] to `path` via the atomic tmp+rename
    /// protocol used for campaign checkpoints: readers never observe a
    /// half-written file.
    pub fn write_snapshot(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.snapshot())?;
        fs::rename(&tmp, path)
    }

    /// Render a human-readable table of every metric, one row per name.
    pub fn render_table(&self) -> String {
        let map = self.metrics.lock().expect("telemetry registry poisoned");
        let mut rows: Vec<(String, String)> = Vec::with_capacity(map.len());
        for (name, metric) in map.iter() {
            let value = match metric {
                Metric::Counter(c) => format!("{}", c.get()),
                Metric::Gauge(g) => format!("{}", g.get()),
                Metric::Histogram(h) => format!(
                    "count={} sum={} p50<={} p99<={}",
                    h.count(),
                    h.sum(),
                    bound_label(h.quantile_bound(500)),
                    bound_label(h.quantile_bound(990)),
                ),
            };
            rows.push((name.clone(), value));
        }
        let width = rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(6)
            .max("metric".len());
        let mut out = String::new();
        let _ = writeln!(out, "{:width$}  value", "metric");
        for (name, value) in rows {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        out
    }
}

/// Format a slice of integers as a JSON array.
fn int_array(vals: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Render a quantile bound, mapping the overflow sentinel to `inf`.
fn bound_label(b: u64) -> String {
    if b == u64::MAX {
        "inf".to_string()
    } else {
        b.to_string()
    }
}

/// The process-global registry.
///
/// Long-lived binaries (the survey engine, the coordinator, the simulator
/// benches) record into this instance; snapshots and `survey watch` read
/// from it. It starts enabled; callers that need guaranteed-zero overhead
/// call `global().set_enabled(false)` during startup.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x.a");
        let b = r.counter("x.a");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        let r = Registry::new();
        r.counter("has space");
    }

    #[test]
    fn enabled_flag_toggles() {
        let r = Registry::new();
        assert!(r.enabled());
        r.set_enabled(false);
        assert!(!r.enabled());
        r.set_enabled(true);
        assert!(r.enabled());
    }

    /// Two registries driven through identical operations must serialise
    /// to identical bytes, and re-rendering the same registry must too.
    #[test]
    fn snapshot_is_byte_deterministic() {
        let build = || {
            let r = Registry::new();
            // Register in an order that differs from lexicographic order to
            // prove ordering comes from names, not registration sequence.
            r.gauge("z.rate").set(44);
            r.counter("a.events").add(7);
            let h = r.histogram("m.lat_us", &[10, 100, 1000]);
            for v in [3, 10, 11, 5000] {
                h.observe(v);
            }
            r
        };
        let one = build();
        let two = build();
        assert_eq!(one.snapshot(), two.snapshot());
        assert_eq!(one.snapshot(), one.snapshot());

        let snap = one.snapshot();
        assert!(snap.starts_with("{\n  \"format\": \"telemetry-snapshot\""));
        assert!(snap.ends_with("}\n"));
        // Lexicographic ordering of names in the output.
        let a = snap.find("a.events").unwrap();
        let m = snap.find("m.lat_us").unwrap();
        let z = snap.find("z.rate").unwrap();
        assert!(a < m && m < z);
        assert!(
            snap.contains("\"buckets\": [2, 1, 0, 1]"),
            "histogram buckets serialised: {snap}"
        );
    }

    #[test]
    fn empty_registry_snapshot_is_stable() {
        let r = Registry::new();
        assert_eq!(
            r.snapshot(),
            "{\n  \"format\": \"telemetry-snapshot\",\n  \"version\": 1,\n  \"metrics\": {}\n}\n"
        );
    }

    #[test]
    fn write_snapshot_is_atomic_tmp_rename() {
        let dir = std::env::temp_dir().join(format!("telemetry-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let r = Registry::new();
        r.counter("c").add(3);
        r.write_snapshot(&path).unwrap();
        let bytes = std::fs::read_to_string(&path).unwrap();
        assert_eq!(bytes, r.snapshot());
        assert!(!dir.join("snap.tmp").exists(), "tmp file renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_table_lists_every_metric() {
        let r = Registry::new();
        r.counter("survey.funnel.candidates").add(10);
        r.gauge("survey.engine.polys_per_s").set(1234);
        r.histogram("survey.engine.shard_us", &[1000]).observe(5);
        let table = r.render_table();
        assert!(table.contains("survey.funnel.candidates"));
        assert!(table.contains("1234"));
        assert!(table.contains("count=1"));
        assert!(table.lines().count() == 4, "header + 3 rows: {table}");
    }
}
