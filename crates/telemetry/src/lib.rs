//! Zero-dependency instrumentation for the CRC workspace.
//!
//! This crate provides the small set of primitives the survey engine, the
//! distributed coordinator/worker layer, and the fault-injection simulator
//! use to expose what they are doing while they do it:
//!
//! * [`Counter`] — a monotone atomic event counter.
//! * [`Gauge`] — an atomic last-value (or running-max) measurement.
//! * [`Histogram`] — a fixed-bucket distribution with a deterministic,
//!   associative merge, suitable for combining per-thread shards.
//! * [`Span`] — a lightweight scope timer that records its elapsed
//!   microseconds into a histogram when finished (or dropped).
//! * [`Registry`] — a named collection of the above with hierarchical
//!   dot-separated names, a process-global instance ([`global`]), and two
//!   sinks: a byte-deterministic JSON snapshot ([`Registry::snapshot`],
//!   [`Registry::write_snapshot`]) and a human-readable table
//!   ([`Registry::render_table`]).
//!
//! # Design constraints
//!
//! The workspace's artifacts (shard logs, checkpoints, leaderboards,
//! simulator reports) are byte-deterministic, and instrumentation must not
//! threaten that: every value a snapshot serialises is an integer, metric
//! iteration order is the lexicographic order of names, and no timestamps
//! or floats appear anywhere in the output. Snapshots are written with the
//! same atomic tmp+rename protocol as campaign checkpoints.
//!
//! Instrumentation must also be cheap enough to leave compiled in. Metric
//! updates are single relaxed atomic operations; the global registry can be
//! disabled ([`Registry::set_enabled`]), and callers on hot paths are
//! expected to skip even the relaxed update when disabled (see
//! [`Registry::enabled`]).
//!
//! This crate depends only on `std` so it builds in the offline
//! environment and can be linked from every other crate in the workspace.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod metrics;
mod registry;

pub use metrics::{Counter, Gauge, Histogram, Span};
pub use registry::{global, Metric, Registry};
