//! Sharded, checkpointable polynomial-survey campaigns with Pareto
//! selection — the paper's survey methodology (evaluate an entire
//! polynomial space, pick winners per length regime) packaged as a
//! production-shaped subsystem that outlives a process.
//!
//! # Architecture
//!
//! A **campaign** evaluates every polynomial of one [`PolySpace`]
//! (or a deterministic sample of it) against a screening bar, profiles
//! the survivors, and ranks them. It is built from four layers:
//!
//! 1. **Work units** ([`campaign`]): the space splits into `shards`
//!    contiguous offset ranges over `PolySpace::iter_range`. A unit's
//!    result is a pure function of `(config, shard id)` — thread count,
//!    claim order and host play no part. Sampled mode draws candidates
//!    from a per-shard SplitMix64 stream derived by
//!    [`campaign::unit_seed`], the same seed-splitting idiom netsim uses
//!    for its trial shards.
//! 2. **Engine** ([`engine`]): a scoped worker pool claims units off an
//!    atomic counter, screens with `core`'s `hd_filter` (at the
//!    shortest target length — the staged-filter observation that HD
//!    only shrinks with length), evaluates survivors into
//!    [`campaign::SurvivorRecord`]s (profile parts via
//!    `HdProfile`, exact weights, factorization class, engine cost),
//!    and checkpoints.
//! 3. **Checkpoints**: every artifact is versioned JSON stamped with the
//!    config's content hash. `campaign.json` holds the config and the
//!    completed-shard set; `shards/shard-NNNNN.json` holds one unit's
//!    survivors. Files are written atomically (temp + rename), and the
//!    manifest is updated only *after* a shard log is fully on disk —
//!    so at every instant the checkpoint names only durable work.
//! 4. **Selection** ([`pareto`], [`leaderboard`]): survivors are ranked
//!    per target length and filtered to the Pareto frontier over
//!    (HD at each target length, P_ud across a BER grid, feedback
//!    taps), reproducing the paper's per-regime winners plus the
//!    hardware-cost axis it applies to `0x90022004`/`0x80108400`.
//!
//! # Resume invariants
//!
//! Killing a campaign at any point and resuming it must yield artifacts
//! **byte-identical** to an uninterrupted run. This holds because:
//!
//! * a unit's result depends only on `(config, shard id)`;
//! * completed shard logs are never rewritten (and rewriting one would
//!   reproduce the same bytes);
//! * the manifest's completed set only grows, and only after the
//!   corresponding log is durable;
//! * all JSON rendering is deterministic (fixed key order, fixed
//!   indentation, shortest-round-trip numbers);
//! * resumes refuse artifacts whose config hash differs.
//!
//! The one observable difference after a kill is a possible orphan
//! shard log not yet named by the manifest; the resume recomputes it to
//! identical bytes.
//!
//! ```
//! use crc_survey::campaign::{CampaignConfig, Mode};
//! use crc_survey::engine::Campaign;
//! use crc_survey::leaderboard::{build, LeaderboardOptions};
//!
//! let dir = std::env::temp_dir().join(format!("survey-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let cfg = CampaignConfig {
//!     width: 8,
//!     shards: 4,
//!     seed: 7,
//!     mode: Mode::Exhaustive,
//!     min_hd: 4,
//!     target_lengths: vec![8, 16],
//!     ber_grid: vec![1e-5],
//!     max_weight: 6,
//! };
//! let mut campaign = Campaign::create(&dir, cfg).unwrap();
//! campaign.run(2, None).unwrap();            // or stop early and…
//! let mut resumed = Campaign::open(&dir).unwrap();
//! resumed.run(2, None).unwrap();             // …resume bit-identically
//! let opts = LeaderboardOptions { top: 3, spot_check_32: false, ..Default::default() };
//! let board = build(&resumed, &opts).unwrap();
//! assert!(board.get("survivors").unwrap().as_u64().unwrap() > 0);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! # Going distributed
//!
//! Because work units are pure in `(config, shard id)` and artifacts
//! are byte-deterministic, the single-host pool generalizes to many
//! hosts without touching the formats: a [`coordinator`] owns the
//! manifest and leases shards over a pluggable [`transport`] (a shared
//! file-queue directory, or line-delimited JSON over TCP) to
//! [`worker`] loops that run [`engine::evaluate_unit`] — the exact
//! code path of the local pool — and stream shard logs back. Lease
//! expiry re-issues a dead worker's shards; duplicate submissions are
//! idempotent because recomputing a unit reproduces its bytes. The
//! merged campaign directory is byte-identical to a single-host run.
//!
//! The [`census`] module adds the stratified sampled census over the
//! spaces too large to enumerate, with exact stratum sizes and
//! Wilson-interval extrapolation; see `docs/CENSUS.md` for the
//! operator runbook.
//!
//! # Observability
//!
//! Every layer records into the process-global [`telemetry`] registry
//! through the cached handles in [`metrics`]: the screening funnel
//! (candidates → HD filter → profile → weights → record), engine
//! polys/s and shard-duration spans, index-policy gauges, and
//! coordinator lease/duplicate counters. The coordinator answers a
//! `Status` request with live progress (`survey watch` renders it) and
//! persists its counters to `coordinator-summary.json`. Instrumentation
//! never touches artifact bytes — every golden file is byte-identical
//! with telemetry on, off, or absent; see `docs/OBSERVABILITY.md` for
//! the metric catalog.
//!
//! [`PolySpace`]: crc_hd::search::PolySpace

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod census;
pub mod chaos;
pub mod coordinator;
pub mod engine;
pub mod frame;
pub mod json;
pub mod leaderboard;
pub mod metrics;
pub mod pareto;
pub mod transport;
pub mod worker;

pub use campaign::{CampaignConfig, Mode, SurvivorRecord};
pub use engine::{Campaign, RunSummary};

use std::fmt;

/// Errors produced by survey operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid campaign parameters.
    Config(String),
    /// Malformed or mismatched artifact (JSON, schema, version, or
    /// campaign identity).
    Parse(String),
    /// Filesystem failure.
    Io(String),
    /// A wire frame failed CRC/trailer verification (truncated or
    /// corrupted in flight). Always retryable: the sender still holds
    /// the request and work units are idempotent.
    Frame(String),
    /// An operation needed a completed campaign.
    Incomplete {
        /// Shards checkpointed so far.
        done: u64,
        /// Shards in the campaign.
        total: u64,
    },
    /// An evaluation error from `crc-hd`.
    Core(crc_hd::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(s) => write!(f, "bad campaign config: {s}"),
            Error::Parse(s) => write!(f, "bad campaign artifact: {s}"),
            Error::Io(s) => write!(f, "campaign io: {s}"),
            Error::Frame(s) => write!(f, "wire frame rejected: {s}"),
            Error::Incomplete { done, total } => {
                write!(f, "campaign incomplete: {done}/{total} shards")
            }
            Error::Core(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl Error {
    /// Whether retrying the same request can succeed.
    ///
    /// Transport-level failures ([`Error::Io`] — timeouts, refused
    /// connections, lost replies) and damaged frames ([`Error::Frame`])
    /// are transient: the protocol is idempotent, so the worker retry
    /// layer resends. Everything else (schema mismatches, config
    /// conflicts, evaluation errors) signals a real disagreement that a
    /// resend cannot fix.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Io(_) | Error::Frame(_))
    }
}

impl std::error::Error for Error {}

impl From<crc_hd::Error> for Error {
    fn from(e: crc_hd::Error) -> Error {
        Error::Core(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
