//! The survey campaign CLI.
//!
//! ```text
//! survey run    --dir DIR --width W [--shards S] [--threads N] [--seed S]
//!               [--lengths a,b,c] [--min-hd H] [--max-weight W]
//!               [--ber 1e-5,1e-6] [--sample N] [--stop-after K]
//! survey resume --dir DIR [--threads N] [--stop-after K]
//! survey report --dir DIR [--out FILE] [--top K] [--no-spot-check]
//! ```
//!
//! `run` creates a campaign and drives it to completion (or for
//! `--stop-after K` checkpoints — the kill-at-a-checkpoint primitive CI
//! uses to exercise resume). `resume` continues whatever `campaign.json`
//! records. `report` loads a completed campaign's survivor logs and
//! writes the leaderboard JSON (plus tables and CSV on stdout).

use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::engine::Campaign;
use crc_survey::leaderboard::{build, render_tables, LeaderboardOptions};
use std::path::PathBuf;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {flag}")),
    }
}

fn parse_list<T: std::str::FromStr>(text: &str, what: &str) -> Result<Vec<T>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("bad {what} entry {part:?}"))
        })
        .collect()
}

fn require_dir(args: &[String]) -> Result<PathBuf, String> {
    flag_value(args, "--dir")
        .map(PathBuf::from)
        .ok_or_else(|| "--dir is required".into())
}

fn threads_or_default(args: &[String]) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_or(args, "--threads", default)
}

fn stop_after(args: &[String]) -> Result<Option<u64>, String> {
    Ok(match flag_value(args, "--stop-after") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value {v:?} for --stop-after"))?,
        ),
    })
}

fn drive(campaign: &mut Campaign, threads: usize, stop: Option<u64>) -> Result<(), String> {
    let (done, total) = campaign.progress();
    eprintln!(
        "campaign {}: width {}, {done}/{total} shards done, {threads} threads",
        campaign.dir().display(),
        campaign.config().width
    );
    let summary = campaign.run(threads, stop).map_err(|e| e.to_string())?;
    let (done, total) = campaign.progress();
    eprintln!(
        "ran {} shards ({} scanned, {} canonical, {} survivors); {done}/{total} complete",
        summary.shards_run, summary.scanned, summary.canonical, summary.survivors
    );
    if !campaign.is_complete() {
        eprintln!("campaign paused at a checkpoint; `survey resume --dir ...` continues it");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let width: u32 = parse_or(args, "--width", 0)?;
    if width == 0 {
        return Err("--width is required".into());
    }
    let lengths: Vec<u32> = match flag_value(args, "--lengths") {
        Some(v) => parse_list(&v, "length")?,
        None => vec![64, 256, 1024],
    };
    let ber_grid: Vec<f64> = match flag_value(args, "--ber") {
        Some(v) => parse_list(&v, "BER")?,
        None => vec![1e-5, 1e-6],
    };
    let mode = match flag_value(args, "--sample") {
        Some(v) => Mode::Sampled {
            per_shard: v
                .parse()
                .map_err(|_| format!("bad value {v:?} for --sample"))?,
        },
        None => Mode::Exhaustive,
    };
    let config = CampaignConfig {
        width,
        shards: parse_or(args, "--shards", 16)?,
        seed: parse_or(args, "--seed", 1)?,
        mode,
        min_hd: parse_or(args, "--min-hd", 4)?,
        target_lengths: lengths,
        ber_grid,
        max_weight: parse_or(args, "--max-weight", 8)?,
    };
    let mut campaign = Campaign::create(&dir, config).map_err(|e| e.to_string())?;
    drive(&mut campaign, threads_or_default(args)?, stop_after(args)?)
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let mut campaign = Campaign::open(&dir).map_err(|e| e.to_string())?;
    drive(&mut campaign, threads_or_default(args)?, stop_after(args)?)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let campaign = Campaign::open(&dir).map_err(|e| e.to_string())?;
    let opts = LeaderboardOptions {
        top: parse_or(args, "--top", 5)?,
        spot_check_32: !args.iter().any(|a| a == "--no-spot-check"),
    };
    let doc = build(&campaign, &opts).map_err(|e| e.to_string())?;
    let out = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| dir.join("leaderboard.json"));
    std::fs::write(&out, doc.render()).map_err(|e| format!("write {}: {e}", out.display()))?;
    let (text, csv) = render_tables(&doc);
    print!("{text}");
    println!("machine-readable (CSV):\n{csv}");
    eprintln!("wrote {}", out.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        _ => Err("usage: survey <run|resume|report> --dir DIR [options]".into()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("survey: {msg}");
            ExitCode::FAILURE
        }
    }
}
