//! The survey campaign CLI.
//!
//! ```text
//! survey run        --dir DIR --width W [--shards S] [--threads N] [--seed S]
//!                   [--lengths a,b,c] [--min-hd H] [--max-weight W]
//!                   [--ber 1e-5,1e-6] [--sample N] [--stop-after K]
//!                   [--census N [--classes SIG;SIG;...]]
//! survey resume     --dir DIR [--threads N] [--stop-after K]
//! survey report     --dir DIR [--out FILE] [--top K] [--no-spot-check]
//!                   [--exact-pud] [--z Z]
//! survey coordinate --dir DIR --transport T [--lease-ttl SECS] [--linger MS]
//!                   [creation flags, for a fresh DIR]
//! survey work       --transport T [--name NAME] [--max-shards K]
//! survey watch      --transport T [--interval SECS] [--once] [--name NAME]
//! survey merge      --dir DIR LOG [LOG...]
//! ```
//!
//! `run` creates a campaign and drives it to completion on local
//! threads. `resume` continues whatever `campaign.json` records.
//! `report` loads a completed campaign and writes the leaderboard JSON
//! (or, for census campaigns, the stratified estimate document).
//!
//! `coordinate`/`work` are the distributed pair: the coordinator owns
//! the campaign directory and leases shards over a transport (`file:DIR`
//! for a shared queue directory, `tcp:HOST:PORT` for a socket); workers
//! need only the transport address. `watch` polls a coordinator's
//! `Status` endpoint over either transport and renders live progress —
//! per-worker heartbeats, outstanding leases, scan rate, and the ETA
//! from the shard completion rate. `merge` folds shard-log files that
//! arrived out of band into the checkpoint. Run `survey help` for the
//! full story.

use crc_survey::campaign::{CampaignConfig, Mode, ShardResult};
use crc_survey::census::{census_report, render_census_table, Z95};
use crc_survey::chaos::{ChaosConfig, ChaosTransport};
use crc_survey::coordinator::Coordinator;
use crc_survey::engine::Campaign;
use crc_survey::json::Json;
use crc_survey::leaderboard::{build, render_tables, LeaderboardOptions};
use crc_survey::pareto::PudAxis;
use crc_survey::transport::{
    FileQueueClient, FileQueueServer, Reply, Request, StatusReport, TcpClient, TcpServer,
    WorkerTransport,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// The one sentence that defines `--stop-after`; docs/CENSUS.md quotes
/// it verbatim and the CLI smoke test holds both to it.
const STOP_AFTER_SEMANTICS: &str = "--stop-after K exits at the next checkpoint boundary: \
after this invocation checkpoints K shards (fewer if the campaign finishes first) the \
process stops, and a later resume continues the manifest to artifacts byte-identical to \
an uninterrupted run.";

const USAGE: &str = "usage: survey <run|resume|report|coordinate|work|watch|merge|help> [options]";

fn help_text() -> String {
    format!(
        "{USAGE}

  run        --dir DIR --width W [--shards S] [--threads N] [--seed S]
             [--lengths a,b,c] [--min-hd H] [--max-weight W] [--ber 1e-5,...]
             [--sample N | --census N [--classes SIG;SIG;...]] [--stop-after K]
                 create a campaign and drive it on local threads.
                 --sample N draws N candidates per shard instead of
                 enumerating; --census N creates a stratified census
                 (N draws per stratum: one stratum per feedback-tap
                 count, plus one per --classes factorization signature,
                 e.g. --classes '{{1,15}};{{16}}').
  resume     --dir DIR [--threads N] [--stop-after K]
                 continue a campaign from its checkpoint.
  report     --dir DIR [--out FILE] [--top K] [--no-spot-check]
                 [--exact-pud] [--z Z]
                 write leaderboard.json for a completed campaign, or
                 census.json (estimates with Wilson bounds at critical
                 value Z, default 95%) for a census campaign.
                 --exact-pud ranks by full-distribution P_ud (exact at
                 every weight) instead of the W2-W4 truncation.
  coordinate --dir DIR --transport T [--lease-ttl SECS] [--linger MS]
                 [--quarantine-after K]
                 serve the campaign to remote workers; accepts the same
                 creation flags as `run` when DIR has no campaign yet.
                 Leases that expire re-issue the shard; duplicate
                 submissions are idempotent. A shard whose lease expires
                 K times (default 5; 0 disables) is quarantined and
                 never re-issued.
  work       --transport T [--name NAME] [--max-shards K]
                 [--retry-base-ms MS] [--retry-cap-ms MS]
                 [--retry-attempts N]
                 attach a worker to a coordinator: lease, evaluate,
                 submit, repeat until the coordinator reports the
                 campaign complete. Transient transport failures are
                 resent with capped exponential backoff + decorrelated
                 jitter (defaults 50ms base, 5s cap, 10 attempts).
  watch      --transport T [--interval SECS] [--once] [--name NAME]
                 poll a running coordinator's status endpoint and render
                 live progress: shards done, scan rate, ETA, outstanding
                 leases, and per-worker heartbeats. --once prints one
                 report and exits; otherwise polls every SECS (default 2)
                 until the campaign completes.
  merge      --dir DIR LOG [LOG...]
                 fold shard-log JSON files (collected out of band) into
                 the campaign checkpoint; byte-identical logs are
                 accepted idempotently, conflicting ones refused.

transports: file:DIR (shared queue directory) or tcp:HOST:PORT.
Every protocol line carries a CRC-32 trailer; damaged frames are
answered with a retry, never a crash.

chaos (coordinate/work): --chaos SEED [--chaos-rate PCT] wraps the
transport in a deterministic fault injector — dropped replies,
duplicated and delayed requests, truncated and bit-flipped frames — at
PCT percent per fault kind (default 10). The campaign must still
produce byte-identical artifacts; CI's chaos-smoke job holds it to
that.

checkpoints: {STOP_AFTER_SEMANTICS}
"
    )
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {flag}")),
    }
}

fn parse_list<T: std::str::FromStr>(text: &str, what: &str) -> Result<Vec<T>, String> {
    text.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("bad {what} entry {part:?}"))
        })
        .collect()
}

fn require_dir(args: &[String]) -> Result<PathBuf, String> {
    flag_value(args, "--dir")
        .map(PathBuf::from)
        .ok_or_else(|| "--dir is required".into())
}

fn threads_or_default(args: &[String]) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    parse_or(args, "--threads", default)
}

fn stop_after(args: &[String]) -> Result<Option<u64>, String> {
    Ok(match flag_value(args, "--stop-after") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value {v:?} for --stop-after"))?,
        ),
    })
}

fn config_from_args(args: &[String]) -> Result<CampaignConfig, String> {
    let width: u32 = parse_or(args, "--width", 0)?;
    if width == 0 {
        return Err("--width is required".into());
    }
    let lengths: Vec<u32> = match flag_value(args, "--lengths") {
        Some(v) => parse_list(&v, "length")?,
        None => vec![64, 256, 1024],
    };
    let ber_grid: Vec<f64> = match flag_value(args, "--ber") {
        Some(v) => parse_list(&v, "BER")?,
        None => vec![1e-5, 1e-6],
    };
    let census: Option<u64> = match flag_value(args, "--census") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value {v:?} for --census"))?,
        ),
        None => None,
    };
    let (mode, shards) = match census {
        Some(per_stratum) => {
            if flag_value(args, "--sample").is_some() {
                return Err("--census and --sample are mutually exclusive".into());
            }
            let classes: Vec<String> = match flag_value(args, "--classes") {
                Some(v) => v
                    .split(';')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect(),
                None => Vec::new(),
            };
            // One shard per stratum: the w tap counts, then the classes.
            let shards = width as u64 + classes.len() as u64;
            (
                Mode::Census {
                    per_stratum,
                    classes,
                },
                shards,
            )
        }
        None => {
            let mode = match flag_value(args, "--sample") {
                Some(v) => Mode::Sampled {
                    per_shard: v
                        .parse()
                        .map_err(|_| format!("bad value {v:?} for --sample"))?,
                },
                None => Mode::Exhaustive,
            };
            (mode, parse_or(args, "--shards", 16)?)
        }
    };
    Ok(CampaignConfig {
        width,
        shards,
        seed: parse_or(args, "--seed", 1)?,
        mode,
        min_hd: parse_or(args, "--min-hd", 4)?,
        target_lengths: lengths,
        ber_grid,
        max_weight: parse_or(args, "--max-weight", 8)?,
    })
}

fn open_or_create(dir: &Path, args: &[String]) -> Result<Campaign, String> {
    if dir.join("campaign.json").exists() {
        Campaign::open(dir).map_err(|e| e.to_string())
    } else {
        Campaign::create(dir, config_from_args(args)?).map_err(|e| e.to_string())
    }
}

fn drive(campaign: &mut Campaign, threads: usize, stop: Option<u64>) -> Result<(), String> {
    let (done, total) = campaign.progress();
    eprintln!(
        "campaign {}: width {}, {done}/{total} shards done, {threads} threads",
        campaign.dir().display(),
        campaign.config().width
    );
    let summary = campaign.run(threads, stop).map_err(|e| e.to_string())?;
    let (done, total) = campaign.progress();
    eprintln!(
        "ran {} shards ({} scanned, {} canonical, {} survivors); {done}/{total} complete",
        summary.shards_run, summary.scanned, summary.canonical, summary.survivors
    );
    if !campaign.is_complete() {
        eprintln!("campaign paused at a checkpoint; `survey resume --dir ...` continues it");
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let config = config_from_args(args)?;
    let mut campaign = Campaign::create(&dir, config).map_err(|e| e.to_string())?;
    drive(&mut campaign, threads_or_default(args)?, stop_after(args)?)
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let mut campaign = Campaign::open(&dir).map_err(|e| e.to_string())?;
    drive(&mut campaign, threads_or_default(args)?, stop_after(args)?)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let campaign = Campaign::open(&dir).map_err(|e| e.to_string())?;
    let z: f64 = parse_or(args, "--z", Z95)?;
    if matches!(campaign.config().mode, Mode::Census { .. }) {
        let doc = census_report(&campaign, z).map_err(|e| e.to_string())?;
        let out = flag_value(args, "--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| dir.join("census.json"));
        std::fs::write(&out, doc.render()).map_err(|e| format!("write {}: {e}", out.display()))?;
        print!("{}", render_census_table(&doc));
        eprintln!("wrote {}", out.display());
        return Ok(());
    }
    let opts = LeaderboardOptions {
        top: parse_or(args, "--top", 5)?,
        spot_check_32: !args.iter().any(|a| a == "--no-spot-check"),
        pud_axis: if args.iter().any(|a| a == "--exact-pud") {
            PudAxis::Exact
        } else {
            PudAxis::Truncated
        },
    };
    let doc = build(&campaign, &opts).map_err(|e| e.to_string())?;
    let out = flag_value(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| dir.join("leaderboard.json"));
    std::fs::write(&out, doc.render()).map_err(|e| format!("write {}: {e}", out.display()))?;
    let (text, csv) = render_tables(&doc);
    print!("{text}");
    println!("machine-readable (CSV):\n{csv}");
    eprintln!("wrote {}", out.display());
    Ok(())
}

enum Transport {
    File(PathBuf),
    Tcp(String),
}

fn transport_from_args(args: &[String]) -> Result<Transport, String> {
    let spec = flag_value(args, "--transport")
        .ok_or_else(|| "--transport is required (file:DIR or tcp:HOST:PORT)".to_string())?;
    if let Some(dir) = spec.strip_prefix("file:") {
        Ok(Transport::File(PathBuf::from(dir)))
    } else if let Some(addr) = spec.strip_prefix("tcp:") {
        Ok(Transport::Tcp(addr.to_string()))
    } else {
        Err(format!(
            "bad transport {spec:?}: expected file:DIR or tcp:HOST:PORT"
        ))
    }
}

/// Parses the optional chaos flags: `--chaos SEED` turns fault
/// injection on, `--chaos-rate PCT` sets the per-fault-kind rate
/// (default 10%).
fn chaos_from_args(args: &[String]) -> Result<Option<ChaosConfig>, String> {
    match flag_value(args, "--chaos") {
        None => Ok(None),
        Some(v) => {
            let seed: u64 = v
                .parse()
                .map_err(|_| format!("bad value {v:?} for --chaos (expected a seed)"))?;
            let rate: u8 = parse_or(args, "--chaos-rate", 10u8)?;
            if rate > 100 {
                return Err(format!("--chaos-rate {rate} is not a percentage"));
            }
            Ok(Some(ChaosConfig::all(seed, rate)))
        }
    }
}

fn cmd_coordinate(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let campaign = open_or_create(&dir, args)?;
    let lease_ttl = Duration::from_secs(parse_or(args, "--lease-ttl", 300u64)?);
    let linger = Duration::from_millis(parse_or(args, "--linger", 1_000u64)?);
    let quarantine_after: u32 = parse_or(args, "--quarantine-after", 5u32)?;
    let chaos = chaos_from_args(args)?;
    let poll = Duration::from_millis(10);
    let (done, total) = campaign.progress();
    let mut coordinator =
        Coordinator::new(campaign, lease_ttl).with_quarantine_after(quarantine_after);
    eprintln!(
        "coordinating {}: {done}/{total} shards done, lease ttl {lease_ttl:?}",
        dir.display()
    );
    if let Some(cfg) = &chaos {
        eprintln!(
            "chaos enabled: seed {}, {}% per fault kind",
            cfg.seed, cfg.corrupt_pct
        );
    }
    let summary = match transport_from_args(args)? {
        Transport::File(queue) => {
            let mut server = FileQueueServer::new(&queue).map_err(|e| e.to_string())?;
            match chaos {
                Some(cfg) => coordinator.serve(&mut ChaosTransport::new(server, cfg), poll, linger),
                None => coordinator.serve(&mut server, poll, linger),
            }
        }
        Transport::Tcp(addr) => {
            let mut server = TcpServer::bind(&addr).map_err(|e| e.to_string())?;
            eprintln!(
                "listening on {}",
                server.local_addr().map_err(|e| e.to_string())?
            );
            match chaos {
                Some(cfg) => coordinator.serve(&mut ChaosTransport::new(server, cfg), poll, linger),
                None => coordinator.serve(&mut server, poll, linger),
            }
        }
    }
    .map_err(|e| e.to_string())?;
    let quarantined = coordinator.quarantined_shards();
    let state = if coordinator.campaign().is_complete() {
        "campaign complete"
    } else {
        "campaign terminal (degraded)"
    };
    eprintln!(
        "{state}: {} shards recorded, {} duplicates, {} leases re-issued, {} refusals",
        summary.shards_recorded, summary.duplicates, summary.leases_expired, summary.refusals
    );
    if !quarantined.is_empty() {
        eprintln!("quarantined shards (never re-issued): {quarantined:?}");
    }
    Ok(())
}

fn cmd_work(args: &[String]) -> Result<(), String> {
    let name = flag_value(args, "--name").unwrap_or_else(|| format!("w{}", std::process::id()));
    let default_retry = crc_survey::worker::RetryPolicy::default();
    let retry = crc_survey::worker::RetryPolicy {
        base: Duration::from_millis(parse_or(
            args,
            "--retry-base-ms",
            default_retry.base.as_millis() as u64,
        )?),
        cap: Duration::from_millis(parse_or(
            args,
            "--retry-cap-ms",
            default_retry.cap.as_millis() as u64,
        )?),
        max_attempts: parse_or(args, "--retry-attempts", default_retry.max_attempts)?,
        // Decorrelate the fleet: each worker jitters off its own name.
        seed: name.bytes().fold(default_retry.seed, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        }),
    };
    let opts = crc_survey::worker::WorkerOptions {
        name,
        max_shards: match flag_value(args, "--max-shards") {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| format!("bad value {v:?} for --max-shards"))?,
            ),
        },
        retry,
    };
    let chaos = chaos_from_args(args)?;
    let summary = match transport_from_args(args)? {
        Transport::File(queue) => {
            let mut client = FileQueueClient::new(&queue, &opts.name).map_err(|e| e.to_string())?;
            match chaos {
                Some(cfg) => {
                    crc_survey::worker::run_worker(&mut ChaosTransport::new(client, cfg), &opts)
                }
                None => crc_survey::worker::run_worker(&mut client, &opts),
            }
        }
        Transport::Tcp(addr) => {
            let mut client = TcpClient::new(&addr);
            match chaos {
                Some(cfg) => {
                    crc_survey::worker::run_worker(&mut ChaosTransport::new(client, cfg), &opts)
                }
                None => crc_survey::worker::run_worker(&mut client, &opts),
            }
        }
    }
    .map_err(|e| e.to_string())?;
    eprintln!(
        "worker {} done: {} shards submitted ({} duplicates, {} retries, {} waits)",
        opts.name, summary.shards_submitted, summary.duplicates, summary.retries, summary.waits
    );
    Ok(())
}

/// Renders one status report as the live table `survey watch` prints.
fn render_status(s: &StatusReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let pct = (s.done * 100).checked_div(s.total).unwrap_or(100);
    let _ = write!(
        out,
        "campaign: {}/{} shards ({pct}%)  scanned {}  survivors {}  {} polys/s",
        s.done, s.total, s.scanned, s.survivors, s.polys_per_s
    );
    match s.eta_ms {
        Some(ms) if s.done < s.total => {
            let _ = writeln!(out, "  eta {}s", ms.div_ceil(1_000));
        }
        _ => {
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "session:  {} recorded  {} duplicates  {} leases expired  {} refused  {} frames rejected",
        s.recorded, s.duplicates, s.leases_expired, s.refusals, s.frames_rejected
    );
    if !s.quarantined.is_empty() {
        let _ = writeln!(
            out,
            "quarantined: {:?} (parked after repeated lease expiry; a late submit lifts it)",
            s.quarantined
        );
    }
    if !s.leases.is_empty() {
        let _ = writeln!(out, "leases:");
        for l in &s.leases {
            let _ = writeln!(
                out,
                "  shard {:>6}  worker {:<16}  age {:>6.1}s",
                l.shard,
                l.worker,
                l.age_ms as f64 / 1_000.0
            );
        }
    }
    if !s.workers.is_empty() {
        let _ = writeln!(
            out,
            "workers:  {:<16} {:>10} {:>8} {:>12}",
            "name", "last-seen", "shards", "last-submit"
        );
        for w in &s.workers {
            let last = match w.last_submit_ms {
                Some(ms) => format!("{:.1}s", ms as f64 / 1_000.0),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "          {:<16} {:>9.1}s {:>8} {:>12}",
                w.name,
                w.seen_ms as f64 / 1_000.0,
                w.submitted,
                last
            );
        }
    }
    out
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let name = flag_value(args, "--name").unwrap_or_else(|| format!("watch{}", std::process::id()));
    let interval = Duration::from_secs(parse_or(args, "--interval", 2u64)?.max(1));
    let once = args.iter().any(|a| a == "--once");
    let mut client: Box<dyn WorkerTransport> = match transport_from_args(args)? {
        Transport::File(queue) => {
            Box::new(FileQueueClient::new(&queue, &name).map_err(|e| e.to_string())?)
        }
        Transport::Tcp(addr) => Box::new(TcpClient::new(&addr)),
    };
    let mut once_retries = 0u32;
    loop {
        // A watch session must outlive transient trouble: damaged
        // frames, timeouts, and explicit retry replies just mean "poll
        // again". Even --once retries a bounded number of times — one
        // mangled frame must not fail a monitoring cron job.
        let report = match client.call(&Request::Status {
            worker: name.clone(),
        }) {
            Ok(Reply::Status(report)) => report,
            Ok(Reply::Retry { reason }) | Err(crc_survey::Error::Frame(reason)) => {
                if once {
                    once_retries += 1;
                    if once_retries > 10 {
                        return Err(format!("status poll kept failing: {reason}"));
                    }
                }
                eprintln!("status poll will retry: {reason}");
                std::thread::sleep(if once {
                    Duration::from_millis(200)
                } else {
                    interval
                });
                continue;
            }
            Ok(Reply::Refused { reason }) => {
                return Err(format!("coordinator refused the status request: {reason}"))
            }
            Ok(other) => return Err(format!("expected a status reply, got {other:?}")),
            Err(e) => return Err(e.to_string()),
        };
        let complete = report.total > 0 && report.done == report.total;
        print!("{}", render_status(&report));
        if once {
            return Ok(());
        }
        if complete {
            eprintln!("campaign complete");
            return Ok(());
        }
        std::thread::sleep(interval);
        println!();
    }
}

fn cmd_merge(args: &[String]) -> Result<(), String> {
    let dir = require_dir(args)?;
    let mut campaign = Campaign::open(&dir).map_err(|e| e.to_string())?;
    let hash = campaign.config().content_hash();
    // Everything that is not a recognized flag (or its value) is a log.
    let mut logs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--dir" {
            i += 2;
        } else {
            logs.push(PathBuf::from(&args[i]));
            i += 1;
        }
    }
    if logs.is_empty() {
        return Err("merge needs at least one shard-log file".into());
    }
    let (mut fresh, mut dup) = (0u64, 0u64);
    for path in logs {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let result =
            ShardResult::from_json(&doc, hash).map_err(|e| format!("{}: {e}", path.display()))?;
        if campaign
            .record_shard(&result)
            .map_err(|e| format!("{}: {e}", path.display()))?
        {
            fresh += 1;
        } else {
            dup += 1;
        }
    }
    let (done, total) = campaign.progress();
    eprintln!("merged {fresh} new shard logs ({dup} duplicates); {done}/{total} complete");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("coordinate") => cmd_coordinate(&args[1..]),
        Some("work") => cmd_work(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{}", help_text());
            return ExitCode::SUCCESS;
        }
        _ => Err(USAGE.into()),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("survey: {msg}");
            ExitCode::FAILURE
        }
    }
}
