//! Pareto selection over the survivor stream.
//!
//! A survey does not have one winner: HD at each target length, the
//! undetected-error probability across the BER grid, and implementation
//! cost pull in different directions (the paper itself keeps 802.3 for
//! compatibility, proposes `0xBA0DC66B` for HD, and singles out
//! `0x90022004`/`0x80108400` for hardware cost). The frontier keeps
//! every polynomial not beaten *everywhere* by some other survivor.

use crate::campaign::{CampaignConfig, SurvivorRecord};
use crate::Result;

/// The objective vector of one survivor: HD per target length
/// (maximize), P_ud per grid BER at the reference length (minimize),
/// feedback taps (minimize).
#[derive(Debug, Clone, PartialEq)]
pub struct Objectives {
    /// `hd_at` each `target_lengths` entry; `None` means above every
    /// explored weight — the strongest possible value.
    pub hds: Vec<Option<u32>>,
    /// `P_ud` at each `ber_grid` entry.
    pub p_ud: Vec<f64>,
    /// Feedback taps (engine cost).
    pub taps: u32,
}

impl Objectives {
    /// Evaluates the vector for one record under one config.
    ///
    /// # Errors
    ///
    /// Propagates profile-reconstruction errors (corrupt records).
    pub fn evaluate(rec: &SurvivorRecord, cfg: &CampaignConfig) -> Result<Objectives> {
        let profile = rec.profile(cfg.ref_len())?;
        Ok(Objectives {
            hds: cfg
                .target_lengths
                .iter()
                .map(|&n| profile.hd_at(n))
                .collect(),
            p_ud: cfg.ber_grid.iter().map(|&b| rec.p_ud(b)).collect(),
            taps: rec.taps,
        })
    }

    /// HD as a totally ordered rank: `None` (above every explored
    /// weight) outranks any finite value.
    fn hd_rank(hd: Option<u32>) -> u32 {
        hd.unwrap_or(u32::MAX)
    }

    /// True when `self` dominates `other`: at least as good on every
    /// axis and strictly better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        debug_assert_eq!(self.hds.len(), other.hds.len());
        debug_assert_eq!(self.p_ud.len(), other.p_ud.len());
        let mut strictly = false;
        for (a, b) in self.hds.iter().zip(&other.hds) {
            let (a, b) = (Self::hd_rank(*a), Self::hd_rank(*b));
            if a < b {
                return false;
            }
            strictly |= a > b;
        }
        for (a, b) in self.p_ud.iter().zip(&other.p_ud) {
            if a > b {
                return false;
            }
            strictly |= a < b;
        }
        if self.taps > other.taps {
            return false;
        }
        strictly |= self.taps < other.taps;
        strictly
    }
}

/// The frontier over already-evaluated objective vectors: indices of
/// every non-dominated entry, in input order. Ties (identical vectors)
/// all stay on the frontier. Callers that already hold the objectives
/// (the leaderboard ranks with them too) use this directly so the
/// O(n²) dominance sweep runs on evaluations done once.
pub fn frontier_indices(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, oj)| j != i && oj.dominates(&objectives[i]))
        })
        .collect()
}

/// Computes the Pareto frontier: indices (into `records`) of every
/// non-dominated survivor, in input order, with the evaluated
/// objectives.
///
/// # Errors
///
/// Propagates objective-evaluation errors.
pub fn pareto_front(
    records: &[SurvivorRecord],
    cfg: &CampaignConfig,
) -> Result<Vec<(usize, Objectives)>> {
    let objectives: Vec<Objectives> = records
        .iter()
        .map(|r| Objectives::evaluate(r, cfg))
        .collect::<Result<_>>()?;
    Ok(frontier_indices(&objectives)
        .into_iter()
        .map(|i| (i, objectives[i].clone()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(hds: &[Option<u32>], p_ud: &[f64], taps: u32) -> Objectives {
        Objectives {
            hds: hds.to_vec(),
            p_ud: p_ud.to_vec(),
            taps,
        }
    }

    #[test]
    fn dominance_is_strict_and_directional() {
        let a = obj(&[Some(6), Some(4)], &[1e-12], 5);
        let b = obj(&[Some(6), Some(4)], &[1e-12], 7);
        assert!(a.dominates(&b), "fewer taps, all else equal");
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "equality is not dominance");
        // Trade-off: better HD vs fewer taps — neither dominates.
        let hd = obj(&[Some(8), Some(6)], &[1e-12], 10);
        let cheap = obj(&[Some(4), Some(4)], &[1e-12], 3);
        assert!(!hd.dominates(&cheap) && !cheap.dominates(&hd));
        // None (HD above explored weights) outranks any finite HD.
        let hi = obj(&[None], &[0.0], 5);
        let lo = obj(&[Some(12)], &[0.0], 5);
        assert!(hi.dominates(&lo));
        // Lower P_ud dominates.
        let clean = obj(&[Some(4)], &[1e-15, 1e-18], 5);
        let noisy = obj(&[Some(4)], &[1e-12, 1e-14], 5);
        assert!(clean.dominates(&noisy));
        assert!(!noisy.dominates(&clean));
    }

    #[test]
    fn frontier_on_a_real_small_campaign() {
        use crate::campaign::Mode;
        let cfg = CampaignConfig {
            width: 8,
            shards: 1,
            seed: 1,
            mode: Mode::Exhaustive,
            min_hd: 3,
            target_lengths: vec![8, 24],
            ber_grid: vec![1e-4],
            max_weight: 8,
        };
        let mut records = Vec::new();
        for g in cfg.space().iter_all() {
            if g.koopman() > g.reciprocal().koopman() {
                continue;
            }
            if let Some(rec) = SurvivorRecord::screen(&g, &cfg).unwrap() {
                records.push(rec);
            }
        }
        assert!(records.len() > 10, "enough survivors to be interesting");
        let front = pareto_front(&records, &cfg).unwrap();
        assert!(!front.is_empty() && front.len() < records.len());
        // Frontier soundness: no member is dominated by any survivor.
        let all: Vec<Objectives> = records
            .iter()
            .map(|r| Objectives::evaluate(r, &cfg).unwrap())
            .collect();
        for (i, oi) in &front {
            assert!(!all.iter().any(|o| o.dominates(oi)), "index {i} dominated");
        }
        // Completeness: every non-member is dominated by someone.
        let member: std::collections::HashSet<usize> = front.iter().map(|(i, _)| *i).collect();
        for (i, o) in all.iter().enumerate() {
            if !member.contains(&i) {
                assert!(
                    all.iter().any(|other| other.dominates(o)),
                    "index {i} excluded but undominated"
                );
            }
        }
    }
}
