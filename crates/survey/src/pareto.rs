//! Pareto selection over the survivor stream.
//!
//! A survey does not have one winner: HD at each target length, the
//! undetected-error probability across the BER grid, and implementation
//! cost pull in different directions (the paper itself keeps 802.3 for
//! compatibility, proposes `0xBA0DC66B` for HD, and singles out
//! `0x90022004`/`0x80108400` for hardware cost). The frontier keeps
//! every polynomial not beaten *everywhere* by some other survivor.

use crate::campaign::{CampaignConfig, SurvivorRecord};
use crate::Result;
use crc_hd::distribution::distribution;
use crc_hd::GenPoly;

/// Which P_ud computation feeds the objective vector.
///
/// The default [`PudAxis::Truncated`] is the paper's own methodology —
/// `W₂..W₄` times per-weight pattern probabilities, cheap enough to
/// evaluate from the survivor record alone and byte-stable across
/// releases (the golden leaderboard pins it). [`PudAxis::Exact`]
/// replaces the truncation with the full weight distribution from
/// [`crc_hd::distribution`]: every weight contributes, so the curve
/// stays meaningful at high BER where the weight-5+ tail dominates, and
/// extends to P_ud ≤ 1e-30 where the truncated form has nothing left.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PudAxis {
    /// `W₂..W₄` truncation (the paper's Figure 1 methodology).
    #[default]
    Truncated,
    /// Full-distribution P_ud at the reference length.
    Exact,
}

/// The exact P_ud curve of one survivor over the config's BER grid,
/// computed once from the full weight distribution at the reference
/// length.
///
/// # Errors
///
/// Propagates [`crc_hd::Error`] from polynomial reconstruction or a
/// distribution whose cost estimate exceeds the default budget.
pub fn exact_pud_curve(rec: &SurvivorRecord, cfg: &CampaignConfig) -> Result<Vec<f64>> {
    let g = GenPoly::from_koopman(rec.width, rec.koopman)?;
    let dist = distribution(&g, cfg.ref_len())?;
    Ok(cfg.ber_grid.iter().map(|&b| dist.p_ud(b)).collect())
}

/// The objective vector of one survivor: HD per target length
/// (maximize), P_ud per grid BER at the reference length (minimize),
/// feedback taps (minimize).
#[derive(Debug, Clone, PartialEq)]
pub struct Objectives {
    /// `hd_at` each `target_lengths` entry; `None` means above every
    /// explored weight — the strongest possible value.
    pub hds: Vec<Option<u32>>,
    /// `P_ud` at each `ber_grid` entry.
    pub p_ud: Vec<f64>,
    /// Feedback taps (engine cost).
    pub taps: u32,
}

impl Objectives {
    /// Evaluates the vector for one record under one config.
    ///
    /// # Errors
    ///
    /// Propagates profile-reconstruction errors (corrupt records).
    pub fn evaluate(rec: &SurvivorRecord, cfg: &CampaignConfig) -> Result<Objectives> {
        Self::evaluate_with(rec, cfg, PudAxis::Truncated)
    }

    /// Evaluates the vector with an explicit choice of P_ud axis.
    ///
    /// # Errors
    ///
    /// As [`Objectives::evaluate`]; additionally distribution errors
    /// under [`PudAxis::Exact`].
    pub fn evaluate_with(
        rec: &SurvivorRecord,
        cfg: &CampaignConfig,
        axis: PudAxis,
    ) -> Result<Objectives> {
        let profile = rec.profile(cfg.ref_len())?;
        let p_ud = match axis {
            PudAxis::Truncated => cfg.ber_grid.iter().map(|&b| rec.p_ud(b)).collect(),
            PudAxis::Exact => exact_pud_curve(rec, cfg)?,
        };
        Ok(Objectives {
            hds: cfg
                .target_lengths
                .iter()
                .map(|&n| profile.hd_at(n))
                .collect(),
            p_ud,
            taps: rec.taps,
        })
    }

    /// HD as a totally ordered rank: `None` (above every explored
    /// weight) outranks any finite value.
    fn hd_rank(hd: Option<u32>) -> u32 {
        hd.unwrap_or(u32::MAX)
    }

    /// True when `self` dominates `other`: at least as good on every
    /// axis and strictly better on at least one.
    pub fn dominates(&self, other: &Objectives) -> bool {
        debug_assert_eq!(self.hds.len(), other.hds.len());
        debug_assert_eq!(self.p_ud.len(), other.p_ud.len());
        let mut strictly = false;
        for (a, b) in self.hds.iter().zip(&other.hds) {
            let (a, b) = (Self::hd_rank(*a), Self::hd_rank(*b));
            if a < b {
                return false;
            }
            strictly |= a > b;
        }
        for (a, b) in self.p_ud.iter().zip(&other.p_ud) {
            if a > b {
                return false;
            }
            strictly |= a < b;
        }
        if self.taps > other.taps {
            return false;
        }
        strictly |= self.taps < other.taps;
        strictly
    }
}

/// The frontier over already-evaluated objective vectors: indices of
/// every non-dominated entry, in input order. Ties (identical vectors)
/// all stay on the frontier. Callers that already hold the objectives
/// (the leaderboard ranks with them too) use this directly so the
/// O(n²) dominance sweep runs on evaluations done once.
pub fn frontier_indices(objectives: &[Objectives]) -> Vec<usize> {
    (0..objectives.len())
        .filter(|&i| {
            !objectives
                .iter()
                .enumerate()
                .any(|(j, oj)| j != i && oj.dominates(&objectives[i]))
        })
        .collect()
}

/// Computes the Pareto frontier: indices (into `records`) of every
/// non-dominated survivor, in input order, with the evaluated
/// objectives.
///
/// # Errors
///
/// Propagates objective-evaluation errors.
pub fn pareto_front(
    records: &[SurvivorRecord],
    cfg: &CampaignConfig,
) -> Result<Vec<(usize, Objectives)>> {
    pareto_front_with(records, cfg, PudAxis::Truncated)
}

/// [`pareto_front`] with an explicit P_ud axis.
///
/// # Errors
///
/// As [`pareto_front`]; additionally distribution errors under
/// [`PudAxis::Exact`].
pub fn pareto_front_with(
    records: &[SurvivorRecord],
    cfg: &CampaignConfig,
    axis: PudAxis,
) -> Result<Vec<(usize, Objectives)>> {
    let objectives: Vec<Objectives> = records
        .iter()
        .map(|r| Objectives::evaluate_with(r, cfg, axis))
        .collect::<Result<_>>()?;
    Ok(frontier_indices(&objectives)
        .into_iter()
        .map(|i| (i, objectives[i].clone()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(hds: &[Option<u32>], p_ud: &[f64], taps: u32) -> Objectives {
        Objectives {
            hds: hds.to_vec(),
            p_ud: p_ud.to_vec(),
            taps,
        }
    }

    #[test]
    fn dominance_is_strict_and_directional() {
        let a = obj(&[Some(6), Some(4)], &[1e-12], 5);
        let b = obj(&[Some(6), Some(4)], &[1e-12], 7);
        assert!(a.dominates(&b), "fewer taps, all else equal");
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a), "equality is not dominance");
        // Trade-off: better HD vs fewer taps — neither dominates.
        let hd = obj(&[Some(8), Some(6)], &[1e-12], 10);
        let cheap = obj(&[Some(4), Some(4)], &[1e-12], 3);
        assert!(!hd.dominates(&cheap) && !cheap.dominates(&hd));
        // None (HD above explored weights) outranks any finite HD.
        let hi = obj(&[None], &[0.0], 5);
        let lo = obj(&[Some(12)], &[0.0], 5);
        assert!(hi.dominates(&lo));
        // Lower P_ud dominates.
        let clean = obj(&[Some(4)], &[1e-15, 1e-18], 5);
        let noisy = obj(&[Some(4)], &[1e-12, 1e-14], 5);
        assert!(clean.dominates(&noisy));
        assert!(!noisy.dominates(&clean));
    }

    #[test]
    fn exact_axis_brackets_the_truncated_curve() {
        use crate::campaign::Mode;
        let cfg = CampaignConfig {
            width: 8,
            shards: 1,
            seed: 1,
            mode: Mode::Exhaustive,
            min_hd: 3,
            target_lengths: vec![8, 24],
            ber_grid: vec![1e-4, 1e-7],
            max_weight: 8,
        };
        let mut records = Vec::new();
        for g in cfg.space().iter_all() {
            if g.koopman() > g.reciprocal().koopman() {
                continue;
            }
            if let Some(rec) = SurvivorRecord::screen(&g, &cfg).unwrap() {
                records.push(rec);
            }
        }
        assert!(records.len() > 10);
        // The truncated curve drops every weight ≥ 5 term (every
        // weight ≥ 3 term when the record carries no W₃/W₄), so the
        // exact value sits above it by at most Σ_{k≥c} Wₖ εᵏ ≤ 2ⁿ · εᶜ.
        let n = cfg.ref_len();
        for rec in &records {
            let exact = exact_pud_curve(rec, &cfg).unwrap();
            let cutoff = if rec.w34.is_some() { 5 } else { 3 };
            for (&ber, &e) in cfg.ber_grid.iter().zip(&exact) {
                let t = rec.p_ud(ber);
                assert!(
                    t <= e * (1.0 + 1e-9),
                    "poly {:#x} ber {ber}: truncated {t} above exact {e}",
                    rec.koopman
                );
                let tail = (0..cutoff).fold((1u64 << n) as f64, |acc, _| acc * ber);
                assert!(
                    e - t <= tail,
                    "poly {:#x} ber {ber}: gap {} above tail bound {tail}",
                    rec.koopman,
                    e - t
                );
            }
        }
        // The exact frontier is sound under the same dominance sweep.
        let front = pareto_front_with(&records, &cfg, PudAxis::Exact).unwrap();
        assert!(!front.is_empty() && front.len() < records.len());
        let all: Vec<Objectives> = records
            .iter()
            .map(|r| Objectives::evaluate_with(r, &cfg, PudAxis::Exact).unwrap())
            .collect();
        for (i, oi) in &front {
            assert!(!all.iter().any(|o| o.dominates(oi)), "index {i} dominated");
        }
    }

    #[test]
    fn frontier_on_a_real_small_campaign() {
        use crate::campaign::Mode;
        let cfg = CampaignConfig {
            width: 8,
            shards: 1,
            seed: 1,
            mode: Mode::Exhaustive,
            min_hd: 3,
            target_lengths: vec![8, 24],
            ber_grid: vec![1e-4],
            max_weight: 8,
        };
        let mut records = Vec::new();
        for g in cfg.space().iter_all() {
            if g.koopman() > g.reciprocal().koopman() {
                continue;
            }
            if let Some(rec) = SurvivorRecord::screen(&g, &cfg).unwrap() {
                records.push(rec);
            }
        }
        assert!(records.len() > 10, "enough survivors to be interesting");
        let front = pareto_front(&records, &cfg).unwrap();
        assert!(!front.is_empty() && front.len() < records.len());
        // Frontier soundness: no member is dominated by any survivor.
        let all: Vec<Objectives> = records
            .iter()
            .map(|r| Objectives::evaluate(r, &cfg).unwrap())
            .collect();
        for (i, oi) in &front {
            assert!(!all.iter().any(|o| o.dominates(oi)), "index {i} dominated");
        }
        // Completeness: every non-member is dominated by someone.
        let member: std::collections::HashSet<usize> = front.iter().map(|(i, _)| *i).collect();
        for (i, o) in all.iter().enumerate() {
            if !member.contains(&i) {
                assert!(
                    all.iter().any(|other| other.dominates(o)),
                    "index {i} excluded but undominated"
                );
            }
        }
    }
}
