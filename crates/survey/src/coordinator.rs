//! The campaign coordinator: owns the manifest, leases shards, merges
//! submissions.
//!
//! A coordinator wraps an open [`Campaign`] and answers the protocol of
//! [`crate::transport`]:
//!
//! * [`Request::Hello`] → the campaign config + content hash, so workers
//!   need no local copy of anything but the queue address;
//! * [`Request::Lease`] → the lowest-numbered pending, unleased shard,
//!   stamped with a lease deadline. A worker that dies mid-lease simply
//!   stops renewing: once the deadline passes the shard is handed to the
//!   next asker. Because unit results are pure in `(config, shard id)`,
//!   re-running a shard is always safe;
//! * [`Request::Submit`] → the shard log is parsed and recorded through
//!   [`Campaign::record_shard`] — the exact write path (and therefore
//!   the exact bytes) of a single-host run. Duplicate submissions from
//!   zombie workers are idempotent; conflicting bytes are refused.
//!
//! All decisions live in [`Coordinator::handle`], which takes the
//! current time as an argument so lease expiry is testable without
//! sleeping. [`Coordinator::serve`] is the production loop: poll the
//! transport, sleep when idle, exit shortly after the campaign
//! completes.

use crate::campaign::ShardResult;
use crate::engine::Campaign;
use crate::transport::{Reply, Request, ServeTransport};
use crate::Result;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Backoff hint sent with [`Reply::Wait`].
const WAIT_BACKOFF_MS: u64 = 100;

/// Tallies of coordinator activity, reported when [`Coordinator::serve`]
/// returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordSummary {
    /// Shard logs recorded for the first time.
    pub shards_recorded: u64,
    /// Idempotent duplicate submissions (byte-identical resubmits).
    pub duplicates: u64,
    /// Leases that expired and were returned to the pending pool.
    pub leases_expired: u64,
    /// Submissions refused (wrong campaign, conflicting bytes,
    /// malformed logs).
    pub refusals: u64,
}

/// The coordinator state machine.
#[derive(Debug)]
pub struct Coordinator {
    campaign: Campaign,
    lease_ttl: Duration,
    leases: HashMap<u64, (String, Instant)>,
    summary: CoordSummary,
}

impl Coordinator {
    /// Wraps `campaign`; shards leased out and not submitted within
    /// `lease_ttl` are re-issued.
    pub fn new(campaign: Campaign, lease_ttl: Duration) -> Coordinator {
        Coordinator {
            campaign,
            lease_ttl,
            leases: HashMap::new(),
            summary: CoordSummary::default(),
        }
    }

    /// The underlying campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Activity counters so far.
    pub fn summary(&self) -> CoordSummary {
        self.summary
    }

    /// Shards currently leased out, ascending.
    pub fn leased_shards(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.leases.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn expire_leases(&mut self, now: Instant) {
        let before = self.leases.len();
        self.leases.retain(|_, (_, deadline)| *deadline > now);
        self.summary.leases_expired += (before - self.leases.len()) as u64;
    }

    /// Answers one request as of `now` (injected for testable expiry).
    pub fn handle(&mut self, req: Request, now: Instant) -> Reply {
        match req {
            Request::Hello { .. } => Reply::Welcome {
                config: self.campaign.config().to_json(),
                config_hash: format!("{:#018x}", self.campaign.config().content_hash()),
            },
            Request::Lease { worker } => {
                if self.campaign.is_complete() {
                    return Reply::Done;
                }
                self.expire_leases(now);
                let next = self
                    .campaign
                    .pending_shards()
                    .into_iter()
                    .find(|s| !self.leases.contains_key(s));
                match next {
                    Some(shard) => {
                        self.leases.insert(shard, (worker, now + self.lease_ttl));
                        let unit = self.campaign.config().work_units()[shard as usize];
                        Reply::Assign {
                            shard,
                            start: unit.start,
                            end: unit.end,
                        }
                    }
                    None => Reply::Wait {
                        backoff_ms: WAIT_BACKOFF_MS,
                    },
                }
            }
            Request::Submit { worker: _, log } => {
                let hash = self.campaign.config().content_hash();
                let recorded = ShardResult::from_json(&log, hash)
                    .and_then(|r| Ok((r.unit.shard, self.campaign.record_shard(&r)?)));
                match recorded {
                    Ok((shard, fresh)) => {
                        self.leases.remove(&shard);
                        if fresh {
                            self.summary.shards_recorded += 1;
                        } else {
                            self.summary.duplicates += 1;
                        }
                        Reply::Accepted {
                            shard,
                            fresh,
                            complete: self.campaign.is_complete(),
                        }
                    }
                    Err(e) => {
                        self.summary.refusals += 1;
                        Reply::Refused {
                            reason: e.to_string(),
                        }
                    }
                }
            }
        }
    }

    /// Serves `transport` until the campaign completes, then lingers
    /// for `linger` so workers parked in [`Reply::Wait`] backoff can
    /// still learn it is [`Reply::Done`]. Sleeps `poll` between empty
    /// polls.
    ///
    /// # Errors
    ///
    /// Transport-level failures from
    /// [`ServeTransport::serve_one`]; per-request problems are answered
    /// with [`Reply::Refused`] and never end the loop.
    pub fn serve(
        &mut self,
        transport: &mut dyn ServeTransport,
        poll: Duration,
        linger: Duration,
    ) -> Result<CoordSummary> {
        let mut complete_since: Option<Instant> = None;
        loop {
            let served = transport.serve_one(&mut |req| self.handle(req, Instant::now()))?;
            if self.campaign.is_complete() {
                let since = *complete_since.get_or_insert_with(Instant::now);
                if !served && since.elapsed() >= linger {
                    return Ok(self.summary);
                }
            }
            if !served {
                std::thread::sleep(poll);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, Mode};
    use crate::engine::{evaluate_unit, UnitScratch};
    use crate::json::Json;

    fn test_config() -> CampaignConfig {
        CampaignConfig {
            width: 10,
            shards: 3,
            seed: 11,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![16, 64],
            ber_grid: vec![1e-5],
            max_weight: 6,
        }
    }

    fn fresh_coordinator(tag: &str, ttl: Duration) -> (Coordinator, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("crc-coord-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::create(&dir, test_config()).unwrap();
        (Coordinator::new(campaign, ttl), dir)
    }

    fn shard_log(config: &CampaignConfig, shard: u64) -> Json {
        let unit = config.work_units()[shard as usize];
        let result = evaluate_unit(config, unit, &mut UnitScratch::default()).unwrap();
        result.to_json(config.content_hash())
    }

    #[test]
    fn leases_expire_and_reissue() {
        let (mut coord, dir) = fresh_coordinator("expire", Duration::from_secs(5));
        let t0 = Instant::now();
        // Worker a takes shard 0 and dies.
        let r = coord.handle(Request::Lease { worker: "a".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        // While the lease lives, worker b is routed around shard 0.
        let r = coord.handle(Request::Lease { worker: "b".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 1, .. }));
        let r = coord.handle(Request::Lease { worker: "b".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 2, .. }));
        let r = coord.handle(Request::Lease { worker: "b".into() }, t0);
        assert!(matches!(r, Reply::Wait { .. }));
        // Past the deadline, shard 0 is re-issued.
        let late = t0 + Duration::from_secs(6);
        let r = coord.handle(Request::Lease { worker: "b".into() }, late);
        assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        assert_eq!(coord.summary().leases_expired, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_submissions_are_idempotent() {
        let (mut coord, dir) = fresh_coordinator("dup", Duration::from_secs(5));
        let config = coord.campaign().config().clone();
        let now = Instant::now();
        let log = shard_log(&config, 1);
        let r = coord.handle(
            Request::Submit {
                worker: "a".into(),
                log: log.clone(),
            },
            now,
        );
        assert_eq!(
            r,
            Reply::Accepted {
                shard: 1,
                fresh: true,
                complete: false
            }
        );
        // The zombie resubmits the identical unit: accepted, not fresh,
        // artifacts untouched.
        let before = std::fs::read_to_string(coord.campaign().shard_log_path(1)).unwrap();
        let r = coord.handle(
            Request::Submit {
                worker: "zombie".into(),
                log,
            },
            now,
        );
        assert_eq!(
            r,
            Reply::Accepted {
                shard: 1,
                fresh: false,
                complete: false
            }
        );
        let after = std::fs::read_to_string(coord.campaign().shard_log_path(1)).unwrap();
        assert_eq!(before, after);
        assert_eq!(coord.summary().duplicates, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_or_foreign_submissions_are_refused() {
        let (mut coord, dir) = fresh_coordinator("refuse", Duration::from_secs(5));
        let now = Instant::now();
        // A log from a different campaign (wrong hash) is refused.
        let mut other = test_config();
        other.seed = 999;
        let foreign = shard_log(&other, 0);
        let r = coord.handle(
            Request::Submit {
                worker: "a".into(),
                log: foreign,
            },
            now,
        );
        assert!(matches!(r, Reply::Refused { .. }));
        assert_eq!(coord.summary().refusals, 1);
        assert_eq!(coord.campaign().pending_shards(), vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_protocol_completes_a_campaign() {
        let (mut coord, dir) = fresh_coordinator("full", Duration::from_secs(60));
        let now = Instant::now();
        let Reply::Welcome {
            config,
            config_hash,
        } = coord.handle(Request::Hello { worker: "w".into() }, now)
        else {
            panic!("expected welcome")
        };
        let config = CampaignConfig::from_json(&config).unwrap();
        assert_eq!(config_hash, format!("{:#018x}", config.content_hash()));
        let mut scratch = UnitScratch::default();
        loop {
            match coord.handle(Request::Lease { worker: "w".into() }, Instant::now()) {
                Reply::Assign { shard, .. } => {
                    let unit = config.work_units()[shard as usize];
                    let result = evaluate_unit(&config, unit, &mut scratch).unwrap();
                    let r = coord.handle(
                        Request::Submit {
                            worker: "w".into(),
                            log: result.to_json(config.content_hash()),
                        },
                        Instant::now(),
                    );
                    assert!(matches!(r, Reply::Accepted { fresh: true, .. }));
                }
                Reply::Done => break,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(coord.campaign().is_complete());
        assert_eq!(coord.summary().shards_recorded, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
