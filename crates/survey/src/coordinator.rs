//! The campaign coordinator: owns the manifest, leases shards, merges
//! submissions.
//!
//! A coordinator wraps an open [`Campaign`] and answers the protocol of
//! [`crate::transport`]:
//!
//! * [`Request::Hello`] → the campaign config + content hash, so workers
//!   need no local copy of anything but the queue address;
//! * [`Request::Lease`] → the lowest-numbered pending, unleased shard,
//!   stamped with a lease deadline. A worker that dies mid-lease simply
//!   stops renewing: once the deadline passes the shard is handed to the
//!   next asker. Because unit results are pure in `(config, shard id)`,
//!   re-running a shard is always safe;
//! * [`Request::Submit`] → the shard log is parsed and recorded through
//!   [`Campaign::record_shard`] — the exact write path (and therefore
//!   the exact bytes) of a single-host run. Duplicate submissions from
//!   zombie workers are idempotent; conflicting bytes are refused.
//!
//! All decisions live in [`Coordinator::handle`], which takes the
//! current time as an argument so lease expiry is testable without
//! sleeping. [`Coordinator::serve`] is the production loop: poll the
//! transport, sleep when idle, exit shortly after the campaign
//! completes.
//!
//! # Fault tolerance
//!
//! Three mechanisms keep a flaky fleet from wedging the campaign:
//!
//! * **Lease re-grant**: a worker that asks for a lease while already
//!   holding one (its `Assign` reply was lost in flight) gets its own
//!   lowest-numbered shard handed back with a fresh deadline, instead
//!   of accumulating leases it does not know about.
//! * **Poison-shard quarantine**: a shard whose lease expires
//!   [`Coordinator::with_quarantine_after`] times is parked and never
//!   re-issued — a work unit that reliably kills workers must not take
//!   the whole fleet down with it. Quarantined shards are listed in
//!   status reports and `coordinator-summary.json`. A late submission
//!   of a parked shard is still accepted (work units are pure, so the
//!   bytes are trustworthy) and lifts the quarantine.
//! * **Degraded-terminal state**: when every still-pending shard is
//!   quarantined the campaign can no longer make progress;
//!   [`Coordinator::is_terminal`] turns true, leases answer
//!   [`Reply::Done`] so workers drain, and [`Coordinator::serve`]
//!   exits — with the quarantine on durable record rather than an
//!   eternal busy-wait.
//!
//! Coordinator restart needs no extra machinery: all durable state is
//! the checkpoint (manifest + shard logs), which [`Campaign::open`]
//! rebuilds, and workers treat a refused connection as retryable, so
//! they simply re-handshake when the new process comes up. Leases and
//! quarantine are session state and reset on restart — the worst case
//! is re-evaluating work, never corrupting it.

use crate::campaign::{ShardResult, FORMAT_VERSION};
use crate::engine::Campaign;
use crate::frame::WireStats;
use crate::json::Json;
use crate::transport::{LeaseInfo, Reply, Request, ServeTransport, StatusReport, WorkerHeartbeat};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Backoff hint sent with [`Reply::Wait`].
const WAIT_BACKOFF_MS: u64 = 100;

/// Default lease-expiry count that parks a shard in quarantine.
const DEFAULT_QUARANTINE_AFTER: u32 = 5;

/// Tallies of coordinator activity, reported when [`Coordinator::serve`]
/// returns and persisted to `coordinator-summary.json` in the campaign
/// directory (refreshed on idle/linger ticks and at shutdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoordSummary {
    /// Shard logs recorded for the first time.
    pub shards_recorded: u64,
    /// Idempotent duplicate submissions (byte-identical resubmits).
    pub duplicates: u64,
    /// Leases that expired and were returned to the pending pool.
    pub leases_expired: u64,
    /// Submissions refused (wrong campaign, conflicting bytes,
    /// malformed logs).
    pub refusals: u64,
}

/// Per-worker liveness, fed by every request the worker makes and
/// reported through [`Request::Status`].
#[derive(Debug, Clone, Copy)]
struct WorkerState {
    last_seen: Instant,
    last_submit: Option<Instant>,
    submitted: u64,
}

/// The coordinator state machine.
#[derive(Debug)]
pub struct Coordinator {
    campaign: Campaign,
    lease_ttl: Duration,
    leases: HashMap<u64, (String, Instant)>,
    /// Lease expiries per shard this session; at `quarantine_after` the
    /// shard is parked.
    expiry_counts: HashMap<u64, u32>,
    /// Shards parked after repeated lease expiry — never re-issued
    /// (`BTreeSet` so reports list them in shard order).
    quarantined: BTreeSet<u64>,
    /// Expiry count that parks a shard; 0 disables quarantine.
    quarantine_after: u32,
    /// Last wire-level framing snapshot from the serving transport.
    wire: WireStats,
    summary: CoordSummary,
    /// Workers seen this session, by name (`BTreeMap` so status reports
    /// list them in a stable order). Status observers are not tracked.
    workers: BTreeMap<String, WorkerState>,
    /// When this session handled its first request — the baseline for
    /// session rates and the ETA.
    started: Option<Instant>,
    /// Polynomials scanned across the shards recorded this session.
    scanned: u64,
    /// Survivors across the shards recorded this session.
    survivors: u64,
}

impl Coordinator {
    /// Wraps `campaign`; shards leased out and not submitted within
    /// `lease_ttl` are re-issued.
    pub fn new(campaign: Campaign, lease_ttl: Duration) -> Coordinator {
        Coordinator {
            campaign,
            lease_ttl,
            leases: HashMap::new(),
            expiry_counts: HashMap::new(),
            quarantined: BTreeSet::new(),
            quarantine_after: DEFAULT_QUARANTINE_AFTER,
            wire: WireStats::default(),
            summary: CoordSummary::default(),
            workers: BTreeMap::new(),
            started: None,
            scanned: 0,
            survivors: 0,
        }
    }

    /// Sets the lease-expiry count that parks a shard in quarantine
    /// (default 5); `0` disables quarantine entirely.
    pub fn with_quarantine_after(mut self, expiries: u32) -> Coordinator {
        self.quarantine_after = expiries;
        self
    }

    /// The underlying campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Shards currently parked in quarantine, ascending.
    pub fn quarantined_shards(&self) -> Vec<u64> {
        self.quarantined.iter().copied().collect()
    }

    /// Whether serving can stop: the campaign is complete, or it is
    /// degraded-terminal — every still-pending shard is quarantined, so
    /// no lease will ever be issued again.
    pub fn is_terminal(&self) -> bool {
        if self.campaign.is_complete() {
            return true;
        }
        !self.quarantined.is_empty()
            && self
                .campaign
                .pending_shards()
                .iter()
                .all(|s| self.quarantined.contains(s))
    }

    /// Activity counters so far.
    pub fn summary(&self) -> CoordSummary {
        self.summary
    }

    /// Shards currently leased out, ascending.
    pub fn leased_shards(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.leases.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn expire_leases(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, (_, deadline))| *deadline <= now)
            .map(|(&shard, _)| shard)
            .collect();
        for &shard in &expired {
            self.leases.remove(&shard);
            let count = self.expiry_counts.entry(shard).or_insert(0);
            *count += 1;
            if self.quarantine_after > 0 && *count >= self.quarantine_after {
                self.quarantined.insert(shard);
            }
        }
        let n = expired.len() as u64;
        self.summary.leases_expired += n;
        if n > 0 {
            if let Some(m) = crate::metrics::coord() {
                m.leases_expired.add(n);
                m.quarantined.set(self.quarantined.len() as u64);
            }
        }
    }

    /// Builds the live progress report behind [`Reply::Status`].
    pub fn status(&mut self, now: Instant) -> StatusReport {
        self.expire_leases(now);
        let (done, total) = self.campaign.progress();
        let mut leases: Vec<LeaseInfo> = self
            .leases
            .iter()
            .map(|(&shard, (worker, deadline))| LeaseInfo {
                shard,
                worker: worker.clone(),
                // The grant time is deadline - ttl; saturate against
                // clock weirdness rather than panic.
                age_ms: (now + self.lease_ttl)
                    .saturating_duration_since(*deadline)
                    .as_millis() as u64,
            })
            .collect();
        leases.sort_unstable_by_key(|l| l.shard);
        let workers = self
            .workers
            .iter()
            .map(|(name, w)| WorkerHeartbeat {
                name: name.clone(),
                seen_ms: now.saturating_duration_since(w.last_seen).as_millis() as u64,
                submitted: w.submitted,
                last_submit_ms: w
                    .last_submit
                    .map(|t| now.saturating_duration_since(t).as_millis() as u64),
            })
            .collect();
        // Session rate and ETA from the shard completion rate: elapsed
        // time is measured from the first request this session handled.
        let elapsed_ms = self
            .started
            .map(|t| now.saturating_duration_since(t).as_millis().max(1) as u64)
            .unwrap_or(1);
        let polys_per_s = self.scanned.saturating_mul(1_000) / elapsed_ms;
        let eta_ms = (self.summary.shards_recorded > 0)
            .then(|| (total - done).saturating_mul(elapsed_ms) / self.summary.shards_recorded);
        StatusReport {
            done,
            total,
            recorded: self.summary.shards_recorded,
            duplicates: self.summary.duplicates,
            leases_expired: self.summary.leases_expired,
            refusals: self.summary.refusals,
            scanned: self.scanned,
            survivors: self.survivors,
            polys_per_s,
            eta_ms,
            frames_rejected: self.wire.frames_rejected,
            quarantined: self.quarantined_shards(),
            leases,
            workers,
        }
    }

    /// Records the serving transport's latest wire-level framing
    /// snapshot, so status reports and the persisted summary carry the
    /// fault counters.
    pub fn set_wire_stats(&mut self, wire: WireStats) {
        self.wire = wire;
    }

    /// Answers one request as of `now` (injected for testable expiry).
    pub fn handle(&mut self, req: Request, now: Instant) -> Reply {
        self.started.get_or_insert(now);
        if let Some(m) = crate::metrics::coord() {
            m.requests.inc();
        }
        // Every worker request is a heartbeat; status observers are
        // read-only and stay out of the worker table.
        if !matches!(req, Request::Status { .. }) {
            self.workers
                .entry(req.worker().to_string())
                .and_modify(|w| w.last_seen = now)
                .or_insert(WorkerState {
                    last_seen: now,
                    last_submit: None,
                    submitted: 0,
                });
        }
        match req {
            Request::Hello { .. } => Reply::Welcome {
                config: self.campaign.config().to_json(),
                config_hash: format!("{:#018x}", self.campaign.config().content_hash()),
            },
            Request::Lease { worker } => {
                if self.campaign.is_complete() {
                    return Reply::Done;
                }
                self.expire_leases(now);
                let pending = self.campaign.pending_shards();
                let next = pending
                    .iter()
                    .copied()
                    .find(|s| !self.leases.contains_key(s) && !self.quarantined.contains(s));
                // No fresh shard: before parking the worker, re-grant
                // its own lowest outstanding lease — if its Assign
                // reply was lost in flight, this heals the loss without
                // waiting out a TTL expiry.
                let next = next.or_else(|| {
                    self.leases
                        .iter()
                        .filter(|(_, (w, _))| *w == worker)
                        .map(|(&shard, _)| shard)
                        .min()
                });
                match next {
                    Some(shard) => {
                        self.leases.insert(shard, (worker, now + self.lease_ttl));
                        let unit = self.campaign.config().work_units()[shard as usize];
                        Reply::Assign {
                            shard,
                            start: unit.start,
                            end: unit.end,
                        }
                    }
                    // Degraded-terminal: everything still pending is
                    // quarantined, so this worker will never get work —
                    // let it drain instead of spinning on Wait.
                    None if self.is_terminal() => Reply::Done,
                    None => Reply::Wait {
                        backoff_ms: WAIT_BACKOFF_MS,
                    },
                }
            }
            Request::Submit { worker, log } => {
                let hash = self.campaign.config().content_hash();
                let recorded = ShardResult::from_json(&log, hash).and_then(|r| {
                    let stats = (r.unit.shard, r.scanned, r.survivors.len() as u64);
                    let fresh = self.campaign.record_shard(&r)?;
                    Ok((stats, fresh))
                });
                match recorded {
                    Ok(((shard, scanned, survivors), fresh)) => {
                        self.leases.remove(&shard);
                        // A parked shard that still produced a valid
                        // log was not poison after all — lift the
                        // quarantine (the result bytes are pure in
                        // `(config, shard)`, so late work is as good as
                        // on-time work).
                        if self.quarantined.remove(&shard) {
                            self.expiry_counts.remove(&shard);
                            if let Some(m) = crate::metrics::coord() {
                                m.quarantined.set(self.quarantined.len() as u64);
                            }
                        }
                        if let Some(w) = self.workers.get_mut(&worker) {
                            w.last_submit = Some(now);
                            w.submitted += 1;
                        }
                        if fresh {
                            self.summary.shards_recorded += 1;
                            self.scanned += scanned;
                            self.survivors += survivors;
                        } else {
                            self.summary.duplicates += 1;
                        }
                        if let Some(m) = crate::metrics::coord() {
                            if fresh {
                                m.recorded.inc();
                            } else {
                                m.duplicates.inc();
                            }
                            m.shards_done.set(self.campaign.progress().0);
                        }
                        Reply::Accepted {
                            shard,
                            fresh,
                            complete: self.campaign.is_complete(),
                        }
                    }
                    Err(e) => {
                        self.summary.refusals += 1;
                        if let Some(m) = crate::metrics::coord() {
                            m.refusals.inc();
                        }
                        Reply::Refused {
                            reason: e.to_string(),
                        }
                    }
                }
            }
            Request::Status { .. } => Reply::Status(self.status(now)),
        }
    }

    /// Renders the durable session-summary document written alongside
    /// the campaign artifacts. Integers only; the config hash ties the
    /// document to its campaign, and campaign-lifetime progress
    /// (`done`/`total`) rides along so the file is useful after the
    /// process exits.
    pub fn summary_json(&self) -> Json {
        let (done, total) = self.campaign.progress();
        Json::obj([
            ("format", Json::Str("crc-survey-coordinator-summary".into())),
            ("version", Json::Int(FORMAT_VERSION)),
            (
                "config_hash",
                Json::Str(format!("{:#018x}", self.campaign.config().content_hash())),
            ),
            ("done", Json::Int(done)),
            ("total", Json::Int(total)),
            ("shards_recorded", Json::Int(self.summary.shards_recorded)),
            ("duplicates", Json::Int(self.summary.duplicates)),
            ("leases_expired", Json::Int(self.summary.leases_expired)),
            ("refusals", Json::Int(self.summary.refusals)),
            ("scanned", Json::Int(self.scanned)),
            ("survivors", Json::Int(self.survivors)),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|&s| Json::Int(s))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("frames_sent", Json::Int(self.wire.frames_sent)),
            ("frames_rejected", Json::Int(self.wire.frames_rejected)),
            ("retries_signalled", Json::Int(self.wire.retries_signalled)),
            ("chaos_injected", Json::Int(self.wire.chaos_injected)),
        ])
    }

    /// Persists [`Coordinator::summary_json`] to
    /// `coordinator-summary.json` in the campaign directory, atomically
    /// (temp + rename, like every other artifact).
    ///
    /// # Errors
    ///
    /// IO failures from the write.
    pub fn write_summary(&self) -> Result<()> {
        crate::engine::write_atomic(
            &self.campaign.dir().join("coordinator-summary.json"),
            &self.summary_json().render(),
        )
    }

    /// Serves `transport` until the campaign reaches a terminal state
    /// (complete, or degraded-terminal with every pending shard
    /// quarantined — see [`Coordinator::is_terminal`]), then lingers
    /// for `linger` so workers parked in [`Reply::Wait`] backoff can
    /// still learn it is [`Reply::Done`]. Sleeps `poll` between empty
    /// polls; idle ticks also expire leases, so quarantine progresses
    /// even when every worker is dead. The session summary is persisted
    /// to `coordinator-summary.json` on every idle/linger tick and once
    /// more before returning, so the counters survive the process.
    ///
    /// # Errors
    ///
    /// Transport-level failures from
    /// [`ServeTransport::serve_one`]; per-request problems are answered
    /// with [`Reply::Refused`] and never end the loop.
    pub fn serve(
        &mut self,
        transport: &mut dyn ServeTransport,
        poll: Duration,
        linger: Duration,
    ) -> Result<CoordSummary> {
        let mut complete_since: Option<Instant> = None;
        let mut persisted: Option<String> = None;
        loop {
            let served = transport.serve_one(&mut |req| self.handle(req, Instant::now()))?;
            self.wire = transport.wire_stats();
            if self.is_terminal() {
                let since = *complete_since.get_or_insert_with(Instant::now);
                if !served && since.elapsed() >= linger {
                    self.write_summary()?;
                    return Ok(self.summary);
                }
            } else {
                complete_since = None;
            }
            if !served {
                // Idle tick: expire leases so a fleet that died without
                // a word still drives quarantine forward…
                self.expire_leases(Instant::now());
                // …and persist the summary when it changed (cheap — the
                // document is a few hundred bytes and idle ticks are
                // already sleeping).
                let doc = self.summary_json().render();
                if persisted.as_deref() != Some(&doc) {
                    crate::engine::write_atomic(
                        &self.campaign.dir().join("coordinator-summary.json"),
                        &doc,
                    )?;
                    persisted = Some(doc);
                }
                std::thread::sleep(poll);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, Mode};
    use crate::engine::{evaluate_unit, UnitScratch};
    use crate::json::Json;

    fn test_config() -> CampaignConfig {
        CampaignConfig {
            width: 10,
            shards: 3,
            seed: 11,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![16, 64],
            ber_grid: vec![1e-5],
            max_weight: 6,
        }
    }

    fn fresh_coordinator(tag: &str, ttl: Duration) -> (Coordinator, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("crc-coord-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = Campaign::create(&dir, test_config()).unwrap();
        (Coordinator::new(campaign, ttl), dir)
    }

    fn shard_log(config: &CampaignConfig, shard: u64) -> Json {
        let unit = config.work_units()[shard as usize];
        let result = evaluate_unit(config, unit, &mut UnitScratch::default()).unwrap();
        result.to_json(config.content_hash())
    }

    #[test]
    fn leases_expire_and_reissue() {
        let (mut coord, dir) = fresh_coordinator("expire", Duration::from_secs(5));
        let t0 = Instant::now();
        // Worker a takes shard 0 and dies.
        let r = coord.handle(Request::Lease { worker: "a".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        // While the lease lives, worker b is routed around shard 0.
        let r = coord.handle(Request::Lease { worker: "b".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 1, .. }));
        let r = coord.handle(Request::Lease { worker: "b".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 2, .. }));
        // No fresh shard left: b gets its own lowest lease re-granted
        // (heals a lost Assign reply), not a Wait.
        let r = coord.handle(Request::Lease { worker: "b".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 1, .. }));
        // A worker with no leases of its own does wait.
        let r = coord.handle(Request::Lease { worker: "c".into() }, t0);
        assert!(matches!(r, Reply::Wait { .. }));
        // Past the deadline, shard 0 is re-issued.
        let late = t0 + Duration::from_secs(6);
        let r = coord.handle(Request::Lease { worker: "b".into() }, late);
        assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        assert_eq!(coord.summary().leases_expired, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_submissions_are_idempotent() {
        let (mut coord, dir) = fresh_coordinator("dup", Duration::from_secs(5));
        let config = coord.campaign().config().clone();
        let now = Instant::now();
        let log = shard_log(&config, 1);
        let r = coord.handle(
            Request::Submit {
                worker: "a".into(),
                log: log.clone(),
            },
            now,
        );
        assert_eq!(
            r,
            Reply::Accepted {
                shard: 1,
                fresh: true,
                complete: false
            }
        );
        // The zombie resubmits the identical unit: accepted, not fresh,
        // artifacts untouched.
        let before = std::fs::read_to_string(coord.campaign().shard_log_path(1)).unwrap();
        let r = coord.handle(
            Request::Submit {
                worker: "zombie".into(),
                log,
            },
            now,
        );
        assert_eq!(
            r,
            Reply::Accepted {
                shard: 1,
                fresh: false,
                complete: false
            }
        );
        let after = std::fs::read_to_string(coord.campaign().shard_log_path(1)).unwrap();
        assert_eq!(before, after);
        assert_eq!(coord.summary().duplicates, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn conflicting_or_foreign_submissions_are_refused() {
        let (mut coord, dir) = fresh_coordinator("refuse", Duration::from_secs(5));
        let now = Instant::now();
        // A log from a different campaign (wrong hash) is refused.
        let mut other = test_config();
        other.seed = 999;
        let foreign = shard_log(&other, 0);
        let r = coord.handle(
            Request::Submit {
                worker: "a".into(),
                log: foreign,
            },
            now,
        );
        assert!(matches!(r, Reply::Refused { .. }));
        assert_eq!(coord.summary().refusals, 1);
        assert_eq!(coord.campaign().pending_shards(), vec![0, 1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_protocol_completes_a_campaign() {
        let (mut coord, dir) = fresh_coordinator("full", Duration::from_secs(60));
        let now = Instant::now();
        let Reply::Welcome {
            config,
            config_hash,
        } = coord.handle(Request::Hello { worker: "w".into() }, now)
        else {
            panic!("expected welcome")
        };
        let config = CampaignConfig::from_json(&config).unwrap();
        assert_eq!(config_hash, format!("{:#018x}", config.content_hash()));
        let mut scratch = UnitScratch::default();
        loop {
            match coord.handle(Request::Lease { worker: "w".into() }, Instant::now()) {
                Reply::Assign { shard, .. } => {
                    let unit = config.work_units()[shard as usize];
                    let result = evaluate_unit(&config, unit, &mut scratch).unwrap();
                    let r = coord.handle(
                        Request::Submit {
                            worker: "w".into(),
                            log: result.to_json(config.content_hash()),
                        },
                        Instant::now(),
                    );
                    assert!(matches!(r, Reply::Accepted { fresh: true, .. }));
                }
                Reply::Done => break,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(coord.campaign().is_complete());
        assert_eq!(coord.summary().shards_recorded, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reports_heartbeats_leases_and_eta() {
        let (mut coord, dir) = fresh_coordinator("status", Duration::from_secs(60));
        let config = coord.campaign().config().clone();
        let t0 = Instant::now();

        // Before any work: no ETA, no workers, full campaign pending.
        let Reply::Status(empty) = coord.handle(
            Request::Status {
                worker: "watch1".into(),
            },
            t0,
        ) else {
            panic!("expected status reply")
        };
        assert_eq!((empty.done, empty.total), (0, 3));
        assert_eq!(empty.eta_ms, None);
        assert!(empty.workers.is_empty(), "observers are not workers");
        assert!(empty.leases.is_empty());

        // One lease outstanding, one shard submitted by another worker.
        let r = coord.handle(Request::Lease { worker: "a".into() }, t0);
        assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        let r = coord.handle(
            Request::Submit {
                worker: "b".into(),
                log: shard_log(&config, 1),
            },
            t0 + Duration::from_secs(2),
        );
        assert!(matches!(r, Reply::Accepted { fresh: true, .. }));

        let Reply::Status(s) = coord.handle(
            Request::Status {
                worker: "watch1".into(),
            },
            t0 + Duration::from_secs(4),
        ) else {
            panic!("expected status reply")
        };
        assert_eq!((s.done, s.total), (1, 3));
        assert_eq!(s.recorded, 1);
        assert!(s.scanned > 0);
        assert_eq!(s.leases.len(), 1);
        assert_eq!(s.leases[0].shard, 0);
        assert_eq!(s.leases[0].worker, "a");
        assert_eq!(s.leases[0].age_ms, 4_000);
        let names: Vec<&str> = s.workers.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, ["a", "b"], "sorted, observer excluded");
        assert_eq!(s.workers[1].submitted, 1);
        assert_eq!(s.workers[1].last_submit_ms, Some(2_000));
        assert_eq!(s.workers[0].last_submit_ms, None);
        // 2 shards remain at 1 shard per 4s of session time.
        assert_eq!(s.eta_ms, Some(8_000));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_expiries_quarantine_a_shard() {
        let (coord, dir) = fresh_coordinator("quarantine", Duration::from_secs(1));
        let mut coord = coord.with_quarantine_after(2);
        let config = coord.campaign().config().clone();
        let t0 = Instant::now();
        // Shard 0 expires twice under worker "sick" → parked.
        for round in 0..2u64 {
            let t = t0 + Duration::from_secs(3 * round);
            let r = coord.handle(
                Request::Lease {
                    worker: "sick".into(),
                },
                t,
            );
            assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        }
        let late = t0 + Duration::from_secs(10);
        // Next lease: shard 0 is quarantined, so shard 1 is issued.
        let r = coord.handle(
            Request::Lease {
                worker: "ok".into(),
            },
            late,
        );
        assert!(matches!(r, Reply::Assign { shard: 1, .. }));
        assert_eq!(coord.quarantined_shards(), vec![0]);
        assert_eq!(coord.summary().leases_expired, 2);
        assert!(!coord.is_terminal());

        // Status surfaces the quarantine.
        let Reply::Status(s) = coord.handle(
            Request::Status {
                worker: "watch1".into(),
            },
            late,
        ) else {
            panic!("expected status reply")
        };
        assert_eq!(s.quarantined, vec![0]);

        // Record everything but the parked shard: the campaign becomes
        // degraded-terminal and drains workers with Done.
        for shard in [1, 2] {
            let r = coord.handle(
                Request::Submit {
                    worker: "ok".into(),
                    log: shard_log(&config, shard),
                },
                late,
            );
            assert!(matches!(r, Reply::Accepted { fresh: true, .. }));
        }
        assert!(coord.is_terminal());
        assert!(!coord.campaign().is_complete());
        let r = coord.handle(
            Request::Lease {
                worker: "ok".into(),
            },
            late,
        );
        assert_eq!(r, Reply::Done);
        // The summary document names the parked shard.
        let doc = coord.summary_json();
        let q = doc.require("quarantined").unwrap().as_arr().unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].as_u64(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn late_submission_lifts_quarantine() {
        let (coord, dir) = fresh_coordinator("unquarantine", Duration::from_secs(1));
        let mut coord = coord.with_quarantine_after(1);
        let config = coord.campaign().config().clone();
        let t0 = Instant::now();
        let r = coord.handle(
            Request::Lease {
                worker: "slow".into(),
            },
            t0,
        );
        assert!(matches!(r, Reply::Assign { shard: 0, .. }));
        // One expiry parks it (quarantine_after = 1).
        let late = t0 + Duration::from_secs(5);
        let r = coord.handle(
            Request::Lease {
                worker: "other".into(),
            },
            late,
        );
        assert!(matches!(r, Reply::Assign { shard: 1, .. }));
        assert_eq!(coord.quarantined_shards(), vec![0]);
        // The slow worker finally submits shard 0: accepted, quarantine
        // lifted, campaign can complete fully.
        let r = coord.handle(
            Request::Submit {
                worker: "slow".into(),
                log: shard_log(&config, 0),
            },
            late,
        );
        assert!(matches!(r, Reply::Accepted { fresh: true, .. }));
        assert!(coord.quarantined_shards().is_empty());
        for shard in [1, 2] {
            coord.handle(
                Request::Submit {
                    worker: "other".into(),
                    log: shard_log(&config, shard),
                },
                late,
            );
        }
        assert!(coord.campaign().is_complete());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_persists_deterministically() {
        let (mut coord, dir) = fresh_coordinator("persist", Duration::from_secs(60));
        let config = coord.campaign().config().clone();
        let now = Instant::now();
        for shard in 0..3 {
            let r = coord.handle(
                Request::Submit {
                    worker: "w".into(),
                    log: shard_log(&config, shard),
                },
                now,
            );
            assert!(matches!(r, Reply::Accepted { .. }));
        }
        coord.write_summary().unwrap();
        let path = dir.join("coordinator-summary.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, coord.summary_json().render(), "written bytes match");
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.require("format").unwrap().as_str(),
            Some("crc-survey-coordinator-summary")
        );
        assert_eq!(doc.require("shards_recorded").unwrap().as_u64(), Some(3));
        assert_eq!(doc.require("done").unwrap().as_u64(), Some(3));
        assert_eq!(doc.require("total").unwrap().as_u64(), Some(3));
        assert!(doc.require("scanned").unwrap().as_u64().unwrap() > 0);
        // Re-writing produces identical bytes.
        coord.write_summary().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
