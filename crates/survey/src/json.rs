//! Minimal JSON reading and writing for campaign artifacts.
//!
//! The build environment carries no serialization framework, and the
//! checkpoint contract needs more than write-only output (the netsim
//! benchmark trail hand-writes its JSON because nothing ever reads it
//! back): a resumed campaign must *parse* `campaign.json` and the shard
//! logs it finds on disk. This module is the smallest JSON that supports
//! that — a value tree, a recursive-descent parser, and a writer with
//! fully deterministic output (insertion-ordered keys, two-space
//! indentation, shortest-round-trip float formatting), because the
//! resume-determinism guarantee is *byte* identity of artifacts.
//!
//! Numbers are split into [`Json::Int`] (unsigned integers, exact) and
//! [`Json::Num`] (everything else, `f64`): shard ids, lengths and
//! Koopman values must not take a trip through floating point, while
//! quantities that genuinely exceed `u64` (orders, weight counts) are
//! stored as decimal strings by the schema layer.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and reproduced verbatim.
    Obj(Vec<(String, Json)>),
}

/// Parse or schema errors, as a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds an object from key/value pairs (insertion order kept).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that errors with the key name when absent.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing key {key:?}")))
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact unsigned integer payload, if this is an `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// `as_u64` narrowed to `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The numeric payload widened to `f64` (from `Int` or `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline —
    /// byte-deterministic for a given value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_value(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no newline — the form the
    /// line-delimited transports ship (string escaping keeps embedded
    /// newlines out of the output). Parsing the result reproduces the
    /// value exactly, like [`Json::render`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Int(_) | Json::Num(_) | Json::Str(_) => {
                self.write_value(out, 0)
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_value(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                // Rust's shortest-round-trip Display is deterministic;
                // non-finite values have no JSON spelling.
                assert!(x.is_finite(), "non-finite number has no JSON form");
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars inline; arrays with any container
                // member go one-per-line for diffable shard logs.
                let nested = items
                    .iter()
                    .any(|v| matches!(v, Json::Arr(_) | Json::Obj(_)));
                if nested {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        indent(out, depth + 1);
                        v.write_value(out, depth + 1);
                        out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                    }
                    indent(out, depth);
                    out.push(']');
                } else {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write_value(out, depth);
                    }
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_value(out, depth + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A [`JsonError`] naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

/// Deepest container nesting the parser accepts. Campaign artifacts
/// nest four levels; the cap turns a corrupt or hostile file (e.g. a
/// megabyte of `[`) into a clean error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError("non-ascii \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError(format!("bad \\u escape {hex:?}")))?;
                        // Our artifacts never emit surrogate pairs; reject
                        // rather than mis-decode if one shows up.
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError(format!("surrogate \\u escape {hex:?}")))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                if b < 0x20 {
                    return err(format!("raw control character at byte {}", *pos));
                }
                // Consume one UTF-8 character (input came from a &str,
                // so the sequence is valid; length from the lead byte).
                let len = match b {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| JsonError("truncated UTF-8 sequence".into()))?;
                let c = std::str::from_utf8(chunk)
                    .map_err(|_| JsonError(format!("bad UTF-8 at byte {}", *pos)))?
                    .chars()
                    .next()
                    .expect("non-empty chunk");
                out.push(c);
                *pos += len;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    if text.is_empty() {
        return err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    match text.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(Json::Num(x)),
        _ => err(format!("bad number {text:?} at byte {start}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_campaign_shapes() {
        let doc = Json::obj([
            ("format", Json::Str("crc-survey-campaign".into())),
            ("version", Json::Int(1)),
            ("seed", Json::Int(u64::MAX)),
            ("ber", Json::Arr(vec![Json::Num(1e-5), Json::Num(1e-6)])),
            (
                "shards",
                Json::Arr(vec![
                    Json::obj([("id", Json::Int(0)), ("done", Json::Bool(true))]),
                    Json::obj([("id", Json::Int(1)), ("done", Json::Bool(false))]),
                ]),
            ),
            ("note", Json::Str("class {1,3,28}, \"quoted\"\nline".into())),
            ("nothing", Json::Null),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Render → parse → render is a fixed point (byte determinism).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let doc = Json::obj([
            ("type", Json::Str("submit".into())),
            ("note", Json::Str("line\nbreak".into())),
            ("ids", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            (
                "nested",
                Json::obj([("empty", Json::Arr(vec![])), ("obj", Json::obj([]))]),
            ),
            ("x", Json::Num(1.5)),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "{line:?}");
        assert_eq!(Json::parse(&line).unwrap(), doc);
    }

    #[test]
    fn integers_stay_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // Floats do not masquerade as integers.
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn accessors_and_require() {
        let v = Json::parse(r#"{"a": [1, 2], "b": "x", "c": true}"#).unwrap();
        assert_eq!(v.require("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.require("zzz").is_err());
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u32(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"\\q\"",
            "01x",
            "1 2",
            "nan",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // A corrupt artifact must produce a JsonError, never abort the
        // process (100k unclosed arrays would otherwise blow the stack).
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
        let closed = format!("{}{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&closed).is_err(), "past MAX_DEPTH");
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok(), "within MAX_DEPTH");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\there \"q\" back\\slash \u{1} newline\n end";
        let mut out = String::new();
        write_string(&mut out, s);
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(s));
        // \u escape parsing.
        assert_eq!(Json::parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }
}
