//! The remote worker loop: lease, evaluate, submit, repeat.
//!
//! A worker is stateless apart from its scratch buffers: it learns the
//! campaign configuration from the coordinator's
//! [`Reply::Welcome`], verifies the echoed content hash, and then runs
//! [`evaluate_unit`] — the exact code path of the single-host pool —
//! on every shard it leases. Crashing at any point is safe: an
//! unsubmitted lease expires at the coordinator and the shard is
//! re-issued; a shard submitted twice is idempotent because unit
//! results are pure in `(config, shard id)`.

use crate::campaign::CampaignConfig;
use crate::engine::{evaluate_unit, UnitScratch};
use crate::transport::{Reply, Request, WorkerTransport};
use crate::{Error, Result};
use std::time::{Duration, Instant};

/// Knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The worker's name (file-name safe; shows up in queue paths).
    pub name: String,
    /// Stop after submitting this many shards (`None` = run until the
    /// campaign is done) — the hook the fault-injection tests use to
    /// model a worker that walks away.
    pub max_shards: Option<u64>,
}

/// Tallies from one [`run_worker`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards evaluated and accepted (fresh or duplicate).
    pub shards_submitted: u64,
    /// Of those, how many the coordinator already had.
    pub duplicates: u64,
}

/// Runs the worker loop over `transport` until the coordinator says the
/// campaign is complete (or `max_shards` is reached).
///
/// # Errors
///
/// Transport failures, a config hash that does not match the config
/// document, a lease that disagrees with the config's own work units,
/// or a [`Reply::Refused`] submission — a refusal means this worker is
/// computing a different campaign than the coordinator is merging, so
/// continuing would only waste cycles.
pub fn run_worker(
    transport: &mut dyn WorkerTransport,
    opts: &WorkerOptions,
) -> Result<WorkerSummary> {
    let hello = transport.call(&Request::Hello {
        worker: opts.name.clone(),
    })?;
    let Reply::Welcome {
        config,
        config_hash,
    } = hello
    else {
        return Err(Error::Parse(format!("expected welcome, got {hello:?}")));
    };
    let config = CampaignConfig::from_json(&config)?;
    let expect = format!("{:#018x}", config.content_hash());
    if config_hash != expect {
        return Err(Error::Parse(format!(
            "coordinator's config hash {config_hash} does not match its config document ({expect})"
        )));
    }
    let units = config.work_units();
    let hash = config.content_hash();
    let mut scratch = UnitScratch::default();
    let mut summary = WorkerSummary::default();
    let t0 = Instant::now();
    let mut scanned = 0u64;
    loop {
        if opts
            .max_shards
            .is_some_and(|max| summary.shards_submitted >= max)
        {
            return Ok(summary);
        }
        match transport.call(&Request::Lease {
            worker: opts.name.clone(),
        })? {
            Reply::Assign { shard, start, end } => {
                let unit = *units.get(shard as usize).ok_or_else(|| {
                    Error::Parse(format!("leased shard {shard} outside the campaign"))
                })?;
                if (unit.start, unit.end) != (start, end) {
                    return Err(Error::Parse(format!(
                        "lease for shard {shard} covers {start}..{end}, config says {}..{}",
                        unit.start, unit.end
                    )));
                }
                let result = {
                    let span =
                        crate::metrics::engine().map(|m| telemetry::Span::start(&m.shard_us));
                    let r = evaluate_unit(&config, unit, &mut scratch)?;
                    if let Some(sp) = span {
                        sp.finish();
                    }
                    r
                };
                crate::metrics::observe_index(scratch.workspace());
                scanned += result.scanned;
                if let Some(m) = crate::metrics::worker() {
                    m.shards.inc();
                    let us = t0.elapsed().as_micros().max(1) as u64;
                    m.polys_per_s.set(scanned.saturating_mul(1_000_000) / us);
                }
                match transport.call(&Request::Submit {
                    worker: opts.name.clone(),
                    log: result.to_json(hash),
                })? {
                    Reply::Accepted {
                        fresh, complete, ..
                    } => {
                        summary.shards_submitted += 1;
                        if !fresh {
                            summary.duplicates += 1;
                        }
                        if complete {
                            return Ok(summary);
                        }
                    }
                    Reply::Refused { reason } => {
                        return Err(Error::Config(format!(
                            "coordinator refused shard {shard}: {reason}"
                        )));
                    }
                    other => {
                        return Err(Error::Parse(format!(
                            "expected accepted/refused, got {other:?}"
                        )))
                    }
                }
            }
            Reply::Wait { backoff_ms } => {
                std::thread::sleep(Duration::from_millis(backoff_ms.min(2_000)));
            }
            Reply::Done => return Ok(summary),
            other => {
                return Err(Error::Parse(format!(
                    "expected assign/wait/done, got {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, Mode};
    use crate::coordinator::Coordinator;
    use crate::engine::Campaign;
    use crate::transport::{FileQueueClient, FileQueueServer, ServeTransport};
    use std::time::Instant;

    #[test]
    fn worker_drives_a_campaign_over_the_file_queue() {
        let base = std::env::temp_dir().join(format!("crc-worker-fq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dir = base.join("campaign");
        let queue = base.join("queue");
        let config = CampaignConfig {
            width: 10,
            shards: 4,
            seed: 3,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![16, 64],
            ber_grid: vec![1e-5],
            max_weight: 6,
        };
        let campaign = Campaign::create(&dir, config).unwrap();
        let mut coord = Coordinator::new(campaign, Duration::from_secs(60));
        let mut server = FileQueueServer::new(&queue).unwrap();
        let coord_thread = std::thread::spawn(move || {
            while !coord.campaign().is_complete() {
                if !server
                    .serve_one(&mut |req| coord.handle(req, Instant::now()))
                    .unwrap()
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            coord.summary()
        });
        let mut client = FileQueueClient::new(&queue, "w1")
            .unwrap()
            .with_timing(Duration::from_millis(5), Duration::from_secs(30));
        let summary = run_worker(
            &mut client,
            &WorkerOptions {
                name: "w1".into(),
                max_shards: None,
            },
        )
        .unwrap();
        assert_eq!(summary.shards_submitted, 4);
        assert_eq!(summary.duplicates, 0);
        let coord_summary = coord_thread.join().unwrap();
        assert_eq!(coord_summary.shards_recorded, 4);
        let reopened = Campaign::open(&dir).unwrap();
        assert!(reopened.is_complete());
        let _ = std::fs::remove_dir_all(&base);
    }
}
