//! The remote worker loop: lease, evaluate, submit, repeat.
//!
//! A worker is stateless apart from its scratch buffers: it learns the
//! campaign configuration from the coordinator's
//! [`Reply::Welcome`], verifies the echoed content hash, and then runs
//! [`evaluate_unit`] — the exact code path of the single-host pool —
//! on every shard it leases. Crashing at any point is safe: an
//! unsubmitted lease expires at the coordinator and the shard is
//! re-issued; a shard submitted twice is idempotent because unit
//! results are pure in `(config, shard id)`.
//!
//! # Retry policy
//!
//! Every request goes through a [`RetryPolicy`]: transient failures
//! (transport errors classified retryable by
//! [`Error::is_retryable`] — timeouts, refused connections, CRC-damaged
//! frames — plus an explicit [`Reply::Retry`] from the far end) are
//! resent with capped exponential backoff and *decorrelated jitter*
//! (`sleep = min(cap, uniform(base, 3·prev))`), so a fleet knocked
//! loose by one coordinator hiccup does not stampede back in
//! lock-step. Only after `max_attempts` consecutive failures of the
//! same request does the worker give up. Resending is always safe:
//! `Hello`/`Lease`/`Status` are read-only and `Submit` is idempotent.
//! Permanent disagreements ([`Reply::Refused`], schema mismatches) stay
//! fatal — a resend cannot fix computing the wrong campaign.

use crate::campaign::CampaignConfig;
use crate::engine::{evaluate_unit, UnitScratch};
use crate::transport::{Reply, Request, WorkerTransport};
use crate::{Error, Result};
use gf2poly::SplitMix64;
use std::time::{Duration, Instant};

/// Backoff schedule for transient request failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First (and minimum) backoff sleep.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Attempts per request before giving up (at least 1).
    pub max_attempts: u32,
    /// Seed of the jitter stream (deterministic per worker; give each
    /// worker its own seed so their schedules decorrelate).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            max_attempts: 10,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Knobs for [`run_worker`].
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The worker's name (file-name safe; shows up in queue paths).
    pub name: String,
    /// Stop after submitting this many shards (`None` = run until the
    /// campaign is done) — the hook the fault-injection tests use to
    /// model a worker that walks away.
    pub max_shards: Option<u64>,
    /// Backoff schedule for transient request failures.
    pub retry: RetryPolicy,
}

/// Tallies from one [`run_worker`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Shards evaluated and accepted (fresh or duplicate).
    pub shards_submitted: u64,
    /// Of those, how many the coordinator already had.
    pub duplicates: u64,
    /// Requests resent after a transient failure or [`Reply::Retry`].
    pub retries: u64,
    /// [`Reply::Wait`] backoffs honoured.
    pub waits: u64,
}

/// Drives one request through the retry schedule.
struct Retrier {
    policy: RetryPolicy,
    rng: SplitMix64,
    retries: u64,
}

impl Retrier {
    fn new(policy: RetryPolicy) -> Retrier {
        Retrier {
            policy,
            rng: SplitMix64::new(policy.seed),
            retries: 0,
        }
    }

    /// Uniform draw in `[lo, hi]` milliseconds off the jitter stream.
    fn jitter_ms(&mut self, lo: u64, hi: u64) -> u64 {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        lo + self.rng.next_below(hi - lo + 1)
    }

    /// Calls `transport` until a non-retry reply arrives, a permanent
    /// error surfaces, or the attempt budget runs out.
    fn call(
        &mut self,
        transport: &mut dyn WorkerTransport,
        what: &str,
        req: &Request,
    ) -> Result<Reply> {
        let base_ms = self.policy.base.as_millis().max(1) as u64;
        let cap_ms = self.policy.cap.as_millis().max(1) as u64;
        let mut prev_ms = base_ms;
        let max_attempts = self.policy.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            let failure = match transport.call(req) {
                Ok(Reply::Retry { reason }) => format!("far end asked for a resend: {reason}"),
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_retryable() => e.to_string(),
                Err(e) => return Err(e),
            };
            if attempt == max_attempts {
                return Err(Error::Io(format!(
                    "{what} failed after {max_attempts} attempts; last failure: {failure}"
                )));
            }
            self.retries += 1;
            if let Some(m) = crate::metrics::worker() {
                m.retries.inc();
            }
            // Decorrelated jitter: each sleep is drawn uniformly from
            // [base, 3·previous], capped — backoff grows on average but
            // two workers never sync up.
            prev_ms = self
                .jitter_ms(base_ms, prev_ms.saturating_mul(3).min(cap_ms))
                .min(cap_ms);
            std::thread::sleep(Duration::from_millis(prev_ms));
        }
        unreachable!("loop returns on the last attempt");
    }
}

/// Runs the worker loop over `transport` until the coordinator says the
/// campaign is complete (or `max_shards` is reached).
///
/// # Errors
///
/// A transport failure that outlives the retry schedule, a config hash
/// that does not match the config document, a lease that disagrees with
/// the config's own work units, or a [`Reply::Refused`] submission — a
/// refusal means this worker is computing a different campaign than the
/// coordinator is merging, so continuing would only waste cycles.
/// Transient failures (retryable errors, [`Reply::Retry`]) are resent
/// under [`WorkerOptions::retry`] and never surface unless the budget
/// runs dry.
pub fn run_worker(
    transport: &mut dyn WorkerTransport,
    opts: &WorkerOptions,
) -> Result<WorkerSummary> {
    let mut retrier = Retrier::new(opts.retry);
    let hello = retrier.call(
        transport,
        "hello",
        &Request::Hello {
            worker: opts.name.clone(),
        },
    )?;
    let Reply::Welcome {
        config,
        config_hash,
    } = hello
    else {
        return Err(Error::Parse(format!("expected welcome, got {hello:?}")));
    };
    let config = CampaignConfig::from_json(&config)?;
    let expect = format!("{:#018x}", config.content_hash());
    if config_hash != expect {
        return Err(Error::Parse(format!(
            "coordinator's config hash {config_hash} does not match its config document ({expect})"
        )));
    }
    let units = config.work_units();
    let hash = config.content_hash();
    let mut scratch = UnitScratch::default();
    let mut summary = WorkerSummary::default();
    let t0 = Instant::now();
    let mut scanned = 0u64;
    loop {
        if opts
            .max_shards
            .is_some_and(|max| summary.shards_submitted >= max)
        {
            summary.retries = retrier.retries;
            return Ok(summary);
        }
        match retrier.call(
            transport,
            "lease",
            &Request::Lease {
                worker: opts.name.clone(),
            },
        )? {
            Reply::Assign { shard, start, end } => {
                let unit = *units.get(shard as usize).ok_or_else(|| {
                    Error::Parse(format!("leased shard {shard} outside the campaign"))
                })?;
                if (unit.start, unit.end) != (start, end) {
                    return Err(Error::Parse(format!(
                        "lease for shard {shard} covers {start}..{end}, config says {}..{}",
                        unit.start, unit.end
                    )));
                }
                let result = {
                    let span =
                        crate::metrics::engine().map(|m| telemetry::Span::start(&m.shard_us));
                    let r = evaluate_unit(&config, unit, &mut scratch)?;
                    if let Some(sp) = span {
                        sp.finish();
                    }
                    r
                };
                crate::metrics::observe_index(scratch.workspace());
                scanned += result.scanned;
                if let Some(m) = crate::metrics::worker() {
                    m.shards.inc();
                    let us = t0.elapsed().as_micros().max(1) as u64;
                    m.polys_per_s.set(scanned.saturating_mul(1_000_000) / us);
                }
                match retrier.call(
                    transport,
                    "submit",
                    &Request::Submit {
                        worker: opts.name.clone(),
                        log: result.to_json(hash),
                    },
                )? {
                    Reply::Accepted {
                        fresh, complete, ..
                    } => {
                        summary.shards_submitted += 1;
                        if !fresh {
                            summary.duplicates += 1;
                        }
                        if complete {
                            summary.retries = retrier.retries;
                            return Ok(summary);
                        }
                    }
                    Reply::Refused { reason } => {
                        return Err(Error::Config(format!(
                            "coordinator refused shard {shard}: {reason}"
                        )));
                    }
                    other => {
                        return Err(Error::Parse(format!(
                            "expected accepted/refused, got {other:?}"
                        )))
                    }
                }
            }
            Reply::Wait { backoff_ms } => {
                // Jitter the hinted backoff (uniform in [½·hint,
                // 1½·hint]) so waiting workers return staggered instead
                // of re-asking in the same poll tick.
                summary.waits += 1;
                if let Some(m) = crate::metrics::worker() {
                    m.waits.inc();
                }
                let hint = backoff_ms.clamp(1, 2_000);
                let ms = retrier.jitter_ms(hint / 2, hint + hint / 2);
                std::thread::sleep(Duration::from_millis(ms));
            }
            Reply::Done => {
                summary.retries = retrier.retries;
                return Ok(summary);
            }
            other => {
                return Err(Error::Parse(format!(
                    "expected assign/wait/done, got {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, Mode};
    use crate::coordinator::Coordinator;
    use crate::engine::Campaign;
    use crate::transport::{FileQueueClient, FileQueueServer, ServeTransport};
    use std::time::Instant;

    #[test]
    fn worker_drives_a_campaign_over_the_file_queue() {
        let base = std::env::temp_dir().join(format!("crc-worker-fq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dir = base.join("campaign");
        let queue = base.join("queue");
        let config = CampaignConfig {
            width: 10,
            shards: 4,
            seed: 3,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![16, 64],
            ber_grid: vec![1e-5],
            max_weight: 6,
        };
        let campaign = Campaign::create(&dir, config).unwrap();
        let mut coord = Coordinator::new(campaign, Duration::from_secs(60));
        let mut server = FileQueueServer::new(&queue).unwrap();
        let coord_thread = std::thread::spawn(move || {
            while !coord.campaign().is_complete() {
                if !server
                    .serve_one(&mut |req| coord.handle(req, Instant::now()))
                    .unwrap()
                {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            coord.summary()
        });
        let mut client = FileQueueClient::new(&queue, "w1")
            .unwrap()
            .with_timing(Duration::from_millis(5), Duration::from_secs(30));
        let summary = run_worker(
            &mut client,
            &WorkerOptions {
                name: "w1".into(),
                max_shards: None,
                retry: RetryPolicy::default(),
            },
        )
        .unwrap();
        assert_eq!(summary.shards_submitted, 4);
        assert_eq!(summary.duplicates, 0);
        let coord_summary = coord_thread.join().unwrap();
        assert_eq!(coord_summary.shards_recorded, 4);
        let reopened = Campaign::open(&dir).unwrap();
        assert!(reopened.is_complete());
        let _ = std::fs::remove_dir_all(&base);
    }

    /// A transport that fails (or asks for a resend) a fixed number of
    /// times per request before letting it through.
    struct Flaky {
        failures_left: u32,
        mode: FlakyMode,
        calls: u32,
    }

    enum FlakyMode {
        IoError,
        RetryReply,
        FatalError,
    }

    impl WorkerTransport for Flaky {
        fn call(&mut self, _req: &Request) -> crate::Result<Reply> {
            self.calls += 1;
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return match self.mode {
                    FlakyMode::IoError => Err(Error::Io("connection reset".into())),
                    FlakyMode::RetryReply => Ok(Reply::Retry {
                        reason: "CRC mismatch".into(),
                    }),
                    FlakyMode::FatalError => Err(Error::Config("wrong campaign".into())),
                };
            }
            Ok(Reply::Done)
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            max_attempts: 5,
            seed: 99,
        }
    }

    #[test]
    fn retrier_resends_through_transient_failures() {
        for mode in [FlakyMode::IoError, FlakyMode::RetryReply] {
            let mut t = Flaky {
                failures_left: 3,
                mode,
                calls: 0,
            };
            let mut r = Retrier::new(fast_policy());
            let reply = r
                .call(&mut t, "lease", &Request::Lease { worker: "w".into() })
                .unwrap();
            assert_eq!(reply, Reply::Done);
            assert_eq!(t.calls, 4, "3 failures then success");
            assert_eq!(r.retries, 3);
        }
    }

    #[test]
    fn retrier_gives_up_after_the_attempt_budget() {
        let mut t = Flaky {
            failures_left: u32::MAX,
            mode: FlakyMode::IoError,
            calls: 0,
        };
        let mut r = Retrier::new(fast_policy());
        let err = r
            .call(&mut t, "submit", &Request::Lease { worker: "w".into() })
            .unwrap_err();
        assert_eq!(t.calls, 5, "exactly max_attempts calls");
        let msg = err.to_string();
        assert!(msg.contains("submit failed after 5 attempts"), "{msg}");
        assert!(msg.contains("connection reset"), "{msg}");
    }

    #[test]
    fn retrier_passes_permanent_errors_through_at_once() {
        let mut t = Flaky {
            failures_left: u32::MAX,
            mode: FlakyMode::FatalError,
            calls: 0,
        };
        let mut r = Retrier::new(fast_policy());
        let err = r
            .call(&mut t, "hello", &Request::Hello { worker: "w".into() })
            .unwrap_err();
        assert_eq!(t.calls, 1, "no retry on permanent errors");
        assert!(matches!(err, Error::Config(_)));
        assert_eq!(r.retries, 0);
    }

    #[test]
    fn backoff_stays_within_base_and_cap() {
        let mut r = Retrier::new(RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            max_attempts: 10,
            seed: 7,
        });
        let mut prev = 10u64;
        for _ in 0..200 {
            let next = r.jitter_ms(10, prev.saturating_mul(3).min(100)).min(100);
            assert!((10..=100).contains(&next), "sleep {next} out of range");
            prev = next;
        }
    }
}
