//! CRC-32 framing of protocol lines — the survey dogfoods its own
//! checksum engine.
//!
//! Every request and reply the distributed campaign puts on a wire (a
//! TCP line or a file-queue file) carries a CRC-32/ISO-HDLC trailer
//! computed by `crckit` over the payload bytes:
//!
//! ```text
//! {"type":"lease","worker":"w1"}#crc32=6b1a59c2
//! ```
//!
//! [`encode`] appends the trailer; [`decode`] verifies it and strips it.
//! A frame whose trailer is missing, malformed, or disagrees with the
//! payload is rejected with [`Error::Frame`] — the *retryable* error
//! class: transports answer damaged frames with `Reply::Retry` (or drop
//! them) instead of dying, and the worker retry layer resends the
//! request. This is exactly the random/burst corruption the source
//! paper's error model covers: any single burst up to 32 bits (and any
//! odd number of bit errors, HD permitting) is guaranteed caught.
//!
//! The module also defines [`WireCounters`]/[`WireStats`] — the shared
//! fault-telemetry block every transport end carries so coordinators
//! can persist "frames rejected / retries signalled / chaos injected"
//! counters into `coordinator-summary.json` without a live watch
//! session.

use crate::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The trailer tag separating payload from checksum.
const TAG: &str = "#crc32=";
/// Full trailer length: the tag plus eight lowercase hex digits.
const TRAILER_LEN: usize = TAG.len() + 8;

/// The process-wide framing CRC: CRC-32/ISO-HDLC (the 802.3
/// polynomial), constructed once so the engine's fold constants are
/// derived a single time.
fn framing_crc() -> &'static crckit::Crc {
    static CRC: OnceLock<crckit::Crc> = OnceLock::new();
    CRC.get_or_init(|| crckit::Crc::new(crckit::catalog::CRC32_ISO_HDLC))
}

/// The CRC-32/ISO-HDLC checksum of `payload`, as framed on the wire.
pub fn checksum(payload: &[u8]) -> u32 {
    framing_crc().checksum(payload) as u32
}

/// Frames `payload` (one compact-rendered JSON document, no newlines)
/// with its CRC-32 trailer.
pub fn encode(payload: &str) -> String {
    debug_assert!(!payload.contains('\n'), "frames are single lines");
    format!("{payload}{TAG}{:08x}", checksum(payload.as_bytes()))
}

/// Verifies and strips the CRC-32 trailer of one received frame.
///
/// # Errors
///
/// [`Error::Frame`] when the trailer is missing or malformed
/// (truncation) or when the checksum disagrees with the payload
/// (corruption). Both are retryable: the sender still has the request.
pub fn decode(frame: &str) -> Result<&str> {
    let frame = frame.strip_suffix('\n').unwrap_or(frame);
    if frame.len() < TRAILER_LEN || !frame.is_char_boundary(frame.len() - TRAILER_LEN) {
        return Err(Error::Frame(format!(
            "frame too short for a CRC trailer ({} bytes)",
            frame.len()
        )));
    }
    let (payload, trailer) = frame.split_at(frame.len() - TRAILER_LEN);
    let Some(hex) = trailer.strip_prefix(TAG) else {
        return Err(Error::Frame(format!(
            "missing {TAG}XXXXXXXX trailer (frame ends {trailer:?})"
        )));
    };
    // Strictly lowercase hex: `from_str_radix` alone would also accept
    // uppercase, letting a case-bit flip inside the trailer (e.g.
    // `e`→`E`, same value) slip through undetected.
    if !hex
        .bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return Err(Error::Frame(format!(
            "CRC trailer {hex:?} is not lowercase hex"
        )));
    }
    let carried = u32::from_str_radix(hex, 16)
        .map_err(|_| Error::Frame(format!("CRC trailer {hex:?} is not hex")))?;
    let computed = checksum(payload.as_bytes());
    if carried != computed {
        return Err(Error::Frame(format!(
            "CRC mismatch: frame carries {carried:08x}, payload checks to {computed:08x}"
        )));
    }
    Ok(payload)
}

/// Decodes a frame received as raw bytes (a TCP read may deliver
/// damaged, non-UTF-8 data): the trailer is verified over the raw
/// bytes, then the payload must be UTF-8.
///
/// # Errors
///
/// [`Error::Frame`] on trailer or checksum problems, or a payload that
/// is not UTF-8 (corruption by definition — everything we send is).
pub fn decode_bytes(frame: &[u8]) -> Result<String> {
    let text = std::str::from_utf8(frame)
        .map_err(|_| Error::Frame("frame is not UTF-8 (corrupted in flight)".into()))?;
    decode(text).map(str::to_string)
}

/// Shared atomic fault counters carried by every transport end.
///
/// Transports clone an `Arc<WireCounters>` into whatever threads serve
/// them; [`WireCounters::snapshot`] produces the plain-value
/// [`WireStats`] the coordinator persists and reports.
#[derive(Debug, Default)]
pub struct WireCounters {
    /// Frames put on the wire (requests and replies, both directions).
    pub frames_sent: AtomicU64,
    /// Frames rejected by CRC/trailer verification on read.
    pub frames_rejected: AtomicU64,
    /// `Reply::Retry` answers produced for damaged or undeliverable
    /// traffic.
    pub retries_signalled: AtomicU64,
    /// Faults deliberately injected by a chaos wrapper.
    pub chaos_injected: AtomicU64,
}

impl WireCounters {
    /// Bumps `frames_sent` and mirrors it into global telemetry.
    pub fn count_sent(&self) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = crate::metrics::transport() {
            m.frames_sent.inc();
        }
    }

    /// Bumps `frames_rejected` and mirrors it into global telemetry.
    pub fn count_rejected(&self) {
        self.frames_rejected.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = crate::metrics::transport() {
            m.frames_rejected.inc();
        }
    }

    /// Bumps `retries_signalled` and mirrors it into global telemetry.
    pub fn count_retry(&self) {
        self.retries_signalled.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = crate::metrics::transport() {
            m.retries_signalled.inc();
        }
    }

    /// Bumps `chaos_injected` and mirrors it into global telemetry.
    pub fn count_chaos(&self) {
        self.chaos_injected.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = crate::metrics::transport() {
            m.chaos_injected.inc();
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> WireStats {
        WireStats {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            retries_signalled: self.retries_signalled.load(Ordering::Relaxed),
            chaos_injected: self.chaos_injected.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value snapshot of [`WireCounters`], as reported by
/// `WorkerTransport::wire_stats` / `ServeTransport::wire_stats` and
/// persisted into `coordinator-summary.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames put on the wire.
    pub frames_sent: u64,
    /// Frames rejected by CRC/trailer verification on read.
    pub frames_rejected: u64,
    /// `Reply::Retry` answers produced for damaged traffic.
    pub retries_signalled: u64,
    /// Faults deliberately injected by a chaos wrapper.
    pub chaos_injected: u64,
}

impl WireStats {
    /// Field-wise sum (a chaos wrapper reports its own injections plus
    /// whatever its inner transport observed).
    pub fn merged(self, other: WireStats) -> WireStats {
        WireStats {
            frames_sent: self.frames_sent + other.frames_sent,
            frames_rejected: self.frames_rejected + other.frames_rejected,
            retries_signalled: self.retries_signalled + other.retries_signalled,
            chaos_injected: self.chaos_injected + other.chaos_injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [
            "{}",
            r#"{"type":"lease","worker":"w1"}"#,
            r#"{"type":"submit","worker":"w1","log":{"shard":3}}"#,
        ] {
            let framed = encode(payload);
            assert!(framed.starts_with(payload));
            assert_eq!(decode(&framed).unwrap(), payload);
            assert_eq!(decode_bytes(framed.as_bytes()).unwrap(), payload);
            // A trailing newline (TCP line transport) is tolerated.
            assert_eq!(decode(&format!("{framed}\n")).unwrap(), payload);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let framed = encode(r#"{"type":"hello","worker":"w-1"}"#);
        let bytes = framed.as_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mangled = bytes.to_vec();
                mangled[i] ^= 1 << bit;
                assert!(
                    decode_bytes(&mangled).is_err(),
                    "flip of bit {bit} in byte {i} slipped through"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let framed = encode(r#"{"type":"status","worker":"watch1"}"#);
        for cut in 0..framed.len() {
            assert!(
                decode(&framed[..cut]).is_err(),
                "truncation to {cut} bytes slipped through"
            );
        }
    }

    #[test]
    fn missing_and_malformed_trailers_are_rejected() {
        assert!(decode(r#"{"type":"hello","worker":"w1"}"#).is_err());
        assert!(decode("").is_err());
        assert!(decode("#crc32=zzzzzzzz").is_err());
        let bad_hex = format!(r#"{{"a":1}}{TAG}nothexhx"#);
        assert!(decode(&bad_hex).is_err());
    }

    #[test]
    fn checksum_matches_the_catalog_check_value() {
        // CRC-32/ISO-HDLC's standard check value pins the framing CRC
        // to the catalog entry.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn wire_counters_snapshot_and_merge() {
        let c = WireCounters::default();
        c.count_sent();
        c.count_sent();
        c.count_rejected();
        c.count_retry();
        c.count_chaos();
        let s = c.snapshot();
        assert_eq!(s.frames_sent, 2);
        assert_eq!(s.frames_rejected, 1);
        let m = s.merged(s);
        assert_eq!(m.frames_sent, 4);
        assert_eq!(m.chaos_injected, 2);
    }
}
