//! The campaign engine: a checkpointed worker pool over work units.
//!
//! # Execution model
//!
//! [`Campaign::run`] builds the list of *pending* units (all units minus
//! the checkpoint's completed set), then spawns a scoped worker pool.
//! Workers claim pending units through one atomic counter (the same
//! claim-by-index idiom as netsim's shard pool and `core::search`); each
//! worker carries its own scratch ([`UnitScratch`]) so per-unit allocations
//! are reused across the units it processes. A unit's result depends
//! only on `(config, shard id)` — never on thread count, claim order, or
//! what other units ran in the same process — which is the whole
//! determinism story.
//!
//! # Checkpoint protocol
//!
//! Completing a shard performs, in order:
//!
//! 1. write `shards/shard-NNNNN.json` atomically (temp file + rename);
//! 2. under the checkpoint lock, insert the shard into the completed set
//!    and rewrite `campaign.json` atomically.
//!
//! A kill between (1) and (2) leaves an orphan log that the next resume
//! simply overwrites with identical bytes; a kill mid-write leaves a
//! `.tmp` file that is never read. At every instant `campaign.json`
//! names only shards whose logs are fully on disk — resuming from any
//! checkpoint replays exactly the missing units and reproduces the
//! uninterrupted artifacts byte for byte.

use crate::campaign::{
    unit_seed, CampaignConfig, Checkpoint, Mode, ShardResult, SurvivorRecord, WorkUnit,
    STREAM_SAMPLE,
};
use crate::json::Json;
use crate::{Error, Result};
use gf2poly::SplitMix64;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// A campaign bound to its on-disk directory.
#[derive(Debug)]
pub struct Campaign {
    dir: PathBuf,
    checkpoint: Checkpoint,
}

/// Aggregate counts from one `run` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Shards completed by this call.
    pub shards_run: u64,
    /// Polynomials examined by this call.
    pub scanned: u64,
    /// Canonical representatives among them.
    pub canonical: u64,
    /// Survivors recorded by this call.
    pub survivors: u64,
}

impl Campaign {
    /// Creates a fresh campaign directory (with its `shards/` subdir)
    /// and writes the initial checkpoint.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for invalid parameters; [`Error::Io`] if the
    /// directory already holds a campaign or cannot be written.
    pub fn create(dir: &Path, config: CampaignConfig) -> Result<Campaign> {
        config.validate()?;
        let manifest = dir.join("campaign.json");
        if manifest.exists() {
            return Err(Error::Io(format!(
                "{} already holds a campaign (use resume)",
                manifest.display()
            )));
        }
        std::fs::create_dir_all(dir.join("shards"))
            .map_err(|e| Error::Io(format!("create {}: {e}", dir.display())))?;
        let campaign = Campaign {
            dir: dir.to_path_buf(),
            checkpoint: Checkpoint {
                config,
                completed: BTreeSet::new(),
            },
        };
        campaign.write_checkpoint()?;
        Ok(campaign)
    }

    /// Opens an existing campaign from its `campaign.json`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the manifest is unreadable, [`Error::Parse`]
    /// when it is malformed or version-incompatible.
    pub fn open(dir: &Path) -> Result<Campaign> {
        let manifest = dir.join("campaign.json");
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| Error::Io(format!("read {}: {e}", manifest.display())))?;
        let checkpoint = Checkpoint::from_json(&Json::parse(&text)?)?;
        Ok(Campaign {
            dir: dir.to_path_buf(),
            checkpoint,
        })
    }

    /// The campaign parameters.
    pub fn config(&self) -> &CampaignConfig {
        &self.checkpoint.config
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Completed / total shard counts.
    pub fn progress(&self) -> (u64, u64) {
        (
            self.checkpoint.completed.len() as u64,
            self.checkpoint.config.shards,
        )
    }

    /// True once every shard has a checkpointed log.
    pub fn is_complete(&self) -> bool {
        self.checkpoint.completed.len() as u64 == self.checkpoint.config.shards
    }

    /// Shard ids not yet checkpointed, ascending — what a coordinator
    /// still has to hand out.
    pub fn pending_shards(&self) -> Vec<u64> {
        (0..self.checkpoint.config.shards)
            .filter(|s| !self.checkpoint.completed.contains(s))
            .collect()
    }

    /// Path of one shard's survivor log.
    pub fn shard_log_path(&self, shard: u64) -> PathBuf {
        shard_log_path_in(&self.dir, shard)
    }

    /// Runs pending shards on `threads` workers until the campaign
    /// completes, an error occurs, or `stop_after` shards have been
    /// checkpointed by this call (the kill-at-a-checkpoint primitive the
    /// determinism tests and the CI resume check drive).
    ///
    /// # Errors
    ///
    /// Propagates evaluation and IO errors; the checkpoint on disk stays
    /// valid (completed shards remain completed).
    pub fn run(&mut self, threads: usize, stop_after: Option<u64>) -> Result<RunSummary> {
        let config = self.checkpoint.config.clone();
        let config_hash = config.content_hash();
        let pending: Vec<WorkUnit> = config
            .work_units()
            .into_iter()
            .filter(|u| !self.checkpoint.completed.contains(&u.shard))
            .collect();
        if pending.is_empty() {
            return Ok(RunSummary::default());
        }
        let threads = threads.max(1).min(pending.len());
        let next = AtomicUsize::new(0);
        let allowance = AtomicU64::new(stop_after.unwrap_or(u64::MAX));
        let summary = Mutex::new(RunSummary::default());
        let error: Mutex<Option<Error>> = Mutex::new(None);
        // The checkpoint is shared mutable state: workers serialize the
        // insert + rewrite under this lock (see the protocol above).
        let checkpoint = Mutex::new(&mut self.checkpoint);
        let dir = self.dir.as_path();
        let t0 = Instant::now();

        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut scratch = UnitScratch::default();
                    loop {
                        // Claim one unit of allowance, then one unit.
                        if allowance
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                                a.checked_sub(1)
                            })
                            .is_err()
                        {
                            return;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= pending.len() || error.lock().is_some() {
                            return;
                        }
                        let unit = pending[idx];
                        let evaluated = {
                            // Time the evaluation alone (not the
                            // checkpoint IO) into the shard histogram.
                            let span = crate::metrics::engine()
                                .map(|m| telemetry::Span::start(&m.shard_us));
                            let r = evaluate_unit(&config, unit, &mut scratch);
                            if let Some(sp) = span {
                                sp.finish();
                            }
                            crate::metrics::observe_index(&scratch.ws);
                            r
                        };
                        let outcome = evaluated.and_then(|result| {
                            write_atomic(
                                &shard_log_path_in(dir, unit.shard),
                                &result.to_json(config_hash).render(),
                            )?;
                            let mut ck = checkpoint.lock();
                            ck.completed.insert(unit.shard);
                            write_atomic(&dir.join("campaign.json"), &ck.to_json().render())?;
                            let mut s = summary.lock();
                            s.shards_run += 1;
                            s.scanned += result.scanned;
                            s.canonical += result.canonical;
                            s.survivors += result.survivors.len() as u64;
                            if let Some(m) = crate::metrics::engine() {
                                // Pool-wide scan rate and the shard-rate
                                // ETA, refreshed per completed unit.
                                let done = ck.completed.len() as u64;
                                let us = t0.elapsed().as_micros().max(1) as u64;
                                m.polys_per_s.set(s.scanned.saturating_mul(1_000_000) / us);
                                let remaining = config.shards.saturating_sub(done);
                                m.eta_ms
                                    .set(remaining.saturating_mul(us / 1_000) / s.shards_run);
                            }
                            Ok(())
                        });
                        if let Err(e) = outcome {
                            *error.lock() = Some(e);
                            return;
                        }
                    }
                });
            }
        })
        .expect("worker threads do not panic");

        if let Some(e) = error.into_inner() {
            return Err(e);
        }
        Ok(summary.into_inner())
    }

    /// Loads every survivor from the completed shard logs, in ascending
    /// shard then Koopman order (for exhaustive campaigns this is global
    /// Koopman order).
    ///
    /// # Errors
    ///
    /// [`Error::Incomplete`] unless the campaign is complete; IO/parse
    /// errors from unreadable logs.
    pub fn survivors(&self) -> Result<Vec<SurvivorRecord>> {
        let (done, total) = self.progress();
        if done != total {
            return Err(Error::Incomplete { done, total });
        }
        let config_hash = self.checkpoint.config.content_hash();
        let mut out = Vec::new();
        for shard in 0..total {
            let path = self.shard_log_path(shard);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| Error::Io(format!("read {}: {e}", path.display())))?;
            let result = ShardResult::from_json(&Json::parse(&text)?, config_hash)?;
            if result.unit.shard != shard {
                return Err(Error::Parse(format!(
                    "{} records shard {}, expected {shard}",
                    path.display(),
                    result.unit.shard
                )));
            }
            out.extend(result.survivors);
        }
        Ok(out)
    }

    /// Records one shard's result — the coordinator's merge path,
    /// sharing the byte-for-byte write protocol of [`Campaign::run`]
    /// (shard log atomically first, then the manifest). Idempotent:
    /// resubmitting an already checkpointed shard succeeds when the
    /// bytes match (deterministic work units always match) and returns
    /// `false`; a conflicting resubmission is refused without touching
    /// the artifacts.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for a shard id outside the campaign or a
    /// result that conflicts with the checkpointed log; IO errors from
    /// the writes.
    pub fn record_shard(&mut self, result: &ShardResult) -> Result<bool> {
        let shard = result.unit.shard;
        let config = &self.checkpoint.config;
        if shard >= config.shards {
            return Err(Error::Config(format!(
                "shard {shard} outside 0..{}",
                config.shards
            )));
        }
        let expect = config.work_units()[shard as usize];
        if result.unit != expect {
            return Err(Error::Config(format!(
                "shard {shard} covers {}..{}, campaign expects {}..{}",
                result.unit.start, result.unit.end, expect.start, expect.end
            )));
        }
        let bytes = result.to_json(config.content_hash()).render();
        let path = self.shard_log_path(shard);
        if self.checkpoint.completed.contains(&shard) {
            let existing = std::fs::read_to_string(&path)
                .map_err(|e| Error::Io(format!("read {}: {e}", path.display())))?;
            if existing == bytes {
                return Ok(false);
            }
            return Err(Error::Config(format!(
                "shard {shard} resubmitted with different contents than its checkpointed log"
            )));
        }
        write_atomic(&path, &bytes)?;
        self.checkpoint.completed.insert(shard);
        self.write_checkpoint()?;
        Ok(true)
    }

    fn write_checkpoint(&self) -> Result<()> {
        write_atomic(
            &self.dir.join("campaign.json"),
            &self.checkpoint.to_json().render(),
        )
    }
}

fn shard_log_path_in(dir: &Path, shard: u64) -> PathBuf {
    dir.join("shards").join(format!("shard-{shard:05}.json"))
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, then rename. Readers never observe a torn file.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)
        .map_err(|e| Error::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        Error::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Per-worker reusable state: the survivor accumulator and the
/// sampled-mode offset list live across all units a worker processes,
/// and so does the syndrome workspace — every candidate's filter →
/// profile → weights funnel runs over one set of allocations, rebound
/// (not reallocated) per candidate. One per local worker thread, one
/// per remote [`crate::worker`] loop.
#[derive(Default)]
pub struct UnitScratch {
    survivors: Vec<SurvivorRecord>,
    offsets: Vec<u64>,
    ws: crc_hd::SyndromeWorkspace,
}

impl UnitScratch {
    /// Read-only view of the syndrome workspace, exposing its index
    /// stat accessors to telemetry gauges (see
    /// [`crate::metrics::observe_index`]).
    pub fn workspace(&self) -> &crc_hd::SyndromeWorkspace {
        &self.ws
    }
}

/// Processes one work unit: pure in `(config, unit)` — never affected
/// by thread count, claim order, host, or transport, which is the whole
/// determinism story. Exposed so [`crate::worker`] runs the exact code
/// path the local pool runs.
///
/// # Errors
///
/// Propagates evaluation errors from `crc-hd`.
pub fn evaluate_unit(
    config: &CampaignConfig,
    unit: WorkUnit,
    scratch: &mut UnitScratch,
) -> Result<ShardResult> {
    let space = config.space();
    scratch.survivors.clear();
    let mut scanned = 0u64;
    let mut canonical = 0u64;

    let screen =
        |g: &crc_hd::GenPoly, scratch: &mut UnitScratch, canonical: &mut u64| -> Result<()> {
            // One member per reciprocal pair, as in the paper's search.
            if g.koopman() > g.reciprocal().koopman() {
                return Ok(());
            }
            *canonical += 1;
            if let Some(rec) = SurvivorRecord::screen_in(g, config, &mut scratch.ws)? {
                scratch.survivors.push(rec);
            }
            Ok(())
        };

    match &config.mode {
        Mode::Exhaustive => {
            for g in space.iter_range(unit.start, unit.end) {
                scanned += 1;
                screen(&g, scratch, &mut canonical)?;
            }
        }
        Mode::Sampled { per_shard } => {
            // The shard's own candidate stream (netsim seed splitting):
            // draws land inside the shard's range, so shards stay
            // disjoint and the union remains a subset sample.
            scratch.offsets.clear();
            let span = unit.end - unit.start;
            if span > 0 {
                let mut rng = SplitMix64::new(unit_seed(config.seed, unit.shard, STREAM_SAMPLE));
                for _ in 0..*per_shard {
                    scratch.offsets.push(unit.start + rng.next_below(span));
                }
                scratch.offsets.sort_unstable();
                scratch.offsets.dedup();
                for i in 0..scratch.offsets.len() {
                    let offset = scratch.offsets[i];
                    scanned += 1;
                    screen(&space.nth(offset), scratch, &mut canonical)?;
                }
            }
        }
        Mode::Census { per_stratum, .. } => {
            // One shard per stratum; each draws from its own stream and
            // screens *every* distinct draw — density estimates cover
            // the whole stratum, so there is no reciprocal skip here
            // (`canonical` still counts the canonical-form members, for
            // the record).
            let stratum = crate::census::strata(config)?
                .into_iter()
                .nth(unit.shard as usize)
                .ok_or_else(|| Error::Config(format!("shard {} has no stratum", unit.shard)))?;
            let mut rng = SplitMix64::new(unit_seed(config.seed, unit.shard, STREAM_SAMPLE));
            scratch.offsets.clear();
            for _ in 0..*per_stratum {
                scratch.offsets.push(stratum.draw(config.width, &mut rng)?);
            }
            scratch.offsets.sort_unstable();
            scratch.offsets.dedup();
            for i in 0..scratch.offsets.len() {
                let g = crc_hd::GenPoly::from_koopman(config.width, scratch.offsets[i])
                    .map_err(|e| Error::Config(format!("census draw: {e}")))?;
                scanned += 1;
                if g.koopman() <= g.reciprocal().koopman() {
                    canonical += 1;
                }
                if let Some(rec) = SurvivorRecord::screen_in(&g, config, &mut scratch.ws)? {
                    scratch.survivors.push(rec);
                }
            }
        }
    }

    // Exhaustive ranges are already ascending; sampled draws were
    // sorted. Hold the invariant either way — leaderboards and logs
    // depend on it.
    debug_assert!(scratch
        .survivors
        .windows(2)
        .all(|w| w[0].koopman < w[1].koopman));
    Ok(ShardResult {
        unit,
        scanned,
        canonical,
        survivors: scratch.survivors.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("crc-survey-engine-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            width: 10,
            shards: 5,
            seed: 9,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![16, 48],
            ber_grid: vec![1e-4, 1e-5],
            max_weight: 6,
        }
    }

    #[test]
    fn thread_count_does_not_change_artifacts() {
        let d1 = test_dir("t1");
        let d4 = test_dir("t4");
        let mut c1 = Campaign::create(&d1, small_config()).unwrap();
        let mut c4 = Campaign::create(&d4, small_config()).unwrap();
        let s1 = c1.run(1, None).unwrap();
        let s4 = c4.run(4, None).unwrap();
        assert_eq!(s1, s4);
        assert!(c1.is_complete() && c4.is_complete());
        for shard in 0..small_config().shards {
            let a = std::fs::read(c1.shard_log_path(shard)).unwrap();
            let b = std::fs::read(c4.shard_log_path(shard)).unwrap();
            assert_eq!(a, b, "shard {shard}");
        }
        assert_eq!(
            std::fs::read(d1.join("campaign.json")).unwrap(),
            std::fs::read(d4.join("campaign.json")).unwrap()
        );
        assert_eq!(c1.survivors().unwrap(), c4.survivors().unwrap());
        let _ = std::fs::remove_dir_all(&d1);
        let _ = std::fs::remove_dir_all(&d4);
    }

    #[test]
    fn stop_after_checkpoints_and_resumes() {
        let straight_dir = test_dir("straight");
        let chopped_dir = test_dir("chopped");
        let mut straight = Campaign::create(&straight_dir, small_config()).unwrap();
        straight.run(2, None).unwrap();

        let mut chopped = Campaign::create(&chopped_dir, small_config()).unwrap();
        let mut rounds = 0;
        while !chopped.is_complete() {
            // Re-open from disk each round: a genuine process restart.
            let mut resumed = Campaign::open(&chopped_dir).unwrap();
            resumed.run(2, Some(2)).unwrap();
            chopped = Campaign::open(&chopped_dir).unwrap();
            rounds += 1;
            assert!(rounds < 100, "campaign must make progress");
        }
        assert!(rounds >= 3, "stop_after=2 over 5 shards needs 3 rounds");
        for shard in 0..small_config().shards {
            assert_eq!(
                std::fs::read(straight.shard_log_path(shard)).unwrap(),
                std::fs::read(chopped.shard_log_path(shard)).unwrap(),
                "shard {shard}"
            );
        }
        assert_eq!(
            std::fs::read(straight_dir.join("campaign.json")).unwrap(),
            std::fs::read(chopped_dir.join("campaign.json")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&straight_dir);
        let _ = std::fs::remove_dir_all(&chopped_dir);
    }

    #[test]
    fn survivors_match_exhaustive_search() {
        // The campaign's survivor set equals core's one-shot exhaustive
        // search at the screen length.
        let dir = test_dir("xcheck");
        let cfg = small_config();
        let mut c = Campaign::create(&dir, cfg.clone()).unwrap();
        c.run(3, None).unwrap();
        let got: Vec<u64> = c.survivors().unwrap().iter().map(|s| s.koopman).collect();
        let expect: Vec<u64> =
            crc_hd::search::exhaustive_search(cfg.width, cfg.screen_len(), cfg.min_hd, 2)
                .unwrap()
                .iter()
                .map(|s| s.poly.koopman())
                .collect();
        assert_eq!(got, expect);
        assert!(!got.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_mode_is_deterministic_and_subsets_exhaustive() {
        let da = test_dir("sa");
        let db = test_dir("sb");
        let mut cfg = small_config();
        cfg.mode = Mode::Sampled { per_shard: 40 };
        let mut a = Campaign::create(&da, cfg.clone()).unwrap();
        let mut b = Campaign::create(&db, cfg.clone()).unwrap();
        a.run(1, None).unwrap();
        b.run(4, None).unwrap();
        let sa = a.survivors().unwrap();
        assert_eq!(sa, b.survivors().unwrap());
        // Sampled survivors are a subset of the exhaustive set.
        let full: std::collections::HashSet<u64> =
            crc_hd::search::exhaustive_search(cfg.width, cfg.screen_len(), cfg.min_hd, 2)
                .unwrap()
                .iter()
                .map(|s| s.poly.koopman())
                .collect();
        for s in &sa {
            assert!(full.contains(&s.koopman), "{:#x}", s.koopman);
        }
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }

    #[test]
    fn create_refuses_an_existing_campaign_and_open_validates() {
        let dir = test_dir("guard");
        let _c = Campaign::create(&dir, small_config()).unwrap();
        assert!(matches!(
            Campaign::create(&dir, small_config()),
            Err(Error::Io(_))
        ));
        // Corrupt the manifest: open must fail cleanly.
        std::fs::write(dir.join("campaign.json"), "{not json").unwrap();
        assert!(Campaign::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survivors_requires_completion() {
        let dir = test_dir("partial");
        let mut c = Campaign::create(&dir, small_config()).unwrap();
        c.run(1, Some(2)).unwrap();
        assert!(matches!(
            c.survivors(),
            Err(Error::Incomplete { done: 2, total: 5 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
