//! Pluggable coordinator↔worker message transport.
//!
//! The distributed campaign protocol is a plain request/reply exchange
//! of JSON documents; this module defines the messages and two wire
//! implementations with identical semantics:
//!
//! * **File queue** ([`FileQueueClient`] / [`FileQueueServer`]) — a
//!   shared directory (NFS-friendly, no ports, trivially debuggable):
//!   workers drop request files into `inbox/` with an atomic rename and
//!   poll `outbox/<worker>/` for the matching reply file. Sequence
//!   numbers in the file names pair requests with replies.
//! * **TCP** ([`TcpClient`] / [`TcpServer`]) — line-delimited JSON over
//!   `std::net`: one connection per request, one compact-rendered
//!   request line in, one reply line back.
//!
//! Both sides see only the [`Request`]/[`Reply`] enums; the coordinator
//! serves any [`ServeTransport`], a worker drives any
//! [`WorkerTransport`]. Transport choice never affects campaign
//! artifacts — work units are pure in `(config, shard id)` and the
//! coordinator re-renders submissions through the same schema types the
//! single-host engine writes.
//!
//! Every wire line carries a CRC-32 trailer ([`crate::frame`]) and is
//! verified on read. A frame that fails verification is *retryable*,
//! never fatal: servers answer [`Reply::Retry`] (when they can still
//! attribute the sender) or drop the frame; clients surface
//! [`crate::Error::Frame`], which the worker retry layer resends. Both
//! ends count what they saw into [`WireCounters`], surfaced through
//! [`WorkerTransport::wire_stats`] / [`ServeTransport::wire_stats`].

use crate::frame::{self, WireCounters, WireStats};
use crate::json::Json;
use crate::{Error, Result};
use gf2poly::SplitMix64;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A worker-originated protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// First contact: asks for the campaign configuration.
    Hello {
        /// The worker's self-chosen name (file-name safe).
        worker: String,
    },
    /// Asks for a shard lease.
    Lease {
        /// The requesting worker.
        worker: String,
    },
    /// Submits one completed shard log (the full shard-log document).
    Submit {
        /// The submitting worker.
        worker: String,
        /// The shard-log JSON document.
        log: Json,
    },
    /// Asks for a live status report (`survey watch`, dashboards).
    /// Read-only: status requests never acquire leases and are not
    /// tracked as worker heartbeats.
    Status {
        /// The requesting observer (file-name safe, like any worker
        /// name — file-queue replies land in `outbox/<worker>/`).
        worker: String,
    },
}

impl Request {
    /// The worker name carried by any request.
    pub fn worker(&self) -> &str {
        match self {
            Request::Hello { worker } | Request::Lease { worker } => worker,
            Request::Submit { worker, .. } => worker,
            Request::Status { worker } => worker,
        }
    }

    /// The wire form.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { worker } => Json::obj([
                ("type", Json::Str("hello".into())),
                ("worker", Json::Str(worker.clone())),
            ]),
            Request::Lease { worker } => Json::obj([
                ("type", Json::Str("lease".into())),
                ("worker", Json::Str(worker.clone())),
            ]),
            Request::Submit { worker, log } => Json::obj([
                ("type", Json::Str("submit".into())),
                ("worker", Json::Str(worker.clone())),
                ("log", log.clone()),
            ]),
            Request::Status { worker } => Json::obj([
                ("type", Json::Str("status".into())),
                ("worker", Json::Str(worker.clone())),
            ]),
        }
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on schema problems or an unsafe worker name.
    pub fn from_json(v: &Json) -> Result<Request> {
        let worker = v
            .require("worker")?
            .as_str()
            .ok_or_else(|| Error::Parse("worker is not a string".into()))?
            .to_string();
        validate_worker_name(&worker)?;
        match v.require("type")?.as_str() {
            Some("hello") => Ok(Request::Hello { worker }),
            Some("lease") => Ok(Request::Lease { worker }),
            Some("submit") => Ok(Request::Submit {
                worker,
                log: v.require("log")?.clone(),
            }),
            Some("status") => Ok(Request::Status { worker }),
            other => Err(Error::Parse(format!("unknown request type {other:?}"))),
        }
    }
}

/// A coordinator reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Hello`]: the campaign configuration and its
    /// content hash — workers need no local copy of the config.
    Welcome {
        /// The campaign config document (`CampaignConfig::to_json`).
        config: Json,
        /// The config content hash (`{:#018x}`), echoed for sanity.
        config_hash: String,
    },
    /// A shard lease: process this unit and submit its log.
    Assign {
        /// Shard id.
        shard: u64,
        /// First offset (or draw index) covered, inclusive.
        start: u64,
        /// One past the last offset covered.
        end: u64,
    },
    /// Nothing to lease right now (all pending shards are leased out);
    /// retry after the hinted backoff.
    Wait {
        /// Suggested retry delay in milliseconds.
        backoff_ms: u64,
    },
    /// The campaign is complete; the worker may exit.
    Done,
    /// A submission was accepted.
    Accepted {
        /// The shard that was recorded.
        shard: u64,
        /// `false` when the shard was already checkpointed (idempotent
        /// duplicate).
        fresh: bool,
        /// `true` once the whole campaign is complete — the worker may
        /// exit without another round trip.
        complete: bool,
    },
    /// The request was rejected (wrong campaign, conflicting bytes,
    /// malformed log). Semantic and permanent: resending the same
    /// request cannot succeed.
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// The request (or its reply) was damaged or lost in flight —
    /// resend it. Transient and idempotent-safe, unlike
    /// [`Reply::Refused`]: servers answer this for CRC-rejected frames,
    /// and chaos wrappers for simulated wire faults.
    Retry {
        /// Human-readable reason (which fault was detected).
        reason: String,
    },
    /// Answer to [`Request::Status`]: a live progress report.
    Status(StatusReport),
}

/// One outstanding shard lease, as reported by [`Reply::Status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// The leased shard.
    pub shard: u64,
    /// The worker holding the lease.
    pub worker: String,
    /// Milliseconds since the lease was granted.
    pub age_ms: u64,
}

/// One worker's heartbeat, as reported by [`Reply::Status`]. The
/// coordinator tracks every worker that has contacted it this session
/// (status observers excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHeartbeat {
    /// The worker's name.
    pub name: String,
    /// Milliseconds since the worker's last request of any kind.
    pub seen_ms: u64,
    /// Fresh shards this worker has submitted this session.
    pub submitted: u64,
    /// Milliseconds since its last accepted submission, if any.
    pub last_submit_ms: Option<u64>,
}

/// The live progress document behind [`Reply::Status`]. All quantities
/// are integers (milliseconds, counts, polynomials per second) so the
/// wire form renders deterministically for a fixed coordinator state.
///
/// Counters split into two groups: campaign-lifetime progress
/// (`done`/`total`, from the manifest) and session counters that reset
/// with the coordinator process (`recorded`, `duplicates`,
/// `leases_expired`, `refusals`, `scanned`, `survivors`, the rate and
/// the ETA).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatusReport {
    /// Shards checkpointed in the manifest.
    pub done: u64,
    /// Shards in the campaign.
    pub total: u64,
    /// Fresh shard results recorded by this coordinator session.
    pub recorded: u64,
    /// Idempotent duplicate submissions this session.
    pub duplicates: u64,
    /// Leases reclaimed after TTL expiry this session.
    pub leases_expired: u64,
    /// Refused requests this session.
    pub refusals: u64,
    /// Polynomials scanned across the shards recorded this session.
    pub scanned: u64,
    /// Survivors recorded this session.
    pub survivors: u64,
    /// Session scan rate in polynomials per second (0 until the first
    /// shard lands).
    pub polys_per_s: u64,
    /// Estimated milliseconds to completion from the session's shard
    /// completion rate; `None` until one shard has been recorded.
    pub eta_ms: Option<u64>,
    /// Wire frames the serving transport rejected on CRC/trailer
    /// verification this session (0 when served through
    /// [`Coordinator::handle`] directly).
    ///
    /// [`Coordinator::handle`]: crate::coordinator::Coordinator::handle
    pub frames_rejected: u64,
    /// Poison shards parked after repeatedly expiring their leases;
    /// ascending. Quarantined shards are no longer issued — the
    /// campaign reaches a terminal degraded state instead of spinning,
    /// and `survey merge` can fold their logs in later.
    pub quarantined: Vec<u64>,
    /// Outstanding leases, ascending by shard.
    pub leases: Vec<LeaseInfo>,
    /// Known workers, ascending by name.
    pub workers: Vec<WorkerHeartbeat>,
}

impl StatusReport {
    /// The wire form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("done", Json::Int(self.done)),
            ("total", Json::Int(self.total)),
            ("recorded", Json::Int(self.recorded)),
            ("duplicates", Json::Int(self.duplicates)),
            ("leases_expired", Json::Int(self.leases_expired)),
            ("refusals", Json::Int(self.refusals)),
            ("scanned", Json::Int(self.scanned)),
            ("survivors", Json::Int(self.survivors)),
            ("polys_per_s", Json::Int(self.polys_per_s)),
            ("eta_ms", self.eta_ms.map_or(Json::Null, Json::Int)),
            ("frames_rejected", Json::Int(self.frames_rejected)),
            (
                "quarantined",
                Json::Arr(self.quarantined.iter().copied().map(Json::Int).collect()),
            ),
            (
                "leases",
                Json::Arr(
                    self.leases
                        .iter()
                        .map(|l| {
                            Json::obj([
                                ("shard", Json::Int(l.shard)),
                                ("worker", Json::Str(l.worker.clone())),
                                ("age_ms", Json::Int(l.age_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "workers",
                Json::Arr(
                    self.workers
                        .iter()
                        .map(|w| {
                            Json::obj([
                                ("name", Json::Str(w.name.clone())),
                                ("seen_ms", Json::Int(w.seen_ms)),
                                ("submitted", Json::Int(w.submitted)),
                                (
                                    "last_submit_ms",
                                    w.last_submit_ms.map_or(Json::Null, Json::Int),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on schema problems.
    pub fn from_json(v: &Json) -> Result<StatusReport> {
        let int = |key: &str| -> Result<u64> {
            v.require(key)?
                .as_u64()
                .ok_or_else(|| Error::Parse(format!("{key} is not an unsigned integer")))
        };
        let opt_int = |key: &str| -> Result<Option<u64>> {
            match v.require(key)? {
                Json::Null => Ok(None),
                other => other
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| Error::Parse(format!("{key} is not null or an integer"))),
            }
        };
        let leases = v
            .require("leases")?
            .as_arr()
            .ok_or_else(|| Error::Parse("leases is not an array".into()))?
            .iter()
            .map(|l| {
                Ok(LeaseInfo {
                    shard: l
                        .require("shard")?
                        .as_u64()
                        .ok_or_else(|| Error::Parse("lease shard is not an integer".into()))?,
                    worker: l
                        .require("worker")?
                        .as_str()
                        .ok_or_else(|| Error::Parse("lease worker is not a string".into()))?
                        .to_string(),
                    age_ms: l
                        .require("age_ms")?
                        .as_u64()
                        .ok_or_else(|| Error::Parse("lease age_ms is not an integer".into()))?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let workers = v
            .require("workers")?
            .as_arr()
            .ok_or_else(|| Error::Parse("workers is not an array".into()))?
            .iter()
            .map(|w| {
                Ok(WorkerHeartbeat {
                    name: w
                        .require("name")?
                        .as_str()
                        .ok_or_else(|| Error::Parse("worker name is not a string".into()))?
                        .to_string(),
                    seen_ms: w
                        .require("seen_ms")?
                        .as_u64()
                        .ok_or_else(|| Error::Parse("worker seen_ms is not an integer".into()))?,
                    submitted: w
                        .require("submitted")?
                        .as_u64()
                        .ok_or_else(|| Error::Parse("worker submitted is not an integer".into()))?,
                    last_submit_ms: match w.require("last_submit_ms")? {
                        Json::Null => None,
                        other => Some(other.as_u64().ok_or_else(|| {
                            Error::Parse("worker last_submit_ms is not null or an integer".into())
                        })?),
                    },
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let quarantined = v
            .require("quarantined")?
            .as_arr()
            .ok_or_else(|| Error::Parse("quarantined is not an array".into()))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .ok_or_else(|| Error::Parse("quarantined shard is not an integer".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(StatusReport {
            done: int("done")?,
            total: int("total")?,
            recorded: int("recorded")?,
            duplicates: int("duplicates")?,
            leases_expired: int("leases_expired")?,
            refusals: int("refusals")?,
            scanned: int("scanned")?,
            survivors: int("survivors")?,
            polys_per_s: int("polys_per_s")?,
            eta_ms: opt_int("eta_ms")?,
            frames_rejected: int("frames_rejected")?,
            quarantined,
            leases,
            workers,
        })
    }
}

impl Reply {
    /// The wire form.
    pub fn to_json(&self) -> Json {
        match self {
            Reply::Welcome {
                config,
                config_hash,
            } => Json::obj([
                ("type", Json::Str("welcome".into())),
                ("config", config.clone()),
                ("config_hash", Json::Str(config_hash.clone())),
            ]),
            Reply::Assign { shard, start, end } => Json::obj([
                ("type", Json::Str("assign".into())),
                ("shard", Json::Int(*shard)),
                ("start", Json::Int(*start)),
                ("end", Json::Int(*end)),
            ]),
            Reply::Wait { backoff_ms } => Json::obj([
                ("type", Json::Str("wait".into())),
                ("backoff_ms", Json::Int(*backoff_ms)),
            ]),
            Reply::Done => Json::obj([("type", Json::Str("done".into()))]),
            Reply::Accepted {
                shard,
                fresh,
                complete,
            } => Json::obj([
                ("type", Json::Str("accepted".into())),
                ("shard", Json::Int(*shard)),
                ("fresh", Json::Bool(*fresh)),
                ("complete", Json::Bool(*complete)),
            ]),
            Reply::Refused { reason } => Json::obj([
                ("type", Json::Str("refused".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            Reply::Retry { reason } => Json::obj([
                ("type", Json::Str("retry".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            Reply::Status(report) => {
                let Json::Obj(mut pairs) = report.to_json() else {
                    unreachable!("StatusReport::to_json returns an object")
                };
                pairs.insert(0, ("type".into(), Json::Str("status".into())));
                Json::Obj(pairs)
            }
        }
    }

    /// Parses the wire form.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on schema problems.
    pub fn from_json(v: &Json) -> Result<Reply> {
        let int = |key: &str| -> Result<u64> {
            v.require(key)?
                .as_u64()
                .ok_or_else(|| Error::Parse(format!("{key} is not an unsigned integer")))
        };
        match v.require("type")?.as_str() {
            Some("welcome") => Ok(Reply::Welcome {
                config: v.require("config")?.clone(),
                config_hash: v
                    .require("config_hash")?
                    .as_str()
                    .ok_or_else(|| Error::Parse("config_hash is not a string".into()))?
                    .to_string(),
            }),
            Some("assign") => Ok(Reply::Assign {
                shard: int("shard")?,
                start: int("start")?,
                end: int("end")?,
            }),
            Some("wait") => Ok(Reply::Wait {
                backoff_ms: int("backoff_ms")?,
            }),
            Some("done") => Ok(Reply::Done),
            Some("accepted") => Ok(Reply::Accepted {
                shard: int("shard")?,
                fresh: v
                    .require("fresh")?
                    .as_bool()
                    .ok_or_else(|| Error::Parse("fresh is not a bool".into()))?,
                complete: v
                    .require("complete")?
                    .as_bool()
                    .ok_or_else(|| Error::Parse("complete is not a bool".into()))?,
            }),
            Some("refused") => Ok(Reply::Refused {
                reason: v
                    .require("reason")?
                    .as_str()
                    .ok_or_else(|| Error::Parse("reason is not a string".into()))?
                    .to_string(),
            }),
            Some("retry") => Ok(Reply::Retry {
                reason: v
                    .require("reason")?
                    .as_str()
                    .ok_or_else(|| Error::Parse("reason is not a string".into()))?
                    .to_string(),
            }),
            Some("status") => Ok(Reply::Status(StatusReport::from_json(v)?)),
            other => Err(Error::Parse(format!("unknown reply type {other:?}"))),
        }
    }
}

/// Validates a worker name: nonempty, ≤ 64 chars, file-name-safe
/// (`A–Z a–z 0–9 . _ -`), since file-queue paths embed it.
///
/// # Errors
///
/// [`Error::Config`] describing the violation.
pub fn validate_worker_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(Error::Config(format!(
            "worker name {name:?} is not file-name safe ([A-Za-z0-9._-], 1..=64 chars)"
        )))
    }
}

/// The worker side of a transport: one blocking request/reply round
/// trip per call.
pub trait WorkerTransport {
    /// Sends `req` and waits for the coordinator's reply.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on wire failures or timeout, [`Error::Frame`] on a
    /// reply that failed CRC verification (both retryable),
    /// [`Error::Parse`] on a verified but schema-invalid reply.
    fn call(&mut self, req: &Request) -> Result<Reply>;

    /// Frame/fault counters observed by this transport end so far.
    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }
}

/// The coordinator side of a transport: poll-style service of one
/// pending request at a time.
pub trait ServeTransport {
    /// Serves at most one pending request through `handler` and returns
    /// whether one was served (callers sleep briefly on `false`).
    /// Malformed or truncated client traffic is dropped (optionally
    /// answered with [`Reply::Refused`]) rather than propagated — a
    /// misbehaving worker must not take the coordinator down.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport-level failures (unreadable queue
    /// directory, dead listener).
    fn serve_one(&mut self, handler: &mut dyn FnMut(Request) -> Reply) -> Result<bool>;

    /// Frame/fault counters observed by this transport end so far.
    fn wire_stats(&self) -> WireStats {
        WireStats::default()
    }
}

// ---------------------------------------------------------------------
// File-queue transport
// ---------------------------------------------------------------------

fn io_err<T>(what: &str, path: &Path, e: std::io::Error) -> Result<T> {
    Err(Error::Io(format!("{what} {}: {e}", path.display())))
}

fn write_file_atomic(dir: &Path, tmp_dir: &Path, name: &str, contents: &str) -> Result<()> {
    let tmp = tmp_dir.join(name);
    std::fs::write(&tmp, contents).or_else(|e| io_err("write", &tmp, e))?;
    let dst = dir.join(name);
    std::fs::rename(&tmp, &dst).or_else(|e| io_err("rename into", &dst, e))
}

/// The worker end of the file-queue transport rooted at a shared
/// directory. Creating a client resets any stale reply directory left
/// by a previous worker of the same name.
#[derive(Debug)]
pub struct FileQueueClient {
    root: PathBuf,
    worker: String,
    seq: u64,
    poll: Duration,
    timeout: Duration,
    stats: Arc<WireCounters>,
}

impl FileQueueClient {
    /// Opens (and creates, if needed) the queue at `root` for `worker`.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for an unsafe worker name, [`Error::Io`] when
    /// the queue directories cannot be created.
    pub fn new(root: &Path, worker: &str) -> Result<FileQueueClient> {
        validate_worker_name(worker)?;
        let outbox = root.join("outbox").join(worker);
        let _ = std::fs::remove_dir_all(&outbox);
        for d in [root.join("inbox"), root.join("tmp"), outbox] {
            std::fs::create_dir_all(&d).or_else(|e| io_err("create", &d, e))?;
        }
        Ok(FileQueueClient {
            root: root.to_path_buf(),
            worker: worker.to_string(),
            seq: 0,
            poll: Duration::from_millis(25),
            timeout: Duration::from_secs(120),
            stats: Arc::new(WireCounters::default()),
        })
    }

    /// Overrides the reply poll interval and overall call timeout.
    pub fn with_timing(mut self, poll: Duration, timeout: Duration) -> FileQueueClient {
        self.poll = poll;
        self.timeout = timeout;
        self
    }
}

impl WorkerTransport for FileQueueClient {
    fn call(&mut self, req: &Request) -> Result<Reply> {
        self.seq += 1;
        let name = format!("req-{}-{:08}.json", self.worker, self.seq);
        write_file_atomic(
            &self.root.join("inbox"),
            &self.root.join("tmp"),
            &name,
            &frame::encode(&req.to_json().render_compact()),
        )?;
        self.stats.count_sent();
        let rsp = self
            .root
            .join("outbox")
            .join(&self.worker)
            .join(format!("rsp-{:08}.json", self.seq));
        let deadline = Instant::now() + self.timeout;
        loop {
            match std::fs::read_to_string(&rsp) {
                Ok(text) => {
                    let _ = std::fs::remove_file(&rsp);
                    let payload = frame::decode(&text).inspect_err(|_| {
                        self.stats.count_rejected();
                    })?;
                    return Reply::from_json(&Json::parse(payload)?);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return io_err("read", &rsp, e),
            }
            if Instant::now() >= deadline {
                return Err(Error::Io(format!(
                    "no reply to {name} within {:?} (coordinator gone?)",
                    self.timeout
                )));
            }
            std::thread::sleep(self.poll);
        }
    }

    fn wire_stats(&self) -> WireStats {
        self.stats.snapshot()
    }
}

/// The coordinator end of the file-queue transport.
#[derive(Debug)]
pub struct FileQueueServer {
    root: PathBuf,
    stats: Arc<WireCounters>,
}

impl FileQueueServer {
    /// Opens (and creates, if needed) the queue at `root`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the queue directories cannot be created.
    pub fn new(root: &Path) -> Result<FileQueueServer> {
        for d in [root.join("inbox"), root.join("outbox"), root.join("tmp")] {
            std::fs::create_dir_all(&d).or_else(|e| io_err("create", &d, e))?;
        }
        Ok(FileQueueServer {
            root: root.to_path_buf(),
            stats: Arc::new(WireCounters::default()),
        })
    }

    /// Writes one framed reply into `worker`'s outbox under `seq`.
    fn write_reply(&self, worker: &str, seq: &str, reply: &Reply) -> Result<()> {
        let outbox = self.root.join("outbox").join(worker);
        std::fs::create_dir_all(&outbox).or_else(|e| io_err("create", &outbox, e))?;
        write_file_atomic(
            &outbox,
            &self.root.join("tmp"),
            &format!("rsp-{seq}.json"),
            &frame::encode(&reply.to_json().render_compact()),
        )?;
        self.stats.count_sent();
        Ok(())
    }
}

/// Splits a `req-<worker>-<seq>.json` file name into its parts, when
/// the worker name is well formed. The file name survives payload
/// corruption, so a damaged frame can still be answered with
/// [`Reply::Retry`] instead of silently starving the sender.
fn request_file_parts(name: &str) -> Option<(&str, &str)> {
    let stem = name.strip_prefix("req-")?.strip_suffix(".json")?;
    let (worker, seq) = stem.rsplit_once('-')?;
    validate_worker_name(worker).ok()?;
    Some((worker, seq))
}

impl ServeTransport for FileQueueServer {
    fn serve_one(&mut self, handler: &mut dyn FnMut(Request) -> Reply) -> Result<bool> {
        let inbox = self.root.join("inbox");
        let mut names: Vec<String> = std::fs::read_dir(&inbox)
            .or_else(|e| io_err("list", &inbox, e))?
            .filter_map(|entry| entry.ok()?.file_name().into_string().ok())
            .filter(|n| n.starts_with("req-") && n.ends_with(".json"))
            .collect();
        names.sort();
        let Some(name) = names.into_iter().next() else {
            return Ok(false);
        };
        let path = inbox.join(&name);
        let text = match std::fs::read(&path) {
            Ok(bytes) => match frame::decode_bytes(&bytes) {
                Ok(payload) => payload,
                Err(e) => {
                    // Damaged frame: the CRC caught wire corruption. The
                    // file name still attributes the sender, so answer
                    // with a retryable signal instead of starving it.
                    self.stats.count_rejected();
                    if let Some((worker, seq)) = request_file_parts(&name) {
                        let retry = Reply::Retry {
                            reason: e.to_string(),
                        };
                        let _ = self.write_reply(worker, seq, &retry);
                        self.stats.count_retry();
                    }
                    let _ = std::fs::remove_file(&path);
                    return Ok(true);
                }
            },
            Err(e) => return io_err("read", &path, e),
        };
        // Verified but malformed requests are dropped, not fatal:
        // remove the file so the queue keeps moving.
        let parsed = Json::parse(&text).map_err(Error::from).and_then(|v| {
            let req = Request::from_json(&v)?;
            let (worker, seq) = request_file_parts(&name)
                .ok_or_else(|| Error::Parse(format!("bad request file name {name:?}")))?;
            if worker != req.worker() {
                return Err(Error::Parse(format!(
                    "request file {name:?} does not match its worker field {:?}",
                    req.worker()
                )));
            }
            Ok((req, seq.to_string()))
        });
        match parsed {
            Ok((req, seq)) => {
                let reply = handler(req.clone());
                self.write_reply(req.worker(), &seq, &reply)?;
                let _ = std::fs::remove_file(&path);
                Ok(true)
            }
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                Ok(true)
            }
        }
    }

    fn wire_stats(&self) -> WireStats {
        self.stats.snapshot()
    }
}

// ---------------------------------------------------------------------
// TCP transport (line-delimited JSON)
// ---------------------------------------------------------------------

/// The worker end of the TCP transport: one connection per call, one
/// compact JSON line each way.
#[derive(Debug)]
pub struct TcpClient {
    addr: String,
    timeout: Duration,
    connect_base: Duration,
    jitter: SplitMix64,
    stats: Arc<WireCounters>,
}

impl TcpClient {
    /// A client for the coordinator at `addr` (`host:port`).
    pub fn new(addr: &str) -> TcpClient {
        // The jitter stream only decorrelates concurrent clients'
        // connect storms; seed it from whatever distinguishes them.
        let mut seed = u64::from(std::process::id()) ^ 0x7c3a_9d1e_55aa_0f42;
        for b in addr.bytes() {
            seed = seed.rotate_left(7) ^ u64::from(b);
        }
        TcpClient {
            addr: addr.to_string(),
            timeout: Duration::from_secs(120),
            connect_base: Duration::from_millis(25),
            jitter: SplitMix64::new(seed),
            stats: Arc::new(WireCounters::default()),
        }
    }

    /// Overrides the connect/read timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> TcpClient {
        self.timeout = timeout;
        self
    }

    /// Connects with capped exponential backoff plus jitter: workers
    /// may start before the coordinator binds its listener, and a
    /// coordinator restart must not be greeted by a lockstep stampede.
    fn connect(&mut self) -> Result<TcpStream> {
        let deadline = Instant::now() + self.timeout;
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(s) => return Ok(s),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(Error::Io(format!(
                            "connect to {} timed out after {:?} ({} attempts; last error: {e})",
                            self.addr,
                            self.timeout,
                            attempt + 1
                        )));
                    }
                    // base·2^attempt, capped at 2 s, then uniformly
                    // jittered over [half, full] so restarted
                    // coordinators see a spread-out reconnect wave.
                    let cap = self
                        .connect_base
                        .saturating_mul(1u32 << attempt.min(8))
                        .min(Duration::from_secs(2));
                    let half = cap.as_millis().max(2) as u64 / 2;
                    let sleep = half + self.jitter.next_below(half + 1);
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(sleep));
                }
            }
        }
    }
}

impl WorkerTransport for TcpClient {
    fn call(&mut self, req: &Request) -> Result<Reply> {
        let mut stream = self.connect()?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| Error::Io(format!("socket timeout: {e}")))?;
        let mut line = frame::encode(&req.to_json().render_compact());
        line.push('\n');
        stream
            .write_all(line.as_bytes())
            .map_err(|e| Error::Io(format!("send to {}: {e}", self.addr)))?;
        self.stats.count_sent();
        let mut reply_line = Vec::new();
        BufReader::new(&mut stream)
            .read_until(b'\n', &mut reply_line)
            .map_err(|e| {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    Error::Io(format!(
                        "read from {} timed out after {:?} (connected, but no reply line)",
                        self.addr, self.timeout
                    ))
                } else {
                    Error::Io(format!("receive from {}: {e}", self.addr))
                }
            })?;
        if reply_line.is_empty() {
            return Err(Error::Io(format!(
                "coordinator at {} closed the connection",
                self.addr
            )));
        }
        let payload = frame::decode_bytes(&reply_line).inspect_err(|_| {
            self.stats.count_rejected();
        })?;
        Reply::from_json(&Json::parse(&payload)?)
    }

    fn wire_stats(&self) -> WireStats {
        self.stats.snapshot()
    }
}

/// The coordinator end of the TCP transport: a non-blocking listener
/// polled by [`ServeTransport::serve_one`].
#[derive(Debug)]
pub struct TcpServer {
    listener: TcpListener,
    io_timeout: Duration,
    stats: Arc<WireCounters>,
}

impl TcpServer {
    /// Binds `addr` (`host:port`; port 0 picks a free one).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the address cannot be bound.
    pub fn bind(addr: &str) -> Result<TcpServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::Io(format!("bind {addr}: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Io(format!("nonblocking listener: {e}")))?;
        Ok(TcpServer {
            listener,
            io_timeout: Duration::from_secs(10),
            stats: Arc::new(WireCounters::default()),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::Io(format!("local addr: {e}")))
    }
}

/// Reads one `\n`-terminated line of raw bytes from a blocking stream
/// (damaged frames may not be UTF-8; the framing layer decides).
fn read_line_from(stream: &mut TcpStream, timeout: Duration) -> std::io::Result<Vec<u8>> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte)?;
        if n == 0 || byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > 1 << 26 {
            return Err(std::io::Error::other("request line too long"));
        }
    }
    Ok(buf)
}

impl ServeTransport for TcpServer {
    fn serve_one(&mut self, handler: &mut dyn FnMut(Request) -> Reply) -> Result<bool> {
        let (mut stream, _) = match self.listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) => return Err(Error::Io(format!("accept: {e}"))),
        };
        // From here on, client failures are the client's problem: drop
        // the connection and keep serving.
        let Ok(line) = read_line_from(&mut stream, self.io_timeout) else {
            return Ok(true);
        };
        let reply = match frame::decode_bytes(&line) {
            // Damaged frame: the CRC caught wire corruption; the
            // connection is still open, so signal a retryable failure.
            Err(e) => {
                self.stats.count_rejected();
                self.stats.count_retry();
                Reply::Retry {
                    reason: e.to_string(),
                }
            }
            // Verified but schema-invalid: a sender bug, permanent.
            Ok(payload) => match Json::parse(&payload)
                .map_err(Error::from)
                .and_then(|v| Request::from_json(&v))
            {
                Ok(req) => handler(req),
                Err(e) => Reply::Refused {
                    reason: e.to_string(),
                },
            },
        };
        let mut out = frame::encode(&reply.to_json().render_compact());
        out.push('\n');
        if stream.write_all(out.as_bytes()).is_ok() {
            self.stats.count_sent();
        }
        Ok(true)
    }

    fn wire_stats(&self) -> WireStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> (Vec<Request>, Vec<Reply>) {
        let reqs = vec![
            Request::Hello {
                worker: "w1".into(),
            },
            Request::Lease {
                worker: "w-2.a".into(),
            },
            Request::Submit {
                worker: "w1".into(),
                log: Json::obj([("shard", Json::Int(3))]),
            },
            Request::Status {
                worker: "watch1".into(),
            },
        ];
        let replies = vec![
            Reply::Welcome {
                config: Json::obj([("width", Json::Int(13))]),
                config_hash: "0x0123456789abcdef".into(),
            },
            Reply::Assign {
                shard: 2,
                start: 512,
                end: 1024,
            },
            Reply::Wait { backoff_ms: 50 },
            Reply::Done,
            Reply::Accepted {
                shard: 2,
                fresh: true,
                complete: false,
            },
            Reply::Refused {
                reason: "wrong campaign".into(),
            },
            Reply::Retry {
                reason: "CRC mismatch: frame carries deadbeef".into(),
            },
            Reply::Status(StatusReport {
                done: 3,
                total: 16,
                recorded: 3,
                duplicates: 1,
                leases_expired: 2,
                refusals: 0,
                scanned: 24_576,
                survivors: 9,
                polys_per_s: 120_000,
                eta_ms: Some(650),
                frames_rejected: 4,
                quarantined: vec![7, 11],
                leases: vec![LeaseInfo {
                    shard: 4,
                    worker: "w1".into(),
                    age_ms: 1_200,
                }],
                workers: vec![
                    WorkerHeartbeat {
                        name: "w1".into(),
                        seen_ms: 5,
                        submitted: 2,
                        last_submit_ms: Some(410),
                    },
                    WorkerHeartbeat {
                        name: "w2".into(),
                        seen_ms: 90,
                        submitted: 1,
                        last_submit_ms: None,
                    },
                ],
            }),
            Reply::Status(StatusReport::default()),
        ];
        (reqs, replies)
    }

    #[test]
    fn messages_round_trip_compactly() {
        let (reqs, replies) = sample_messages();
        for r in reqs {
            let line = r.to_json().render_compact();
            assert!(!line.contains('\n'));
            assert_eq!(Request::from_json(&Json::parse(&line).unwrap()).unwrap(), r);
        }
        for r in replies {
            let line = r.to_json().render_compact();
            assert!(!line.contains('\n'));
            assert_eq!(Reply::from_json(&Json::parse(&line).unwrap()).unwrap(), r);
        }
    }

    #[test]
    fn worker_names_are_validated() {
        assert!(validate_worker_name("w1").is_ok());
        assert!(validate_worker_name("host-3.worker_9").is_ok());
        assert!(validate_worker_name("").is_err());
        assert!(validate_worker_name("a/b").is_err());
        assert!(validate_worker_name("a b").is_err());
        assert!(validate_worker_name(&"x".repeat(65)).is_err());
    }

    fn echo_handler(req: Request) -> Reply {
        match req {
            Request::Hello { .. } => Reply::Welcome {
                config: Json::obj([("width", Json::Int(13))]),
                config_hash: "0xh".into(),
            },
            Request::Lease { .. } => Reply::Wait { backoff_ms: 7 },
            Request::Submit { log, .. } => Reply::Accepted {
                shard: log.get("shard").and_then(Json::as_u64).unwrap_or(0),
                fresh: true,
                complete: false,
            },
            Request::Status { .. } => Reply::Status(StatusReport {
                done: 1,
                total: 2,
                ..StatusReport::default()
            }),
        }
    }

    #[test]
    fn file_queue_round_trips() {
        let root = std::env::temp_dir().join(format!("crc-survey-fq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut server = FileQueueServer::new(&root).unwrap();
        let mut client = FileQueueClient::new(&root, "w1")
            .unwrap()
            .with_timing(Duration::from_millis(5), Duration::from_secs(10));
        let server_thread = {
            let root = root.clone();
            std::thread::spawn(move || {
                let mut served = 0;
                while served < 3 {
                    if server.serve_one(&mut |req| echo_handler(req)).unwrap() {
                        served += 1;
                    } else {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
                drop(root);
            })
        };
        assert!(matches!(
            client
                .call(&Request::Hello {
                    worker: "w1".into()
                })
                .unwrap(),
            Reply::Welcome { .. }
        ));
        assert_eq!(
            client
                .call(&Request::Lease {
                    worker: "w1".into()
                })
                .unwrap(),
            Reply::Wait { backoff_ms: 7 }
        );
        assert_eq!(
            client
                .call(&Request::Submit {
                    worker: "w1".into(),
                    log: Json::obj([("shard", Json::Int(5))]),
                })
                .unwrap(),
            Reply::Accepted {
                shard: 5,
                fresh: true,
                complete: false
            }
        );
        server_thread.join().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tcp_round_trips() {
        let mut server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server_thread = std::thread::spawn(move || {
            let mut served = 0;
            while served < 2 {
                if server.serve_one(&mut |req| echo_handler(req)).unwrap() {
                    served += 1;
                } else {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        });
        let mut client = TcpClient::new(&addr).with_timeout(Duration::from_secs(10));
        assert!(matches!(
            client
                .call(&Request::Hello {
                    worker: "w1".into()
                })
                .unwrap(),
            Reply::Welcome { .. }
        ));
        assert_eq!(
            client
                .call(&Request::Lease {
                    worker: "w1".into()
                })
                .unwrap(),
            Reply::Wait { backoff_ms: 7 }
        );
        server_thread.join().unwrap();
    }
}
