//! Leaderboard reporting: the paper's "best polynomial per length
//! regime" table, regenerated from a completed campaign.
//!
//! For every target length the survivors are ranked by `(HD, P_ud at
//! the head of the BER grid, taps, Koopman value)` — HD first because it
//! is the paper's headline criterion, P_ud to split polynomials with
//! equal HD by their exact low-weight structure, taps as the hardware
//! tie-break, Koopman value last so the order is total and the rendered
//! artifact is byte-deterministic. Entries on the campaign's Pareto
//! frontier are flagged.
//!
//! A 32-bit spot-check section places the paper's own polynomials
//! (IEEE 802.3, Castagnoli's CRC-32C, Koopman's `0xBA0DC66B`) exactly
//! where Table 1 puts them, so every leaderboard carries its own anchor
//! against the source material.

use crate::campaign::{CampaignConfig, SurvivorRecord, FORMAT_VERSION};
use crate::engine::Campaign;
use crate::json::Json;
use crate::pareto::{frontier_indices, Objectives, PudAxis};
use crate::Result;
use crc_hd::profile::HdProfile;
use crc_hd::report::TextTable;
use crc_hd::GenPoly;

/// The paper's 32-bit reference polynomials for the spot-check section.
pub const NOTABLES_32: [(u64, &str); 3] = [
    (0x82608EDB, "IEEE 802.3"),
    (0x8F6E37A0, "Castagnoli CRC-32C (iSCSI)"),
    (0xBA0DC66B, "Koopman 0xBA0DC66B"),
];

/// The Ethernet MTU data-word length the spot checks anchor at.
pub const MTU_BITS: u32 = 12_112;

/// Leaderboard construction options.
#[derive(Debug, Clone, Copy)]
pub struct LeaderboardOptions {
    /// Entries kept per length regime.
    pub top: usize,
    /// Include the 32-bit paper spot-check section (three `HdProfile`
    /// computations out to ~16 Kbit; cheap in release builds, skippable
    /// in tight test loops).
    pub spot_check_32: bool,
    /// Which P_ud computation ranks the board and feeds the frontier.
    /// The default [`PudAxis::Truncated`] keeps the artifact bytes
    /// identical to the pre-distribution era (the golden leaderboard
    /// pins them); [`PudAxis::Exact`] recomputes every curve from the
    /// full weight distribution and stamps a `p_ud_axis` key into the
    /// document so the two artifacts can never be confused.
    pub pud_axis: PudAxis,
}

impl Default for LeaderboardOptions {
    fn default() -> LeaderboardOptions {
        LeaderboardOptions {
            top: 5,
            spot_check_32: true,
            pud_axis: PudAxis::Truncated,
        }
    }
}

/// Builds the leaderboard document for a completed campaign.
///
/// # Errors
///
/// [`crate::Error::Incomplete`] while shards are outstanding; IO/parse
/// errors from the shard logs.
pub fn build(campaign: &Campaign, opts: &LeaderboardOptions) -> Result<Json> {
    let survivors = campaign.survivors()?;
    build_from_records(campaign.config(), &survivors, opts)
}

/// Builds the leaderboard from already-loaded records (the example and
/// tests drive this directly).
///
/// # Errors
///
/// Propagates objective-evaluation errors from corrupt records.
pub fn build_from_records(
    cfg: &CampaignConfig,
    survivors: &[SurvivorRecord],
    opts: &LeaderboardOptions,
) -> Result<Json> {
    let objectives: Vec<Objectives> = survivors
        .iter()
        .map(|r| Objectives::evaluate_with(r, cfg, opts.pud_axis))
        .collect::<Result<_>>()?;
    let front = frontier_indices(&objectives);
    let on_front: std::collections::HashSet<usize> = front.iter().copied().collect();
    let head_ber = cfg.ber_grid[0];

    let mut regimes = Vec::new();
    for (li, &len) in cfg.target_lengths.iter().enumerate() {
        let mut order: Vec<usize> = (0..survivors.len()).collect();
        order.sort_by(|&a, &b| {
            let hd_a = objectives[a].hds[li].unwrap_or(u32::MAX);
            let hd_b = objectives[b].hds[li].unwrap_or(u32::MAX);
            hd_b.cmp(&hd_a)
                .then_with(|| objectives[a].p_ud[0].total_cmp(&objectives[b].p_ud[0]))
                .then_with(|| survivors[a].taps.cmp(&survivors[b].taps))
                .then_with(|| survivors[a].koopman.cmp(&survivors[b].koopman))
        });
        let entries: Vec<Json> = order
            .iter()
            .take(opts.top)
            .enumerate()
            .map(|(rank, &i)| {
                let rec = &survivors[i];
                Json::obj([
                    ("rank", Json::Int(rank as u64 + 1)),
                    ("poly", Json::Str(rec.poly().to_string())),
                    ("class", Json::Str(rec.class.clone())),
                    (
                        "hd",
                        match objectives[i].hds[li] {
                            Some(h) => Json::Int(h as u64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "p_ud_ref",
                        Json::Str(format!("{:e}", objectives[i].p_ud[0])),
                    ),
                    ("taps", Json::Int(rec.taps as u64)),
                    ("pareto", Json::Bool(on_front.contains(&i))),
                ])
            })
            .collect();
        regimes.push(Json::obj([
            ("data_len", Json::Int(len as u64)),
            ("entries", Json::Arr(entries)),
        ]));
    }

    let front_json: Vec<Json> = front
        .iter()
        .map(|&i| {
            let (rec, o) = (&survivors[i], &objectives[i]);
            Json::obj([
                ("poly", Json::Str(rec.poly().to_string())),
                ("class", Json::Str(rec.class.clone())),
                ("taps", Json::Int(rec.taps as u64)),
                (
                    "hds",
                    Json::Arr(
                        o.hds
                            .iter()
                            .map(|hd| match hd {
                                Some(h) => Json::Int(*h as u64),
                                None => Json::Null,
                            })
                            .collect(),
                    ),
                ),
                (
                    "p_ud",
                    Json::Arr(o.p_ud.iter().map(|p| Json::Str(format!("{p:e}"))).collect()),
                ),
            ])
        })
        .collect();

    let mut doc = vec![
        (
            "format".to_string(),
            Json::Str("crc-survey-leaderboard".into()),
        ),
        ("version".to_string(), Json::Int(FORMAT_VERSION)),
        (
            "config_hash".to_string(),
            Json::Str(format!("{:#018x}", cfg.content_hash())),
        ),
        ("config".to_string(), cfg.to_json()),
        ("survivors".to_string(), Json::Int(survivors.len() as u64)),
        ("head_ber".to_string(), Json::Num(head_ber)),
        ("regimes".to_string(), Json::Arr(regimes)),
        ("pareto_front".to_string(), Json::Arr(front_json)),
    ];
    // Stamped ONLY on the exact axis: the default truncated artifact
    // must stay byte-identical to the golden leaderboard.
    if opts.pud_axis == PudAxis::Exact {
        doc.insert(5, ("p_ud_axis".to_string(), Json::Str("exact".into())));
    }
    if opts.spot_check_32 {
        doc.push(("notables_32bit".to_string(), spot_check_32()?));
    }
    Ok(Json::Obj(doc))
}

/// The Table 1 anchor section: HD at the Ethernet MTU and the HD=6
/// boundary for the paper's three reference polynomials, plus the
/// derived regime verdict.
///
/// # Errors
///
/// Propagates profile-computation errors (not reachable for these fixed
/// inputs).
pub fn spot_check_32() -> Result<Json> {
    // Far enough to capture 0xBA0DC66B's HD=6 boundary at 16,360 bits.
    let profile_len = 17_000;
    let mut entries = Vec::new();
    let mut best: Option<(u64, u32)> = None;
    for (koopman, name) in NOTABLES_32 {
        let g = GenPoly::from_koopman(32, koopman).expect("paper constant");
        let p = HdProfile::compute(&g, profile_len)?;
        let hd_mtu = p.hd_at(MTU_BITS).expect("32-bit polys have finite HD here");
        if best.is_none_or(|(_, h)| hd_mtu > h) {
            best = Some((koopman, hd_mtu));
        }
        entries.push(Json::obj([
            ("poly", Json::Str(g.to_string())),
            ("name", Json::Str(name.into())),
            ("hd_at_mtu", Json::Int(hd_mtu as u64)),
            (
                "max_len_hd6",
                match p.max_len_for_hd(6) {
                    Some(n) => Json::Int(n as u64),
                    None => Json::Null,
                },
            ),
            (
                "taps",
                Json::Int(crc_hd::costmodel::engine_cost(&g).taps as u64),
            ),
        ]));
    }
    let (winner, hd) = best.expect("three notables");
    Ok(Json::obj([
        ("mtu_bits", Json::Int(MTU_BITS as u64)),
        ("entries", Json::Arr(entries)),
        (
            "mtu_winner",
            Json::Str(format!("{}", GenPoly::from_koopman(32, winner).unwrap())),
        ),
        ("mtu_winner_hd", Json::Int(hd as u64)),
    ]))
}

/// Renders a leaderboard document as human-readable tables (one per
/// length regime) and as a **single** CSV document: one header, a
/// `data_len` column attributing every row to its regime, all cells
/// through `core::report`'s escaping (class signatures like `{1,3,28}`
/// must survive the CSV trip intact).
pub fn render_tables(doc: &Json) -> (String, String) {
    const COLUMNS: [&str; 7] = ["rank", "poly", "class", "hd", "p_ud_ref", "taps", "pareto"];
    let mut text = String::new();
    let mut combined = TextTable::new(
        std::iter::once("data_len")
            .chain(COLUMNS)
            .map(str::to_string),
    );
    if let Some(regimes) = doc.get("regimes").and_then(|r| r.as_arr()) {
        for regime in regimes {
            let len = regime.get("data_len").and_then(|v| v.as_u64()).unwrap_or(0);
            let mut t = TextTable::new(COLUMNS);
            for e in regime
                .get("entries")
                .and_then(|v| v.as_arr())
                .unwrap_or(&[])
            {
                let cell = |k: &str| -> String {
                    match e.get(k) {
                        Some(Json::Str(s)) => s.clone(),
                        Some(Json::Int(n)) => n.to_string(),
                        Some(Json::Bool(b)) => b.to_string(),
                        Some(Json::Null) => format!(
                            ">{}",
                            doc.get("config")
                                .and_then(|c| c.get("max_weight"))
                                .and_then(|v| v.as_u64())
                                .unwrap_or(0)
                        ),
                        _ => String::new(),
                    }
                };
                t.push_row(COLUMNS.map(cell));
                combined.push_row(std::iter::once(len.to_string()).chain(COLUMNS.map(cell)));
            }
            text.push_str(&format!("best polynomials at {len} data bits:\n"));
            text.push_str(&t.render());
            text.push('\n');
        }
    }
    (text, combined.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Mode;

    fn records_for(cfg: &CampaignConfig) -> Vec<SurvivorRecord> {
        cfg.space()
            .iter_all()
            .filter(|g| g.koopman() <= g.reciprocal().koopman())
            .filter_map(|g| SurvivorRecord::screen(&g, cfg).unwrap())
            .collect()
    }

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            width: 10,
            shards: 4,
            seed: 3,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![16, 48],
            ber_grid: vec![1e-4, 1e-6],
            max_weight: 6,
        }
    }

    #[test]
    fn leaderboard_is_sorted_and_flags_the_front() {
        let c = cfg();
        let recs = records_for(&c);
        let doc = build_from_records(
            &c,
            &recs,
            &LeaderboardOptions {
                top: 8,
                spot_check_32: false,
                ..Default::default()
            },
        )
        .unwrap();
        let regimes = doc.get("regimes").unwrap().as_arr().unwrap();
        assert_eq!(regimes.len(), 2);
        for regime in regimes {
            let entries = regime.get("entries").unwrap().as_arr().unwrap();
            assert!(!entries.is_empty() && entries.len() <= 8);
            // HD non-increasing down the board (None sorts above all).
            let hd = |e: &Json| -> u64 { e.get("hd").and_then(|v| v.as_u64()).unwrap_or(u64::MAX) };
            for pair in entries.windows(2) {
                assert!(hd(&pair[0]) >= hd(&pair[1]));
            }
            // Rank 1 of the shortest regime meets the screen bar.
            assert!(hd(&entries[0]) >= 4);
        }
        // The top entry of every regime is Pareto-optimal or beaten only
        // on other axes; at minimum the flagged set is non-empty.
        assert!(!doc
            .get("pareto_front")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        // Determinism: building twice renders identical bytes.
        let again = build_from_records(
            &c,
            &recs,
            &LeaderboardOptions {
                top: 8,
                spot_check_32: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(again.render(), doc.render());
    }

    #[test]
    fn exact_axis_stamps_the_document_and_truncated_does_not() {
        let c = cfg();
        let recs = records_for(&c);
        let truncated = build_from_records(
            &c,
            &recs,
            &LeaderboardOptions {
                top: 3,
                spot_check_32: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            truncated.get("p_ud_axis").is_none(),
            "default artifact must keep the golden byte layout"
        );
        let exact = build_from_records(
            &c,
            &recs,
            &LeaderboardOptions {
                top: 3,
                spot_check_32: false,
                pud_axis: PudAxis::Exact,
            },
        )
        .unwrap();
        assert_eq!(exact.get("p_ud_axis").and_then(Json::as_str), Some("exact"));
        // The exact axis really recomputes the curves: at least one
        // p_ud_ref cell differs from the truncated artifact (weight-5+
        // terms are strictly positive for these codes).
        assert_ne!(truncated.render(), exact.render());
        // And the exact build is itself deterministic.
        let again = build_from_records(
            &c,
            &recs,
            &LeaderboardOptions {
                top: 3,
                spot_check_32: false,
                pud_axis: PudAxis::Exact,
            },
        )
        .unwrap();
        assert_eq!(again.render(), exact.render());
    }

    #[test]
    fn tables_round_class_signatures_through_csv() {
        let c = cfg();
        let recs = records_for(&c);
        let doc = build_from_records(
            &c,
            &recs,
            &LeaderboardOptions {
                top: 3,
                spot_check_32: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (text, csv) = render_tables(&doc);
        assert!(text.contains("best polynomials at 16 data bits"));
        // One CSV document: a single header, rows attributed by length.
        assert_eq!(
            csv.lines()
                .filter(|l| l.starts_with("data_len,rank,"))
                .count(),
            1
        );
        assert!(csv.lines().any(|l| l.starts_with("16,1,")));
        assert!(csv.lines().any(|l| l.starts_with("48,1,")));
        // Multi-factor class signatures contain commas: they must appear
        // quoted in the CSV, never bare.
        if let Some(line) = csv.lines().find(|l| l.contains("{") && l.contains(",")) {
            let class_start = line.find('{').unwrap();
            assert_eq!(
                &line[class_start - 1..class_start],
                "\"",
                "class cell must be quoted: {line}"
            );
        }
    }

    #[test]
    fn spot_check_places_the_paper_polynomials() {
        let sc = spot_check_32().unwrap();
        let entries = sc.get("entries").unwrap().as_arr().unwrap();
        let by_name = |tag: &str| -> &Json {
            entries
                .iter()
                .find(|e| e.get("name").unwrap().as_str().unwrap().contains(tag))
                .unwrap()
        };
        // Table 1: 802.3 and CRC-32C sit at HD=4 at the MTU; 0xBA0DC66B
        // holds HD=6. HD=6 boundaries: 268 / 5,243 / 16,360.
        let ieee = by_name("802.3");
        assert_eq!(ieee.get("hd_at_mtu").unwrap().as_u64(), Some(4));
        assert_eq!(ieee.get("max_len_hd6").unwrap().as_u64(), Some(268));
        let cast = by_name("Castagnoli");
        assert_eq!(cast.get("hd_at_mtu").unwrap().as_u64(), Some(4));
        assert_eq!(cast.get("max_len_hd6").unwrap().as_u64(), Some(5_243));
        let koop = by_name("BA0DC66B");
        assert_eq!(koop.get("hd_at_mtu").unwrap().as_u64(), Some(6));
        assert_eq!(koop.get("max_len_hd6").unwrap().as_u64(), Some(16_360));
        assert_eq!(
            sc.get("mtu_winner").unwrap().as_str(),
            Some("0xBA0DC66B"),
            "the paper's proposed polynomial wins the MTU regime"
        );
        assert_eq!(sc.get("mtu_winner_hd").unwrap().as_u64(), Some(6));
    }
}
