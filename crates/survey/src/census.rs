//! The stratified sampled census: strata, per-stratum draws, and the
//! Wilson-interval extrapolation to the full space.
//!
//! The paper's real subject is the 2³¹ space of 32-bit generators —
//! far past what an exhaustive toy survey covers. The census mode
//! ([`Mode::Census`]) replaces contiguous enumeration shards with one
//! shard per *stratum* and extrapolates what the sample shows to the
//! whole space:
//!
//! * **Tap-count strata.** A width-`r` generator in normal notation has
//!   its constant bit fixed at 1 and `r − 1` free coefficient bits, so
//!   the polynomials with exactly `t` feedback taps number
//!   `C(r−1, t−1)` — an *exact* stratum size. Sampling uniformly inside
//!   a stratum is combination unranking: draw an index below
//!   `C(r−1, t−1)`, decode it to a set of tap positions. The `r` tap
//!   strata partition the space, so their per-stratum estimates sum to
//!   a full-space estimate. Taps are also the engine-cost axis, so the
//!   strata double as the cost dimension of the frontier.
//! * **Factorization-class strata.** The paper's Table 2 counts HD=6
//!   survivors per irreducible-factorization class;
//!   [`gf2poly::FactorClass`] supplies exact class sizes and uniform
//!   member sampling, so named classes ride along as extra strata
//!   (overlapping the tap strata — they refine the question, not the
//!   partition, and are excluded from the totals row).
//!
//! Every stratum draws from its own SplitMix64 stream
//! ([`crate::campaign::unit_seed`]), so a census campaign shards,
//! checkpoints, resumes and distributes exactly like an exhaustive one.
//!
//! # Interpreting the estimates
//!
//! For a stratum of exact size `N` with `n` distinct sampled members of
//! which `s` survive the screen (`HD ≥ min_hd` at the screen length),
//! the report gives the observed density `s/n`, its Wilson score
//! interval at the configured `z` (the same interval the simulator's
//! Monte-Carlo statistics use — robust at the tiny densities and zero
//! counts a census meets), and the extrapolated survivor counts
//! `N · density` with `N · [low, high]` bounds. Per-target-length rows
//! estimate the HD-boundary density the same way: the fraction still at
//! `HD ≥ min_hd` at each leaderboard length. The totals row sums the
//! tap strata; summed bounds are conservative when read jointly.

use crate::campaign::{Mode, ShardResult, FORMAT_VERSION};
use crate::engine::Campaign;
use crate::json::Json;
use crate::{Error, Result};
use crc_hd::distribution::Nat;
use gf2poly::{FactorClass, SplitMix64};

/// One census stratum: an exactly sized, uniformly sampleable subset of
/// the polynomial space.
#[derive(Debug, Clone)]
pub enum Stratum {
    /// All generators with exactly this many feedback taps
    /// (`C(width−1, taps−1)` of them).
    Taps(u32),
    /// All generators with this irreducible-factorization signature.
    Class(FactorClass),
}

impl Stratum {
    /// Human-readable stratum label, used in reports.
    pub fn label(&self) -> String {
        match self {
            Stratum::Taps(t) => format!("taps={t}"),
            Stratum::Class(c) => format!("class={c}"),
        }
    }

    /// Exact number of member polynomials for width `width`.
    pub fn size(&self, width: u32) -> u128 {
        match self {
            Stratum::Taps(t) => binomial(width as u64 - 1, *t as u64 - 1),
            Stratum::Class(c) => c.size(),
        }
    }

    /// Draws one member uniformly, as a Koopman-notation value.
    ///
    /// # Errors
    ///
    /// Propagates class-sampling errors; [`Error::Config`] if a sampled
    /// class member does not form a valid generator (prevented by
    /// [`validate_classes`]).
    pub fn draw(&self, width: u32, rng: &mut SplitMix64) -> Result<u64> {
        match self {
            Stratum::Taps(t) => {
                // Free coefficient bits in Koopman notation are
                // 0..width−2 (normal bits 1..width−1 shifted down by
                // the implicit +1); the top bit width−1 is always set.
                let m = width as u64 - 1;
                let k = *t as u64 - 1;
                let idx = rng.next_below(binomial(m, k) as u64);
                Ok((1u64 << (width - 1)) | unrank_combination(m, k, idx))
            }
            Stratum::Class(c) => {
                let p = c
                    .sample(rng)
                    .map_err(|e| Error::Config(format!("class sample: {e}")))?;
                let g = crc_hd::GenPoly::from_poly(p)
                    .map_err(|e| Error::Config(format!("class member: {e}")))?;
                Ok(g.koopman())
            }
        }
    }
}

/// The deterministic strata layout of a census campaign: tap counts
/// `1..=width` first (shard id = taps − 1), then the configured classes
/// in config order.
///
/// # Errors
///
/// [`Error::Config`] when the campaign is not in census mode or a class
/// signature fails to parse.
pub fn strata(config: &crate::campaign::CampaignConfig) -> Result<Vec<Stratum>> {
    let Mode::Census { classes, .. } = &config.mode else {
        return Err(Error::Config("not a census campaign".into()));
    };
    let mut out: Vec<Stratum> = (1..=config.width).map(Stratum::Taps).collect();
    for s in classes {
        out.push(Stratum::Class(parse_class(config.width, s)?));
    }
    Ok(out)
}

fn parse_class(width: u32, s: &str) -> Result<FactorClass> {
    let c = FactorClass::parse(s).map_err(|e| Error::Config(format!("census class {s:?}: {e}")))?;
    if c.total_degree() != width {
        return Err(Error::Config(format!(
            "census class {s:?} has total degree {}, campaign width is {width}",
            c.total_degree()
        )));
    }
    Ok(c)
}

/// Validates census class signatures: parseable, canonical spelling,
/// total degree equal to the campaign width, no duplicates.
///
/// # Errors
///
/// [`Error::Config`] naming the first offending signature.
pub fn validate_classes(width: u32, classes: &[String]) -> Result<()> {
    let mut seen = std::collections::BTreeSet::new();
    for s in classes {
        let c = parse_class(width, s)?;
        let canonical = c.to_string();
        if *s != canonical {
            return Err(Error::Config(format!(
                "census class {s:?} is not in canonical form (write {canonical:?})"
            )));
        }
        if !seen.insert(canonical) {
            return Err(Error::Config(format!("duplicate census class {s:?}")));
        }
    }
    Ok(())
}

/// Exact binomial coefficient `C(n, k)` (ascending-factor form keeps
/// every intermediate division exact). The census uses it for stratum
/// sizes and unranking at `n ≤ 31`, far inside `u128` range.
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let (n, k) = (n as u128, k as u128);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - k + i + 1) / (i + 1);
    }
    acc
}

/// Decodes combination index `idx` (in `0..C(m, k)`) to the bit mask of
/// `k` set positions among `0..m` — the decreasing combinadic, so the
/// map is a bijection and uniform indices give uniform combinations.
pub fn unrank_combination(m: u64, k: u64, idx: u64) -> u64 {
    debug_assert!((idx as u128) < binomial(m, k));
    let mut idx = idx as u128;
    let mut k = k;
    let mut mask = 0u64;
    for p in (0..m).rev() {
        if k == 0 {
            break;
        }
        let c = binomial(p, k);
        if idx >= c {
            idx -= c;
            mask |= 1 << p;
            k -= 1;
        }
    }
    debug_assert_eq!(k, 0);
    mask
}

/// The Wilson score interval around `s/n` at critical value `z`: the
/// same interval netsim's Monte-Carlo statistics report, chosen for the
/// same reason — it stays honest at the tiny densities and zero counts
/// a census meets. Returns `(density, low, high)`; `(0, 0, 1)` when
/// nothing was sampled.
pub fn wilson(s: u64, n: u64, z: f64) -> (f64, f64, f64) {
    if n == 0 {
        return (0.0, 0.0, 1.0);
    }
    let nf = n as f64;
    let p = s as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    // The bounds are exact at the extremes; snapping them hides the
    // ±1 ulp the center−half cancellation would otherwise leak.
    let low = if s == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let high = if s == n {
        1.0
    } else {
        (center + half).min(1.0)
    };
    (p, low, high)
}

/// The critical value of the standard 95% interval.
pub const Z95: f64 = 1.959_963_984_540_054;

/// Fixed-point scale of the extrapolated counts: millionths.
const MICRO: u64 = 1_000_000;

/// `⌊size · s · 10⁶ / n⌋` exactly — the point estimate `size · s/n` in
/// millionth units, computed in integer arithmetic (no `f64` product,
/// which loses integer precision for the 2³¹-sized width-32 strata).
fn point_micro(size: u128, s: u64, n: u64) -> Nat {
    if n == 0 {
        return Nat::zero();
    }
    let (q, _) = Nat::from_u128(size)
        .mul_small(s)
        .mul_small(MICRO)
        .divmod_small(n);
    q
}

/// `⌊size · frac · 10⁶⌋` exactly: the `f64` fraction is an exact binary
/// rational `m · 2^e` (`m ≤ 2⁵³`), so the product reduces to a
/// big-integer multiply and shift — matching the PR-4 rule (explicit
/// IEEE-exact arithmetic, no `powi`/libm) down to the rendered digit.
fn scaled_micro(size: u128, frac: f64) -> Nat {
    debug_assert!((0.0..=1.0).contains(&frac));
    if frac <= 0.0 {
        return Nat::zero();
    }
    if frac >= 1.0 {
        return Nat::from_u128(size).mul_small(MICRO);
    }
    let bits = frac.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let mantissa = bits & ((1u64 << 52) - 1);
    let (m, e) = if exp == 0 {
        (mantissa, -1074i64) // subnormal
    } else {
        (mantissa | (1u64 << 52), exp - 1075)
    };
    let mut v = Nat::from_u128(size).mul_small(m).mul_small(MICRO);
    if e >= 0 {
        v.shl_bits(e as usize);
    } else {
        v.shr_bits((-e) as usize);
    }
    v
}

/// Renders a millionths count as `integer.dddddd` — the byte-stable
/// form the census artifacts carry instead of a shortest-round-trip
/// `f64`.
fn render_micro(micro: &Nat) -> String {
    let (int, frac) = micro.divmod_small(MICRO);
    format!("{}.{frac:06}", int.to_decimal())
}

/// Deterministic extrapolated survivor counts for one stratum of exact
/// `size` with `survivors` of `sampled` draws passing: the point
/// estimate `size · survivors/sampled` and the Wilson bounds at `z`,
/// each computed exactly (integer part plus a truncated six-digit
/// fraction) and returned as decimal strings. This is the scheme the
/// census report renders; it never multiplies `size as f64` by a
/// density, so 2³¹-sized strata keep every integer digit and the bytes
/// are host-independent.
pub fn extrapolate(size: u128, survivors: u64, sampled: u64, z: f64) -> (String, String, String) {
    let (_, lo, hi) = wilson(survivors, sampled, z);
    (
        render_micro(&point_micro(size, survivors, sampled)),
        render_micro(&scaled_micro(size, lo)),
        render_micro(&scaled_micro(size, hi)),
    )
}

/// Builds the census report for a completed census campaign: one entry
/// per stratum with densities, Wilson bounds at `z` and extrapolated
/// survivor counts, per-target-length HD-boundary estimates, and a
/// totals row summing the tap strata (which partition the space). The
/// document is byte-deterministic for a given campaign and `z`.
///
/// # Errors
///
/// [`Error::Config`] when the campaign is not in census mode,
/// [`Error::Incomplete`] before every stratum is checkpointed, and IO or
/// parse errors from unreadable shard logs.
pub fn census_report(campaign: &Campaign, z: f64) -> Result<Json> {
    let config = campaign.config();
    let strata = strata(config)?;
    let (done, total) = campaign.progress();
    if done != total {
        return Err(Error::Incomplete { done, total });
    }
    let config_hash = config.content_hash();
    let lengths = &config.target_lengths;
    let tap_count = config.width as usize;

    // Totals accumulate over the tap strata only — they partition the
    // space; class strata overlap them.
    let mut tot_sampled = 0u64;
    let mut tot_survivors = 0u64;
    let mut tot_est: Vec<(Nat, Nat, Nat)> =
        vec![(Nat::zero(), Nat::zero(), Nat::zero()); lengths.len() + 1];

    let mut rows = Vec::new();
    for (i, stratum) in strata.iter().enumerate() {
        let path = campaign.shard_log_path(i as u64);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| Error::Io(format!("read {}: {e}", path.display())))?;
        let result = ShardResult::from_json(&Json::parse(&text)?, config_hash)?;
        let size = stratum.size(config.width);
        let n = result.scanned;

        // Survivor counts: index 0 is the screen itself, then one per
        // target length (HD still ≥ min_hd there; profiles censored at
        // max_weight report "above" as surviving, consistently with the
        // screen's own verdict).
        let mut counts = vec![0u64; lengths.len() + 1];
        for rec in &result.survivors {
            counts[0] += 1;
            let profile = rec.profile(rec.ref_len)?;
            for (j, &len) in lengths.iter().enumerate() {
                if profile.hd_at(len).is_none_or(|hd| hd >= config.min_hd) {
                    counts[j + 1] += 1;
                }
            }
        }

        let mut est = Vec::new();
        for (j, &s) in counts.iter().enumerate() {
            let (p, lo, hi) = wilson(s, n, z);
            // Extrapolated counts in exact millionths — never through a
            // `size as f64` product (the former precision leak).
            let e_mid = point_micro(size, s, n);
            let e_lo = scaled_micro(size, lo);
            let e_hi = scaled_micro(size, hi);
            if i < tap_count {
                tot_est[j].0.add_assign(&e_mid);
                tot_est[j].1.add_assign(&e_lo);
                tot_est[j].2.add_assign(&e_hi);
            }
            est.push((s, p, lo, hi, e_mid, e_lo, e_hi));
        }
        if i < tap_count {
            tot_sampled += n;
            tot_survivors += counts[0];
        }

        let row_for = |label: &str, e: &(u64, f64, f64, f64, Nat, Nat, Nat)| {
            Json::obj([
                ("at", Json::Str(label.to_string())),
                ("survivors", Json::Int(e.0)),
                ("density", Json::Num(e.1)),
                ("density_low", Json::Num(e.2)),
                ("density_high", Json::Num(e.3)),
                ("est", Json::Str(render_micro(&e.4))),
                ("est_low", Json::Str(render_micro(&e.5))),
                ("est_high", Json::Str(render_micro(&e.6))),
            ])
        };
        let mut length_rows = vec![row_for("screen", &est[0])];
        for (j, &len) in lengths.iter().enumerate() {
            length_rows.push(row_for(&format!("len={len}"), &est[j + 1]));
        }
        rows.push(Json::obj([
            ("stratum", Json::Str(stratum.label())),
            (
                "kind",
                Json::Str(
                    match stratum {
                        Stratum::Taps(_) => "taps",
                        Stratum::Class(_) => "class",
                    }
                    .into(),
                ),
            ),
            ("size", Json::Str(size.to_string())),
            ("sampled", Json::Int(n)),
            ("estimates", Json::Arr(length_rows)),
        ]));
    }

    let space: u128 = strata
        .iter()
        .take(tap_count)
        .map(|s| s.size(config.width))
        .sum();
    let mut total_rows = Vec::new();
    let labels: Vec<String> = std::iter::once("screen".to_string())
        .chain(lengths.iter().map(|l| format!("len={l}")))
        .collect();
    for (label, (est, lo, hi)) in labels.iter().zip(&tot_est) {
        total_rows.push(Json::obj([
            ("at", Json::Str(label.clone())),
            ("est", Json::Str(render_micro(est))),
            ("est_low", Json::Str(render_micro(lo))),
            ("est_high", Json::Str(render_micro(hi))),
        ]));
    }

    Ok(Json::obj([
        ("format", Json::Str("crc-survey-census".into())),
        ("version", Json::Int(FORMAT_VERSION)),
        ("config_hash", Json::Str(format!("{config_hash:#018x}"))),
        ("z", Json::Num(z)),
        ("space", Json::Str(space.to_string())),
        ("min_hd", Json::Int(config.min_hd as u64)),
        ("screen_len", Json::Int(config.screen_len() as u64)),
        ("strata", Json::Arr(rows)),
        (
            "totals",
            Json::obj([
                ("size", Json::Str(space.to_string())),
                ("sampled", Json::Int(tot_sampled)),
                ("survivors", Json::Int(tot_survivors)),
                ("estimates", Json::Arr(total_rows)),
            ]),
        ),
    ]))
}

/// Renders the census report as a text table (one line per stratum at
/// the screen length, then the totals row).
pub fn render_census_table(doc: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "census: survivors with HD >= {} at {} bits (z = {})",
        doc.get("min_hd").and_then(Json::as_u64).unwrap_or(0),
        doc.get("screen_len").and_then(Json::as_u64).unwrap_or(0),
        doc.get("z").and_then(Json::as_f64).unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "stratum", "size", "sampled", "survive", "est", "est_low", "est_high"
    );
    // The est fields are exact decimal strings; show them verbatim.
    let est_str = |row: &Json, key: &str| {
        row.get(key)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let strata = doc.get("strata").and_then(Json::as_arr).unwrap_or(&[]);
    for row in strata {
        let screen = row
            .get("estimates")
            .and_then(Json::as_arr)
            .and_then(|e| e.first());
        let Some(screen) = screen else { continue };
        let _ = writeln!(
            out,
            "{:<18} {:>14} {:>8} {:>9} {:>18} {:>18} {:>18}",
            row.get("stratum").and_then(Json::as_str).unwrap_or("?"),
            row.get("size").and_then(Json::as_str).unwrap_or("?"),
            row.get("sampled").and_then(Json::as_u64).unwrap_or(0),
            screen.get("survivors").and_then(Json::as_u64).unwrap_or(0),
            est_str(screen, "est"),
            est_str(screen, "est_low"),
            est_str(screen, "est_high"),
        );
    }
    if let Some(totals) = doc.get("totals") {
        let screen = totals
            .get("estimates")
            .and_then(Json::as_arr)
            .and_then(|e| e.first());
        if let Some(screen) = screen {
            let _ = writeln!(
                out,
                "{:<18} {:>14} {:>8} {:>9} {:>18} {:>18} {:>18}",
                "TOTAL (taps)",
                totals.get("size").and_then(Json::as_str).unwrap_or("?"),
                totals.get("sampled").and_then(Json::as_u64).unwrap_or(0),
                totals.get("survivors").and_then(Json::as_u64).unwrap_or(0),
                est_str(screen, "est"),
                est_str(screen, "est_low"),
                est_str(screen, "est_high"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;

    #[test]
    fn tap_strata_partition_the_space() {
        for width in [3u32, 8, 13, 16, 32] {
            let total: u128 = (1..=width).map(|t| Stratum::Taps(t).size(width)).sum();
            assert_eq!(total, 1u128 << (width - 1), "width {width}");
        }
    }

    #[test]
    fn unranking_is_a_bijection() {
        let (m, k) = (7u64, 3u64);
        let n = binomial(m, k) as u64;
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..n {
            let mask = unrank_combination(m, k, idx);
            assert_eq!(mask.count_ones() as u64, k);
            assert!(mask < 1 << m);
            assert!(seen.insert(mask), "duplicate combination {mask:#b}");
        }
        assert_eq!(seen.len() as u64, n);
    }

    #[test]
    fn tap_draws_land_in_their_stratum() {
        let mut rng = SplitMix64::new(7);
        for t in 1..=13u32 {
            let s = Stratum::Taps(t);
            for _ in 0..50 {
                let k = s.draw(13, &mut rng).unwrap();
                let g = crc_hd::GenPoly::from_koopman(13, k).unwrap();
                assert_eq!(crc_hd::costmodel::engine_cost(&g).taps, t);
            }
        }
    }

    #[test]
    fn class_draws_land_in_their_class() {
        let c = parse_class(13, "{1,12}").unwrap();
        let s = Stratum::Class(c);
        let mut rng = SplitMix64::new(3);
        for _ in 0..20 {
            let k = s.draw(13, &mut rng).unwrap();
            let g = crc_hd::GenPoly::from_koopman(13, k).unwrap();
            let sig = gf2poly::factor(g.to_poly()).signature().to_string();
            assert_eq!(sig, "{1,12}");
        }
    }

    #[test]
    fn wilson_interval_is_sane() {
        assert_eq!(wilson(0, 0, Z95), (0.0, 0.0, 1.0));
        let (p, lo, hi) = wilson(0, 100, Z95);
        assert_eq!(p, 0.0);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (p, lo, hi) = wilson(100, 100, Z95);
        assert_eq!(p, 1.0);
        assert!(lo > 0.95 && hi == 1.0);
        let (p, lo, hi) = wilson(10, 100, Z95);
        assert!(lo < p && p < hi, "{lo} < {p} < {hi}");
        // Wider z widens the interval.
        let (_, lo3, hi3) = wilson(10, 100, 3.0);
        assert!(lo3 < lo && hi3 > hi);
    }

    #[test]
    fn width32_stratum_extrapolation_is_exact_and_deterministic() {
        // Regression: the report used to render `size as f64 * bound`,
        // which loses integer digits once strata reach 2³¹ polynomials.
        let size = Stratum::Taps(16).size(32);
        assert_eq!(size, 300_540_195); // C(31,15)
                                       // The old path rendered `size as f64 * (s as f64 / n as f64)`
                                       // as a shortest-round-trip f64 — noise digits past the exact
                                       // fraction …
        let f64_est = format!("{}", size as f64 * (2f64 / 7f64));
        assert_ne!(f64_est, "85868627.142857");
        // … while the integer scheme truncates the exact rational.
        let (est, lo, hi) = extrapolate(size, 2, 7, Z95);
        assert_eq!(est, "85868627.142857");
        assert_eq!(extrapolate(size, 2, 7, Z95), (est.clone(), lo, hi));
        // A dyadic-exact case keeps every integer digit too.
        let (est, lo, hi) = extrapolate(size, 2, 3, Z95);
        assert_eq!(est, "200360130.000000");
        // The bounds bracket the point estimate.
        let to_f = |s: &str| s.parse::<f64>().unwrap();
        assert!(to_f(&lo) <= 200_360_130.0 && 200_360_130.0 <= to_f(&hi));
        // Degenerate edges: all survive / none survive.
        let (e1, _, h1) = extrapolate(size, 3, 3, Z95);
        assert_eq!(e1, "300540195.000000");
        assert_eq!(h1, "300540195.000000");
        let (e0, l0, _) = extrapolate(size, 0, 3, Z95);
        assert_eq!(e0, "0.000000");
        assert_eq!(l0, "0.000000");
        // Unsampled stratum renders zeros, not NaN.
        let (eu, ..) = extrapolate(size, 0, 0, Z95);
        assert_eq!(eu, "0.000000");
    }

    #[test]
    fn class_validation_rejects_bad_signatures() {
        assert!(validate_classes(13, &["{1,12}".into()]).is_ok());
        assert!(validate_classes(13, &["{1,11}".into()]).is_err(), "degree");
        assert!(validate_classes(13, &["nope".into()]).is_err(), "parse");
        assert!(
            validate_classes(13, &["{12,1}".into()]).is_err(),
            "canonical spelling"
        );
        assert!(
            validate_classes(13, &["{1,12}".into(), "{1,12}".into()]).is_err(),
            "duplicate"
        );
    }

    #[test]
    fn census_config_validates_strata_count() {
        let mut c = CampaignConfig {
            width: 13,
            shards: 13,
            seed: 1,
            mode: Mode::Census {
                per_stratum: 10,
                classes: vec![],
            },
            min_hd: 4,
            target_lengths: vec![64],
            ber_grid: vec![1e-5],
            max_weight: 6,
        };
        assert!(c.validate().is_ok());
        c.shards = 12;
        assert!(c.validate().is_err(), "shards must equal strata");
        c.shards = 14;
        c.mode = Mode::Census {
            per_stratum: 10,
            classes: vec!["{1,12}".into()],
        };
        assert!(c.validate().is_ok());
    }
}
