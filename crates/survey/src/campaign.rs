//! Campaign configuration, work units, survivor records and the
//! checkpoint schema.
//!
//! A campaign is fully described by a [`CampaignConfig`]; everything a
//! worker computes is a pure function of `(config, shard id)`, which is
//! the resume invariant: a shard log on disk never has to be recomputed,
//! and recomputing it anyway would reproduce it byte for byte.

use crate::json::{Json, JsonError};
use crate::{Error, Result};
use crc_hd::costmodel::engine_cost;
use crc_hd::filter::hd_filter_in;
use crc_hd::profile::HdProfile;
use crc_hd::search::PolySpace;
use crc_hd::workspace::MemoFact;
use crc_hd::{GenPoly, SyndromeWorkspace};

/// Version stamp written into every artifact; readers reject other
/// versions instead of guessing. Version 2 added the stratified census
/// mode and the persisted `d_min` memo on survivor records.
pub const FORMAT_VERSION: u64 = 2;

/// How a shard covers its slice of the polynomial space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Every polynomial in the shard's range is screened.
    Exhaustive,
    /// `per_shard` draws from the shard's own SplitMix64 stream (netsim's
    /// seed-splitting idiom): deterministic per `(seed, shard)`, so a
    /// sampled campaign shards, checkpoints and resumes exactly like an
    /// exhaustive one.
    Sampled {
        /// Random draws per shard (duplicates collapse before screening).
        per_shard: u64,
    },
    /// Stratified sampled census: one shard per stratum, where the
    /// strata are every feedback-tap count (tap count `t` has exactly
    /// `C(width−1, t−1)` members, so estimates extrapolate exactly) plus
    /// any named factorization classes ([`gf2poly::FactorClass`], whose
    /// exact sizes the class machinery provides). Each stratum draws
    /// from its own SplitMix64 stream; see [`crate::census`] for the
    /// strata layout and the Wilson-interval extrapolation.
    Census {
        /// Random draws per stratum (duplicates collapse before
        /// screening).
        per_stratum: u64,
        /// Factorization-class strata (signature strings like
        /// `"{1,3,28}"`), screened in addition to the tap-count strata.
        classes: Vec<String>,
    },
}

/// Full description of one survey campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// CRC width of the space (3..=32; `PolySpace` bounds).
    pub width: u32,
    /// Number of work units the space splits into.
    pub shards: u64,
    /// Campaign seed: feeds the per-shard streams in sampled mode and is
    /// part of the artifact identity in both modes.
    pub seed: u64,
    /// Exhaustive or sampled coverage.
    pub mode: Mode,
    /// Screening bar: candidates must reach `HD ≥ min_hd` at the
    /// *shortest* target length (HD only shrinks with length, so this is
    /// the staged-filter short-length screen; survivors are then profiled
    /// in full).
    pub min_hd: u32,
    /// Data-word lengths (bits) the leaderboard ranks at; strictly
    /// ascending. The longest doubles as the P_ud reference length.
    pub target_lengths: Vec<u32>,
    /// Bit-error rates of the P_ud grid.
    pub ber_grid: Vec<f64>,
    /// Highest weight each survivor's profile explores.
    pub max_weight: u32,
}

impl CampaignConfig {
    /// Checks the parameter invariants.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if !(3..=32).contains(&self.width) {
            return Err(Error::Config(format!(
                "width {} outside 3..=32",
                self.width
            )));
        }
        let total = PolySpace::new(self.width).total();
        if self.shards == 0 || self.shards > total {
            return Err(Error::Config(format!(
                "shards {} outside 1..={total}",
                self.shards
            )));
        }
        if self.target_lengths.is_empty() || !self.target_lengths.windows(2).all(|w| w[0] < w[1]) {
            return Err(Error::Config(
                "target_lengths must be nonempty and strictly ascending".into(),
            ));
        }
        if self.min_hd < 2 {
            return Err(Error::Config(format!("min_hd {} below 2", self.min_hd)));
        }
        if self.max_weight < self.min_hd {
            return Err(Error::Config(format!(
                "max_weight {} below min_hd {}",
                self.max_weight, self.min_hd
            )));
        }
        if self.ber_grid.is_empty()
            || !self
                .ber_grid
                .iter()
                .all(|&b| b.is_finite() && 0.0 < b && b < 0.5)
        {
            return Err(Error::Config(
                "ber_grid must be nonempty with every rate in (0, 0.5)".into(),
            ));
        }
        match &self.mode {
            Mode::Exhaustive => {}
            Mode::Sampled { per_shard } => {
                if *per_shard == 0 {
                    return Err(Error::Config("sampled mode needs per_shard >= 1".into()));
                }
            }
            Mode::Census {
                per_stratum,
                classes,
            } => {
                if *per_stratum == 0 {
                    return Err(Error::Config("census mode needs per_stratum >= 1".into()));
                }
                crate::census::validate_classes(self.width, classes)?;
                let strata = self.width as u64 + classes.len() as u64;
                if self.shards != strata {
                    return Err(Error::Config(format!(
                        "census mode needs shards == strata count {strata} \
                         (width {} tap strata + {} classes), found {}",
                        self.width,
                        classes.len(),
                        self.shards
                    )));
                }
            }
        }
        Ok(())
    }

    /// The screening length: the shortest target length.
    pub fn screen_len(&self) -> u32 {
        self.target_lengths[0]
    }

    /// The profile range and P_ud reference length: the longest target.
    pub fn ref_len(&self) -> u32 {
        *self.target_lengths.last().expect("validated nonempty")
    }

    /// The polynomial space this campaign covers.
    pub fn space(&self) -> PolySpace {
        PolySpace::new(self.width)
    }

    /// The shard decomposition. Exhaustive and sampled campaigns split
    /// the enumeration into contiguous offset ranges covering the space
    /// exactly once, in shard order; a census campaign has one unit per
    /// stratum, whose range `0..per_stratum` counts draws rather than
    /// offsets.
    pub fn work_units(&self) -> Vec<WorkUnit> {
        if let Mode::Census { per_stratum, .. } = &self.mode {
            return (0..self.shards)
                .map(|shard| WorkUnit {
                    shard,
                    start: 0,
                    end: *per_stratum,
                })
                .collect();
        }
        let total = self.space().total();
        let chunk = total.div_ceil(self.shards);
        (0..self.shards)
            .map(|shard| WorkUnit {
                shard,
                start: (shard * chunk).min(total),
                end: ((shard + 1) * chunk).min(total),
            })
            .collect()
    }

    /// FNV-1a hash of the canonical config rendering — the identity
    /// stamped into every artifact so a resume refuses to mix campaigns.
    pub fn content_hash(&self) -> u64 {
        let text = self.to_json().render();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The canonical JSON form (field order fixed).
    pub fn to_json(&self) -> Json {
        let mode = match &self.mode {
            Mode::Exhaustive => Json::Str("exhaustive".into()),
            Mode::Sampled { per_shard } => {
                Json::obj([("sampled_per_shard", Json::Int(*per_shard))])
            }
            Mode::Census {
                per_stratum,
                classes,
            } => Json::obj([
                ("census_per_stratum", Json::Int(*per_stratum)),
                (
                    "census_classes",
                    Json::Arr(classes.iter().map(|c| Json::Str(c.clone())).collect()),
                ),
            ]),
        };
        Json::obj([
            ("width", Json::Int(self.width as u64)),
            ("shards", Json::Int(self.shards)),
            ("seed", Json::Int(self.seed)),
            ("mode", mode),
            ("min_hd", Json::Int(self.min_hd as u64)),
            (
                "target_lengths",
                Json::Arr(
                    self.target_lengths
                        .iter()
                        .map(|&n| Json::Int(n as u64))
                        .collect(),
                ),
            ),
            (
                "ber_grid",
                Json::Arr(self.ber_grid.iter().map(|&b| Json::Num(b)).collect()),
            ),
            ("max_weight", Json::Int(self.max_weight as u64)),
        ])
    }

    /// Parses and validates a config from its JSON form.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on schema problems, [`Error::Config`] on invalid
    /// parameters.
    pub fn from_json(v: &Json) -> Result<CampaignConfig> {
        let mode_v = v.require("mode")?;
        let mode = match mode_v.as_str() {
            Some("exhaustive") => Mode::Exhaustive,
            Some(other) => return Err(Error::Parse(format!("unknown mode {other:?}"))),
            None if mode_v.get("census_per_stratum").is_some() => Mode::Census {
                per_stratum: require_u64(mode_v, "census_per_stratum")?,
                classes: mode_v
                    .require("census_classes")?
                    .as_arr()
                    .ok_or_else(|| Error::Parse("census_classes not an array".into()))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| Error::Parse("bad census class".into()))
                    })
                    .collect::<Result<Vec<String>>>()?,
            },
            None => Mode::Sampled {
                per_shard: require_u64(mode_v, "sampled_per_shard")?,
            },
        };
        let cfg = CampaignConfig {
            width: require_u64(v, "width")? as u32,
            shards: require_u64(v, "shards")?,
            seed: require_u64(v, "seed")?,
            mode,
            min_hd: require_u64(v, "min_hd")? as u32,
            target_lengths: v
                .require("target_lengths")?
                .as_arr()
                .ok_or_else(|| Error::Parse("target_lengths not an array".into()))?
                .iter()
                .map(|x| {
                    x.as_u32()
                        .ok_or_else(|| Error::Parse("bad target length".into()))
                })
                .collect::<Result<Vec<u32>>>()?,
            ber_grid: v
                .require("ber_grid")?
                .as_arr()
                .ok_or_else(|| Error::Parse("ber_grid not an array".into()))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| Error::Parse("bad BER value".into()))
                })
                .collect::<Result<Vec<f64>>>()?,
            max_weight: require_u64(v, "max_weight")? as u32,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

fn require_u64(v: &Json, key: &str) -> Result<u64> {
    v.require(key)?
        .as_u64()
        .ok_or_else(|| Error::Parse(format!("{key} is not an unsigned integer")))
}

/// One shard's slice of the space: offsets `start..end` of the
/// enumeration order (see `PolySpace::iter_range`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Shard id, `0..config.shards`.
    pub shard: u64,
    /// First offset covered (inclusive).
    pub start: u64,
    /// One past the last offset covered.
    pub end: u64,
}

/// Random stream index for sampled-mode candidate draws within a shard.
pub const STREAM_SAMPLE: u64 = 0;

/// Derives the deterministic seed for one stream of one shard — the same
/// SplitMix64-finalizer splitting netsim uses for its trial shards: any
/// shard of any campaign can be reproduced from `(seed, shard, stream)`
/// alone, independent of thread schedule.
pub fn unit_seed(seed: u64, shard: u64, stream: u64) -> u64 {
    let mut z = seed
        ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything the selection layer needs about one surviving polynomial,
/// computed once by a worker and persisted in its shard log.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivorRecord {
    /// Koopman-notation value.
    pub koopman: u64,
    /// CRC width.
    pub width: u32,
    /// Irreducible-factorization signature (`{d1,..,dk}`).
    pub class: String,
    /// Feedback taps (`costmodel::engine_cost`): the Pareto cost axis.
    pub taps: u32,
    /// Multiplicative order of `x` mod the generator.
    pub order: u128,
    /// `(w, d_min(w))` profile parts (`HdProfile::dmins`).
    pub dmins: Vec<(u32, u32)>,
    /// The full `d_min` memo the screening funnel deposited
    /// ([`SyndromeWorkspace::memo_facts`]): exact minimal degrees *and*
    /// certified-clean ranges. Where `dmins` is the profile's censored
    /// summary, this is the resumable state — seeding it back
    /// ([`SurvivorRecord::reprofile_in`]) lets a second pass at longer
    /// lengths (8k–64k bits) continue each weight's scan where the
    /// campaign stopped instead of restarting from degree `w − 1`.
    pub memo: Vec<(u32, MemoFact)>,
    /// Highest weight the profile explored.
    pub max_weight_explored: u32,
    /// Data length (bits) the weight counts below refer to.
    pub ref_len: u32,
    /// Exact `W₂` at `ref_len` (any length; from the order alone).
    pub w2: u128,
    /// Exact `(W₃, W₄)` at `ref_len`, or `None` when the reference
    /// codeword outruns the order (the closed form needs distinct
    /// syndromes; such polynomials are at HD 2 there anyway, and `w2`
    /// already dominates their P_ud).
    pub w34: Option<(u128, u128)>,
}

impl SurvivorRecord {
    /// Screens `g` and, if it clears the bar, evaluates the full record:
    /// profile parts, factorization class, engine cost and exact weights
    /// at the reference length (one-shot convenience over
    /// [`SurvivorRecord::screen_in`]).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from `crc-hd`.
    pub fn screen(g: &GenPoly, cfg: &CampaignConfig) -> Result<Option<SurvivorRecord>> {
        SurvivorRecord::screen_in(g, cfg, &mut SyndromeWorkspace::new())
    }

    /// [`SurvivorRecord::screen`] over a caller-held workspace — the
    /// form the campaign workers run, one workspace per worker across
    /// all of its candidates. The stages share everything: the
    /// short-length HD screen's syndromes and certified-clean `d_min`
    /// ranges seed the full profile (staged-length-first, as in the
    /// paper's §4.1 funnel), the profile's searches seed the exact
    /// weight sweep, and the cached order serves `W₂` and the
    /// distinct-syndrome check for free.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from `crc-hd`.
    pub fn screen_in(
        g: &GenPoly,
        cfg: &CampaignConfig,
        ws: &mut SyndromeWorkspace,
    ) -> Result<Option<SurvivorRecord>> {
        // Funnel telemetry: one relaxed increment per stage reached, never
        // touching the evaluation itself (artifact bytes are unaffected).
        let funnel = crate::metrics::funnel();
        if let Some(f) = funnel {
            f.candidates.inc();
        }
        if !hd_filter_in(ws, g, cfg.screen_len(), cfg.min_hd)?.passed() {
            return Ok(None);
        }
        if let Some(f) = funnel {
            f.hd_pass.inc();
        }
        let profile = HdProfile::compute_in(ws, g, cfg.ref_len(), cfg.max_weight)?;
        if let Some(f) = funnel {
            f.profiled.inc();
        }
        let ref_len = cfg.ref_len();
        let w2 = ws.weight2(g, ref_len)?;
        let codeword = ref_len as u128 + g.width() as u128;
        let w34 = if codeword <= profile.order() {
            let w = ws.weights234(g, ref_len)?;
            debug_assert_eq!(w.w2, w2);
            if let Some(f) = funnel {
                f.weights.inc();
            }
            Some((w.w3, w.w4))
        } else {
            None
        };
        if let Some(f) = funnel {
            f.recorded.inc();
        }
        Ok(Some(SurvivorRecord {
            koopman: g.koopman(),
            width: g.width(),
            class: gf2poly::factor(g.to_poly()).signature().to_string(),
            taps: engine_cost(g).taps,
            order: profile.order(),
            dmins: profile.dmins().to_vec(),
            memo: ws.memo_facts(g),
            max_weight_explored: profile.max_weight_explored(),
            ref_len,
            w2,
            w34,
        }))
    }

    /// The generator this record describes.
    pub fn poly(&self) -> GenPoly {
        GenPoly::from_koopman(self.width, self.koopman).expect("validated at construction")
    }

    /// Rebuilds the HD profile over `1..=max_len` from the persisted
    /// parts (no `d_min` searches re-run). `max_len` is capped by the
    /// record's `ref_len` — the range the original computation explored;
    /// beyond it the persisted parts are censored and would over-report
    /// HD.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for `max_len` beyond `ref_len`; propagates
    /// `HdProfile::from_parts` validation errors.
    pub fn profile(&self, max_len: u32) -> Result<HdProfile> {
        if max_len > self.ref_len {
            return Err(Error::Config(format!(
                "profile range {max_len} exceeds the explored range {} of {}",
                self.ref_len,
                self.poly()
            )));
        }
        Ok(HdProfile::from_parts(
            &self.poly(),
            max_len,
            self.order,
            self.dmins.clone(),
            self.max_weight_explored,
        )?)
    }

    /// Recomputes the HD profile over `1..=max_len`, which — unlike
    /// [`SurvivorRecord::profile`] — may exceed the campaign's explored
    /// range: the record's persisted order and `d_min` memo are seeded
    /// into `ws` first, so every weight's scan *resumes* from the degree
    /// the campaign certified clean rather than restarting from `w − 1`.
    /// This is the second-pass entry point for re-profiling survivors at
    /// 8k–64k bits after a short-length census.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from `crc-hd` (e.g. a weight ≥ 5
    /// search exceeding its budget at very long lengths).
    pub fn reprofile_in(
        &self,
        ws: &mut SyndromeWorkspace,
        max_len: u32,
        max_weight: u32,
    ) -> Result<HdProfile> {
        let g = self.poly();
        ws.seed_order(&g, self.order);
        ws.seed_memo(&g, &self.memo);
        Ok(HdProfile::compute_in(ws, &g, max_len, max_weight)?)
    }

    /// The probability of an undetected error at `ref_len` under a BSC
    /// with bit-error rate `ber`, from the exact low weights:
    /// `P_ud(ε) = Σ_k W_k ε^k (1−ε)^(L−k)` truncated at weight 4 — the
    /// paper's §2 dominant-term form (higher-weight terms are smaller by
    /// further powers of `ε`). Zero exactly when the polynomial holds
    /// `HD ≥ 5` at the reference length.
    pub fn p_ud(&self, ber: f64) -> f64 {
        // Explicit multiply chains instead of `powi`: the latter may
        // lower to platform libm, and leaderboard bytes must not depend
        // on the host (IEEE multiplication is exactly rounded
        // everywhere).
        fn powu(base: f64, exp: u32) -> f64 {
            let mut r = 1.0;
            for _ in 0..exp {
                r *= base;
            }
            r
        }
        let l = self.ref_len + self.width;
        let q = 1.0 - ber;
        let term = |w: u128, k: u32| w as f64 * powu(ber, k) * powu(q, l - k);
        let mut p = term(self.w2, 2);
        if let Some((w3, w4)) = self.w34 {
            p += term(w3, 3) + term(w4, 4);
        }
        p
    }

    /// The JSON form written into shard logs (orders and weight counts
    /// as decimal strings: they exceed `u64` at larger widths).
    pub fn to_json(&self) -> Json {
        let (w3, w4) = match self.w34 {
            Some((w3, w4)) => (Json::Str(w3.to_string()), Json::Str(w4.to_string())),
            None => (Json::Null, Json::Null),
        };
        Json::obj([
            ("koopman", Json::Str(format!("{:#X}", self.koopman))),
            ("width", Json::Int(self.width as u64)),
            ("class", Json::Str(self.class.clone())),
            ("taps", Json::Int(self.taps as u64)),
            ("order", Json::Str(self.order.to_string())),
            (
                "dmins",
                Json::Arr(
                    self.dmins
                        .iter()
                        .map(|&(w, d)| Json::Arr(vec![Json::Int(w as u64), Json::Int(d as u64)]))
                        .collect(),
                ),
            ),
            (
                "memo",
                Json::Arr(
                    self.memo
                        .iter()
                        .map(|&(w, fact)| {
                            let (kind, val) = match fact {
                                MemoFact::MinDegree(d) => ("min", d),
                                MemoFact::ZeroBelow(t) => ("zero_below", t),
                            };
                            Json::Arr(vec![
                                Json::Int(w as u64),
                                Json::Str(kind.into()),
                                Json::Int(val as u64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "max_weight_explored",
                Json::Int(self.max_weight_explored as u64),
            ),
            ("ref_len", Json::Int(self.ref_len as u64)),
            ("w2", Json::Str(self.w2.to_string())),
            ("w3", w3),
            ("w4", w4),
        ])
    }

    /// Parses a record back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on any schema mismatch.
    pub fn from_json(v: &Json) -> Result<SurvivorRecord> {
        let koopman_text = v
            .require("koopman")?
            .as_str()
            .ok_or_else(|| Error::Parse("koopman is not a string".into()))?;
        let koopman = koopman_text
            .strip_prefix("0x")
            .or_else(|| koopman_text.strip_prefix("0X"))
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| Error::Parse(format!("bad koopman value {koopman_text:?}")))?;
        let parse_u128 = |key: &str| -> Result<u128> {
            v.require(key)?
                .as_str()
                .and_then(|s| s.parse::<u128>().ok())
                .ok_or_else(|| Error::Parse(format!("{key} is not a decimal string")))
        };
        let w34 = match (v.require("w3")?, v.require("w4")?) {
            (Json::Null, Json::Null) => None,
            _ => Some((parse_u128("w3")?, parse_u128("w4")?)),
        };
        let dmins = v
            .require("dmins")?
            .as_arr()
            .ok_or_else(|| Error::Parse("dmins is not an array".into()))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| Error::Parse("dmins entry is not a pair".into()))?;
                Ok((
                    pair[0]
                        .as_u32()
                        .ok_or_else(|| Error::Parse("bad dmin weight".into()))?,
                    pair[1]
                        .as_u32()
                        .ok_or_else(|| Error::Parse("bad dmin degree".into()))?,
                ))
            })
            .collect::<Result<Vec<(u32, u32)>>>()?;
        let memo = v
            .require("memo")?
            .as_arr()
            .ok_or_else(|| Error::Parse("memo is not an array".into()))?
            .iter()
            .map(|entry| {
                let entry = entry
                    .as_arr()
                    .filter(|e| e.len() == 3)
                    .ok_or_else(|| Error::Parse("memo entry is not a triple".into()))?;
                let w = entry[0]
                    .as_u32()
                    .ok_or_else(|| Error::Parse("bad memo weight".into()))?;
                let val = entry[2]
                    .as_u32()
                    .ok_or_else(|| Error::Parse("bad memo value".into()))?;
                let fact = match entry[1].as_str() {
                    Some("min") => MemoFact::MinDegree(val),
                    Some("zero_below") => MemoFact::ZeroBelow(val),
                    other => return Err(Error::Parse(format!("bad memo kind {other:?}"))),
                };
                Ok((w, fact))
            })
            .collect::<Result<Vec<(u32, MemoFact)>>>()?;
        let rec = SurvivorRecord {
            koopman,
            width: require_u64(v, "width")? as u32,
            class: v
                .require("class")?
                .as_str()
                .ok_or_else(|| Error::Parse("class is not a string".into()))?
                .to_string(),
            taps: require_u64(v, "taps")? as u32,
            order: parse_u128("order")?,
            dmins,
            memo,
            max_weight_explored: require_u64(v, "max_weight_explored")? as u32,
            ref_len: require_u64(v, "ref_len")? as u32,
            w2: parse_u128("w2")?,
            w34,
        };
        // Round-trip sanity: the koopman value must denote a valid
        // generator of the recorded width.
        GenPoly::from_koopman(rec.width, rec.koopman)
            .map_err(|e| Error::Parse(format!("invalid survivor polynomial: {e}")))?;
        Ok(rec)
    }
}

/// The result of processing one shard: what the log file records.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// The unit that was processed.
    pub unit: WorkUnit,
    /// Polynomials examined (range size, or deduplicated draws).
    pub scanned: u64,
    /// Canonical representatives among them (reciprocal pairing).
    pub canonical: u64,
    /// Survivors, ascending by Koopman value.
    pub survivors: Vec<SurvivorRecord>,
}

impl ShardResult {
    /// The shard-log JSON document.
    pub fn to_json(&self, config_hash: u64) -> Json {
        Json::obj([
            ("format", Json::Str("crc-survey-shard".into())),
            ("version", Json::Int(FORMAT_VERSION)),
            ("config_hash", Json::Str(format!("{config_hash:#018x}"))),
            ("shard", Json::Int(self.unit.shard)),
            ("start", Json::Int(self.unit.start)),
            ("end", Json::Int(self.unit.end)),
            ("scanned", Json::Int(self.scanned)),
            ("canonical", Json::Int(self.canonical)),
            (
                "survivors",
                Json::Arr(self.survivors.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Parses a shard log, checking format, version and campaign
    /// identity.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on schema or identity mismatch.
    pub fn from_json(v: &Json, config_hash: u64) -> Result<ShardResult> {
        check_header(v, "crc-survey-shard", config_hash)?;
        Ok(ShardResult {
            unit: WorkUnit {
                shard: require_u64(v, "shard")?,
                start: require_u64(v, "start")?,
                end: require_u64(v, "end")?,
            },
            scanned: require_u64(v, "scanned")?,
            canonical: require_u64(v, "canonical")?,
            survivors: v
                .require("survivors")?
                .as_arr()
                .ok_or_else(|| Error::Parse("survivors is not an array".into()))?
                .iter()
                .map(SurvivorRecord::from_json)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

/// Validates the `format`/`version`/`config_hash` header common to all
/// campaign artifacts.
pub(crate) fn check_header(v: &Json, format: &str, config_hash: u64) -> Result<()> {
    match v.require("format")?.as_str() {
        Some(f) if f == format => {}
        other => {
            return Err(Error::Parse(format!(
                "expected format {format:?}, found {other:?}"
            )))
        }
    }
    match require_u64(v, "version")? {
        FORMAT_VERSION => {}
        other => {
            return Err(Error::Parse(format!(
                "unsupported format version {other} (expected {FORMAT_VERSION})"
            )))
        }
    }
    let expect = format!("{config_hash:#018x}");
    match v.require("config_hash")?.as_str() {
        Some(h) if h == expect => Ok(()),
        other => Err(Error::Parse(format!(
            "artifact belongs to a different campaign: config hash {other:?}, expected {expect}"
        ))),
    }
}

/// The `campaign.json` checkpoint: config identity plus the set of
/// completed shards. Rewritten atomically after every shard completion.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The campaign parameters.
    pub config: CampaignConfig,
    /// Completed shard ids (sorted; `BTreeSet` keeps the JSON stable).
    pub completed: std::collections::BTreeSet<u64>,
}

impl Checkpoint {
    /// The checkpoint JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::Str("crc-survey-campaign".into())),
            ("version", Json::Int(FORMAT_VERSION)),
            (
                "config_hash",
                Json::Str(format!("{:#018x}", self.config.content_hash())),
            ),
            ("config", self.config.to_json()),
            (
                "completed",
                Json::Arr(self.completed.iter().map(|&s| Json::Int(s)).collect()),
            ),
        ])
    }

    /// Parses a checkpoint, re-deriving and verifying the config hash.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] on schema problems or identity mismatch.
    pub fn from_json(v: &Json) -> Result<Checkpoint> {
        let config = CampaignConfig::from_json(v.require("config")?)?;
        check_header(v, "crc-survey-campaign", config.content_hash())?;
        let completed = v
            .require("completed")?
            .as_arr()
            .ok_or_else(|| Error::Parse("completed is not an array".into()))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| Error::Parse("bad shard id".into()))
            })
            .collect::<Result<std::collections::BTreeSet<u64>>>()?;
        for &shard in &completed {
            if shard >= config.shards {
                return Err(Error::Parse(format!(
                    "completed shard {shard} outside 0..{}",
                    config.shards
                )));
            }
        }
        Ok(Checkpoint { config, completed })
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Error {
        Error::Parse(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crc_hd::weights::{weight2, weights234};

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            width: 12,
            shards: 7,
            seed: 42,
            mode: Mode::Exhaustive,
            min_hd: 4,
            target_lengths: vec![64, 256, 1024],
            ber_grid: vec![1e-5, 1e-6],
            max_weight: 8,
        }
    }

    #[test]
    fn work_units_partition_the_space_exactly() {
        let c = cfg();
        let units = c.work_units();
        assert_eq!(units.len(), 7);
        assert_eq!(units[0].start, 0);
        assert_eq!(units.last().unwrap().end, c.space().total());
        for pair in units.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        // Degenerate split: more shards than needed still covers exactly.
        let mut narrow = cfg();
        narrow.width = 3;
        narrow.shards = 4;
        let units = narrow.work_units();
        assert_eq!(units.iter().map(|u| u.end - u.start).sum::<u64>(), 4);
    }

    #[test]
    fn config_json_round_trip_and_hash_stability() {
        for mode in [Mode::Exhaustive, Mode::Sampled { per_shard: 50 }] {
            let mut c = cfg();
            c.mode = mode;
            let back = CampaignConfig::from_json(&c.to_json()).unwrap();
            assert_eq!(back, c);
            assert_eq!(back.content_hash(), c.content_hash());
        }
        // The hash is sensitive to every parameter.
        let mut other = cfg();
        other.seed += 1;
        assert_ne!(other.content_hash(), cfg().content_hash());
    }

    #[test]
    fn config_validation_rejects_bad_parameters() {
        let mut c = cfg();
        c.width = 2;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.shards = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.target_lengths = vec![64, 64];
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.ber_grid = vec![0.7];
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.max_weight = 3;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.mode = Mode::Sampled { per_shard: 0 };
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn unit_seed_matches_the_netsim_idiom() {
        assert_ne!(unit_seed(1, 0, 0), unit_seed(1, 0, 1));
        assert_ne!(unit_seed(1, 0, 0), unit_seed(1, 1, 0));
        assert_ne!(unit_seed(1, 0, 0), unit_seed(2, 0, 0));
        assert_eq!(unit_seed(7, 3, 1), unit_seed(7, 3, 1));
    }

    #[test]
    fn survivor_record_evaluates_and_round_trips() {
        let c = cfg();
        // 0xBA9 is some 12-bit generator; screen a few until one passes.
        let mut found = None;
        for g in c.space().iter_range(0, 512) {
            if let Some(rec) = SurvivorRecord::screen(&g, &c).unwrap() {
                found = Some(rec);
                break;
            }
        }
        let rec = found.expect("some 12-bit polynomial reaches HD 4 at 64 bits");
        let back = SurvivorRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
        // The rebuilt profile answers HD queries at every target length.
        let profile = back.profile(c.ref_len()).unwrap();
        for &n in &c.target_lengths {
            let _ = profile.hd_at(n);
        }
        assert!(profile.hd_at(c.screen_len()).is_none_or(|hd| hd >= 4));
        // Rebuilding past the explored range is refused (the parts are
        // censored at the original degree cap).
        assert!(matches!(
            back.profile(c.ref_len() + 1),
            Err(Error::Config(_))
        ));
        // P_ud is monotone in BER on the grid region.
        assert!(rec.p_ud(1e-5) >= rec.p_ud(1e-6));
    }

    #[test]
    fn weights_in_record_match_direct_computation() {
        let c = CampaignConfig {
            target_lengths: vec![16, 100],
            ..cfg()
        };
        for g in c.space().iter_range(100, 300) {
            if let Some(rec) = SurvivorRecord::screen(&g, &c).unwrap() {
                let codeword = 100u128 + 12;
                if codeword <= rec.order {
                    let w = weights234(&g, 100).unwrap();
                    assert_eq!(rec.w34, Some((w.w3, w.w4)));
                    assert_eq!(rec.w2, w.w2);
                } else {
                    assert_eq!(rec.w34, None);
                    assert_eq!(rec.w2, weight2(&g, 100).unwrap());
                }
            }
        }
    }

    #[test]
    fn checkpoint_round_trip_and_identity_guard() {
        let mut ck = Checkpoint {
            config: cfg(),
            completed: [0u64, 3, 5].into_iter().collect(),
        };
        let back = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back, ck);
        // A completed shard outside the range is rejected.
        ck.completed.insert(99);
        assert!(Checkpoint::from_json(&ck.to_json()).is_err());
        // A shard log from a different campaign is rejected.
        let sr = ShardResult {
            unit: WorkUnit {
                shard: 0,
                start: 0,
                end: 10,
            },
            scanned: 10,
            canonical: 5,
            survivors: vec![],
        };
        let logged = sr.to_json(cfg().content_hash());
        assert!(ShardResult::from_json(&logged, cfg().content_hash()).is_ok());
        assert!(ShardResult::from_json(&logged, 12345).is_err());
    }
}
