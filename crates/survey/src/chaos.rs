//! Deterministic fault injection for the distributed campaign
//! protocol.
//!
//! [`ChaosTransport`] wraps any [`WorkerTransport`] or
//! [`ServeTransport`] and injects seeded SplitMix64 faults at every
//! protocol step: connection resets, dropped replies, duplicated
//! requests, delayed delivery, and truncated or bit-flipped frames.
//! Corruption faults are driven through the *real* CRC framing layer —
//! the frame is rendered, a seeded bit is flipped (or the frame cut
//! short), and [`crate::frame::decode_bytes`] must reject it; the
//! rejection is tallied so tests can assert that every injected flip
//! was caught. The chaos matrix test
//! (`crates/survey/tests/chaos_matrix.rs`) runs a full campaign with
//! every fault kind enabled on both ends of both transports and
//! requires the merged artifacts to be byte-identical to a fault-free
//! single-host run.
//!
//! Faults are injected *around* the inner transport, so the observable
//! failure modes are exactly what a real flaky network produces:
//!
//! * a reset or a corrupted request never reaches the coordinator
//!   (client side: a retryable error; server side: a [`Reply::Retry`]);
//! * a dropped or corrupted reply loses the answer to a request the
//!   coordinator *did* handle — the dangerous case for `Submit`, which
//!   the worker retry layer resolves by idempotent resend;
//! * a duplicated request reaches the coordinator twice (idempotence
//!   drill);
//! * a delay just arrives late.

use crate::frame::{self, WireCounters, WireStats};
use crate::transport::{Reply, Request, ServeTransport, WorkerTransport};
use crate::{Error, Result};
use gf2poly::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-fault-kind injection rates (percent, 0–100) plus the RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed of the fault-decision stream (each wrapped end should get
    /// its own seed; decisions are deterministic in call order).
    pub seed: u64,
    /// Connection reset / request lost before delivery (percent).
    pub reset_pct: u8,
    /// Reply dropped after the coordinator handled the request
    /// (percent).
    pub drop_reply_pct: u8,
    /// Request delivered twice (percent).
    pub duplicate_pct: u8,
    /// Delivery delayed (percent).
    pub delay_pct: u8,
    /// Maximum injected delay in milliseconds (uniform in
    /// `1..=delay_ms_max`).
    pub delay_ms_max: u64,
    /// One bit of the frame flipped in flight (percent; rolled
    /// independently for the request and reply legs).
    pub corrupt_pct: u8,
    /// Frame truncated in flight (percent; request and reply legs).
    pub truncate_pct: u8,
}

impl ChaosConfig {
    /// Every fault kind at the same rate — the chaos-matrix setting.
    pub fn all(seed: u64, pct: u8) -> ChaosConfig {
        ChaosConfig {
            seed,
            reset_pct: pct,
            drop_reply_pct: pct,
            duplicate_pct: pct,
            delay_pct: pct,
            delay_ms_max: 5,
            corrupt_pct: pct,
            truncate_pct: pct,
        }
    }
}

/// Cumulative injection (and detection) counts, shared across the
/// threads a chaos end serves.
#[derive(Debug, Default)]
pub struct ChaosTally {
    /// Connection resets / requests lost before delivery.
    pub resets: AtomicU64,
    /// Replies dropped after the request was handled.
    pub dropped_replies: AtomicU64,
    /// Requests delivered twice.
    pub duplicates: AtomicU64,
    /// Deliveries delayed.
    pub delays: AtomicU64,
    /// Frames with one bit flipped.
    pub corrupted: AtomicU64,
    /// Frames truncated.
    pub truncated: AtomicU64,
    /// Damaged frames the CRC framing layer rejected on verify-on-read
    /// (should equal `corrupted + truncated`: CRC-32 catches every
    /// single-bit flip and every truncation of this frame format).
    pub crc_rejections: AtomicU64,
}

/// A plain-value copy of [`ChaosTally`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connection resets / requests lost before delivery.
    pub resets: u64,
    /// Replies dropped after the request was handled.
    pub dropped_replies: u64,
    /// Requests delivered twice.
    pub duplicates: u64,
    /// Deliveries delayed.
    pub delays: u64,
    /// Frames with one bit flipped.
    pub corrupted: u64,
    /// Frames truncated.
    pub truncated: u64,
    /// Damaged frames rejected by CRC verify-on-read.
    pub crc_rejections: u64,
}

impl ChaosStats {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.resets
            + self.dropped_replies
            + self.duplicates
            + self.delays
            + self.corrupted
            + self.truncated
    }
}

impl ChaosTally {
    fn bump(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> ChaosStats {
        ChaosStats {
            resets: self.resets.load(Ordering::Relaxed),
            dropped_replies: self.dropped_replies.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            crc_rejections: self.crc_rejections.load(Ordering::Relaxed),
        }
    }
}

/// Rolls one percent-probability fault decision off the seeded stream.
fn roll(rng: &mut SplitMix64, pct: u8) -> bool {
    pct > 0 && rng.next_below(100) < u64::from(pct)
}

/// Flips one seeded bit of a rendered frame.
fn flip_one_bit(line: &str, rng: &mut SplitMix64) -> Vec<u8> {
    let mut bytes = line.as_bytes().to_vec();
    let i = rng.next_below(bytes.len() as u64) as usize;
    let bit = rng.next_below(8) as u32;
    bytes[i] ^= 1u8 << bit;
    bytes
}

/// Cuts a rendered frame short at a seeded point (always at least one
/// byte shorter).
fn truncate_frame(line: &str, rng: &mut SplitMix64) -> Vec<u8> {
    let cut = rng.next_below(line.len() as u64) as usize;
    line.as_bytes()[..cut].to_vec()
}

/// Runs a rendered frame through damage + the real verify-on-read path
/// and records the detection. Returns `true` when the CRC layer
/// rejected the damage (the overwhelmingly common case; a surviving
/// frame is delivered untouched upstream, which is exactly what an
/// undetected corruption of a *verified* field-free protocol would
/// look like).
fn damaged_frame_rejected(
    payload: &str,
    truncate: bool,
    rng: &mut SplitMix64,
    tally: &ChaosTally,
    wire: &WireCounters,
) -> bool {
    let framed = frame::encode(payload);
    let mangled = if truncate {
        tally.bump(&tally.truncated);
        truncate_frame(&framed, rng)
    } else {
        tally.bump(&tally.corrupted);
        flip_one_bit(&framed, rng)
    };
    wire.count_chaos();
    if frame::decode_bytes(&mangled).is_err() {
        tally.bump(&tally.crc_rejections);
        wire.count_rejected();
        true
    } else {
        false
    }
}

/// A fault-injecting wrapper around either end of a transport.
///
/// Wrap a worker's client to shake the request path, a coordinator's
/// server to shake the reply path, or both at once (with different
/// seeds) for the full matrix.
#[derive(Debug)]
pub struct ChaosTransport<T> {
    inner: T,
    cfg: ChaosConfig,
    rng: SplitMix64,
    tally: Arc<ChaosTally>,
    wire: Arc<WireCounters>,
}

impl<T> ChaosTransport<T> {
    /// Wraps `inner` with the fault plan in `cfg`.
    pub fn new(inner: T, cfg: ChaosConfig) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            cfg,
            rng: SplitMix64::new(cfg.seed),
            tally: Arc::new(ChaosTally::default()),
            wire: Arc::new(WireCounters::default()),
        }
    }

    /// The injection/detection tallies (cloneable handle; stays valid
    /// while worker threads drive the transport).
    pub fn tally(&self) -> Arc<ChaosTally> {
        Arc::clone(&self.tally)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: WorkerTransport> WorkerTransport for ChaosTransport<T> {
    fn call(&mut self, req: &Request) -> Result<Reply> {
        // Request leg: faults that keep the request from arriving.
        if roll(&mut self.rng, self.cfg.reset_pct) {
            self.tally.bump(&self.tally.resets);
            self.wire.count_chaos();
            return Err(Error::Io(
                "chaos: connection reset before the request was delivered".into(),
            ));
        }
        for truncate in [false, true] {
            let pct = if truncate {
                self.cfg.truncate_pct
            } else {
                self.cfg.corrupt_pct
            };
            if roll(&mut self.rng, pct)
                && damaged_frame_rejected(
                    &req.to_json().render_compact(),
                    truncate,
                    &mut self.rng,
                    &self.tally,
                    &self.wire,
                )
            {
                // The (emulated) server rejected the damaged frame; a
                // real server would answer Retry or drop. Surface the
                // retryable class directly.
                return Err(Error::Frame(
                    "chaos: request frame damaged in flight (CRC rejected)".into(),
                ));
            }
        }
        if roll(&mut self.rng, self.cfg.duplicate_pct) {
            self.tally.bump(&self.tally.duplicates);
            self.wire.count_chaos();
            let _ = self.inner.call(req);
        }
        if roll(&mut self.rng, self.cfg.delay_pct) {
            self.tally.bump(&self.tally.delays);
            self.wire.count_chaos();
            let ms = 1 + self.rng.next_below(self.cfg.delay_ms_max.max(1));
            std::thread::sleep(Duration::from_millis(ms));
        }
        let reply = self.inner.call(req)?;
        // Reply leg: the coordinator handled the request, but the
        // answer never (cleanly) arrives.
        if roll(&mut self.rng, self.cfg.drop_reply_pct) {
            self.tally.bump(&self.tally.dropped_replies);
            self.wire.count_chaos();
            return Err(Error::Io("chaos: reply dropped in flight".into()));
        }
        for truncate in [false, true] {
            let pct = if truncate {
                self.cfg.truncate_pct
            } else {
                self.cfg.corrupt_pct
            };
            if roll(&mut self.rng, pct)
                && damaged_frame_rejected(
                    &reply.to_json().render_compact(),
                    truncate,
                    &mut self.rng,
                    &self.tally,
                    &self.wire,
                )
            {
                return Err(Error::Frame(
                    "chaos: reply frame damaged in flight (CRC rejected)".into(),
                ));
            }
        }
        Ok(reply)
    }

    fn wire_stats(&self) -> WireStats {
        self.inner.wire_stats().merged(self.wire.snapshot())
    }
}

impl<T: ServeTransport> ServeTransport for ChaosTransport<T> {
    fn serve_one(&mut self, handler: &mut dyn FnMut(Request) -> Reply) -> Result<bool> {
        let cfg = self.cfg;
        let rng = &mut self.rng;
        let tally = &self.tally;
        let wire = &self.wire;
        self.inner.serve_one(&mut |req| {
            // Request leg: the frame never (cleanly) reaches the
            // coordinator. The transport already attributed the sender,
            // so answer with the retryable signal a real server sends
            // for damaged traffic.
            if roll(rng, cfg.reset_pct) {
                tally.bump(&tally.resets);
                wire.count_chaos();
                wire.count_retry();
                return Reply::Retry {
                    reason: "chaos: request dropped before handling".into(),
                };
            }
            for truncate in [false, true] {
                let pct = if truncate {
                    cfg.truncate_pct
                } else {
                    cfg.corrupt_pct
                };
                if roll(rng, pct)
                    && damaged_frame_rejected(
                        &req.to_json().render_compact(),
                        truncate,
                        rng,
                        tally,
                        wire,
                    )
                {
                    wire.count_retry();
                    return Reply::Retry {
                        reason: "chaos: request frame damaged in flight (CRC rejected)".into(),
                    };
                }
            }
            if roll(rng, cfg.delay_pct) {
                tally.bump(&tally.delays);
                wire.count_chaos();
                let ms = 1 + rng.next_below(cfg.delay_ms_max.max(1));
                std::thread::sleep(Duration::from_millis(ms));
            }
            let reply = handler(req.clone());
            if roll(rng, cfg.duplicate_pct) {
                // Duplicated delivery: the coordinator handles the same
                // request again; the extra reply goes nowhere.
                tally.bump(&tally.duplicates);
                wire.count_chaos();
                let _ = handler(req);
            }
            // Reply leg: the coordinator's state already changed, but
            // the client only learns "resend" — the idempotence drill.
            if roll(rng, cfg.drop_reply_pct) {
                tally.bump(&tally.dropped_replies);
                wire.count_chaos();
                wire.count_retry();
                return Reply::Retry {
                    reason: "chaos: reply lost after handling".into(),
                };
            }
            for truncate in [false, true] {
                let pct = if truncate {
                    cfg.truncate_pct
                } else {
                    cfg.corrupt_pct
                };
                if roll(rng, pct)
                    && damaged_frame_rejected(
                        &reply.to_json().render_compact(),
                        truncate,
                        rng,
                        tally,
                        wire,
                    )
                {
                    wire.count_retry();
                    return Reply::Retry {
                        reason: "chaos: reply frame damaged in flight (CRC rejected)".into(),
                    };
                }
            }
            reply
        })
    }

    fn wire_stats(&self) -> WireStats {
        self.inner.wire_stats().merged(self.wire.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loopback transport whose handler is a fixed echo.
    struct Loopback {
        calls: u64,
    }

    impl WorkerTransport for Loopback {
        fn call(&mut self, _req: &Request) -> Result<Reply> {
            self.calls += 1;
            Ok(Reply::Wait { backoff_ms: 1 })
        }
    }

    #[test]
    fn chaos_decisions_are_deterministic_in_seed() {
        let run = |seed: u64| {
            let mut t = ChaosTransport::new(Loopback { calls: 0 }, ChaosConfig::all(seed, 25));
            let req = Request::Lease {
                worker: "w1".into(),
            };
            let outcomes: Vec<bool> = (0..200).map(|_| t.call(&req).is_ok()).collect();
            (outcomes, t.tally().snapshot())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b, "same seed, same fault schedule");
        assert_eq!(sa, sb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn injected_corruption_is_always_caught() {
        let cfg = ChaosConfig {
            seed: 7,
            reset_pct: 0,
            drop_reply_pct: 0,
            duplicate_pct: 0,
            delay_pct: 0,
            delay_ms_max: 1,
            corrupt_pct: 50,
            truncate_pct: 50,
        };
        let mut t = ChaosTransport::new(Loopback { calls: 0 }, cfg);
        let req = Request::Hello {
            worker: "w1".into(),
        };
        for _ in 0..500 {
            let _ = t.call(&req);
        }
        let s = t.tally().snapshot();
        assert!(s.corrupted > 0 && s.truncated > 0, "faults were injected");
        assert_eq!(
            s.crc_rejections,
            s.corrupted + s.truncated,
            "every injected flip/truncation must be rejected by the CRC layer"
        );
    }

    #[test]
    fn zero_rates_are_transparent() {
        let mut t = ChaosTransport::new(Loopback { calls: 0 }, ChaosConfig::all(1, 0));
        let req = Request::Lease {
            worker: "w1".into(),
        };
        for _ in 0..50 {
            assert_eq!(t.call(&req).unwrap(), Reply::Wait { backoff_ms: 1 });
        }
        assert_eq!(t.inner().calls, 50);
        assert_eq!(t.tally().snapshot().injected(), 0);
    }
}
