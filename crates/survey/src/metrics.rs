//! Cached handles onto the process-global [`telemetry`] registry.
//!
//! Hot paths (the per-candidate screening funnel, the per-burst
//! simulator loops) must not pay a registry lookup per event, so this
//! module resolves each metric once into a `OnceLock` and hands back
//! `None` while the global registry is disabled — callers write
//! `if let Some(m) = metrics::funnel() { m.candidates.inc(); }`, which
//! costs one relaxed load on the disabled path.
//!
//! The full metric catalog (names, types, units) is documented in
//! `docs/OBSERVABILITY.md`; names are hierarchical and dot-separated,
//! and everything recorded here is an integer so telemetry snapshots
//! stay byte-deterministic.

use std::sync::{Arc, OnceLock};

use telemetry::{Counter, Gauge, Histogram};

/// Shard evaluation durations bucketed from 1 ms to 100 s (microsecond
/// observations).
const SHARD_US_BOUNDS: &[u64] = &[
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
];

/// The per-stage screening funnel: each counter is the number of
/// candidates that *reached* that stage, so adjacent ratios are the
/// per-stage pass rates — except `weights`, which counts the subset of
/// profiled candidates whose exact `weights234` sweep ran (it is
/// skipped when the codeword length exceeds the generator's order, so
/// it can sit below `recorded`).
#[derive(Debug)]
pub struct Funnel {
    /// Candidates entering the screen (canonical representatives in
    /// exhaustive mode, draws in sampled/census modes).
    pub candidates: Arc<Counter>,
    /// Candidates that cleared the staged `hd_filter` bar.
    pub hd_pass: Arc<Counter>,
    /// Candidates whose full `HdProfile` was computed.
    pub profiled: Arc<Counter>,
    /// Candidates whose exact `weights234` closed-form sweep ran
    /// (skipped when the codeword length exceeds the order).
    pub weights: Arc<Counter>,
    /// Candidates that became survivor records.
    pub recorded: Arc<Counter>,
}

/// Engine-side rates and index-policy gauges, refreshed after each work
/// unit.
#[derive(Debug)]
pub struct Engine {
    /// Work-unit wall time in microseconds.
    pub shard_us: Arc<Histogram>,
    /// Polynomials scanned per second across the local pool (or the
    /// worker process), refreshed per completed unit.
    pub polys_per_s: Arc<Gauge>,
    /// Estimated milliseconds to campaign completion from the shard
    /// completion rate; 0 until one shard completes.
    pub eta_ms: Arc<Gauge>,
    /// Positions held in the workspace value→position index.
    pub index_positions: Arc<Gauge>,
    /// Spill rows materialized by the two-level index.
    pub index_spill_rows: Arc<Gauge>,
    /// Positions stored in two-level spill rows.
    pub index_spill_positions: Arc<Gauge>,
    /// Implicit growth rehashes of the hash index (high-water mark; the
    /// sizing contract keeps this at 0).
    pub index_rehashes: Arc<Gauge>,
    /// Slot capacity of the hash index (high-water mark).
    pub index_hash_capacity: Arc<Gauge>,
    /// Times any workspace was (re)bound to a polynomial.
    pub index_rebinds: Arc<Gauge>,
}

/// Coordinator-side counters mirroring [`CoordSummary`] plus request
/// traffic.
///
/// [`CoordSummary`]: crate::coordinator::CoordSummary
#[derive(Debug)]
pub struct Coord {
    /// Requests handled, any type.
    pub requests: Arc<Counter>,
    /// Fresh shard results recorded.
    pub recorded: Arc<Counter>,
    /// Duplicate submissions accepted idempotently.
    pub duplicates: Arc<Counter>,
    /// Leases reclaimed after TTL expiry.
    pub leases_expired: Arc<Counter>,
    /// Requests refused (bad config hash, unknown worker, bad shard).
    pub refusals: Arc<Counter>,
    /// `Reply::Retry` answers issued for damaged or undeliverable
    /// traffic.
    pub retries: Arc<Counter>,
    /// Shards recorded in the manifest (gauge: includes prior sessions).
    pub shards_done: Arc<Gauge>,
    /// Shards currently parked in quarantine after repeated lease
    /// expiries.
    pub quarantined: Arc<Gauge>,
}

/// Worker-loop progress counters.
#[derive(Debug)]
pub struct Worker {
    /// Shards evaluated and submitted by this worker process.
    pub shards: Arc<Counter>,
    /// Polynomials scanned per second by this worker, refreshed per
    /// shard.
    pub polys_per_s: Arc<Gauge>,
    /// `Reply::Wait` backoffs honoured.
    pub waits: Arc<Counter>,
    /// Requests resent after a retryable failure or `Reply::Retry`.
    pub retries: Arc<Counter>,
}

/// Wire-level framing counters shared by every transport end in the
/// process (both directions; see [`WireCounters`]).
///
/// [`WireCounters`]: crate::frame::WireCounters
#[derive(Debug)]
pub struct Transport {
    /// Frames put on the wire.
    pub frames_sent: Arc<Counter>,
    /// Frames rejected by CRC/trailer verification on read.
    pub frames_rejected: Arc<Counter>,
    /// `Reply::Retry` answers produced for damaged traffic.
    pub retries_signalled: Arc<Counter>,
    /// Faults deliberately injected by a chaos wrapper.
    pub chaos_injected: Arc<Counter>,
}

/// The screening-funnel counters, or `None` while telemetry is
/// disabled.
pub fn funnel() -> Option<&'static Funnel> {
    static FUNNEL: OnceLock<Funnel> = OnceLock::new();
    let reg = telemetry::global();
    if !reg.enabled() {
        return None;
    }
    Some(FUNNEL.get_or_init(|| Funnel {
        candidates: reg.counter("survey.funnel.candidates"),
        hd_pass: reg.counter("survey.funnel.hd_pass"),
        profiled: reg.counter("survey.funnel.profiled"),
        weights: reg.counter("survey.funnel.weights"),
        recorded: reg.counter("survey.funnel.recorded"),
    }))
}

/// The engine gauges and shard-duration histogram, or `None` while
/// telemetry is disabled.
pub fn engine() -> Option<&'static Engine> {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    let reg = telemetry::global();
    if !reg.enabled() {
        return None;
    }
    Some(ENGINE.get_or_init(|| Engine {
        shard_us: reg.histogram("survey.engine.shard_us", SHARD_US_BOUNDS),
        polys_per_s: reg.gauge("survey.engine.polys_per_s"),
        eta_ms: reg.gauge("survey.engine.eta_ms"),
        index_positions: reg.gauge("survey.index.positions"),
        index_spill_rows: reg.gauge("survey.index.spill_rows"),
        index_spill_positions: reg.gauge("survey.index.spill_positions"),
        index_rehashes: reg.gauge("survey.index.rehashes"),
        index_hash_capacity: reg.gauge("survey.index.hash_capacity"),
        index_rebinds: reg.gauge("survey.index.rebinds"),
    }))
}

/// The coordinator counters, or `None` while telemetry is disabled.
pub fn coord() -> Option<&'static Coord> {
    static COORD: OnceLock<Coord> = OnceLock::new();
    let reg = telemetry::global();
    if !reg.enabled() {
        return None;
    }
    Some(COORD.get_or_init(|| Coord {
        requests: reg.counter("survey.coord.requests"),
        recorded: reg.counter("survey.coord.recorded"),
        duplicates: reg.counter("survey.coord.duplicates"),
        leases_expired: reg.counter("survey.coord.leases_expired"),
        refusals: reg.counter("survey.coord.refusals"),
        retries: reg.counter("survey.coord.retries"),
        shards_done: reg.gauge("survey.coord.shards_done"),
        quarantined: reg.gauge("survey.coord.quarantined"),
    }))
}

/// The worker-loop counters, or `None` while telemetry is disabled.
pub fn worker() -> Option<&'static Worker> {
    static WORKER: OnceLock<Worker> = OnceLock::new();
    let reg = telemetry::global();
    if !reg.enabled() {
        return None;
    }
    Some(WORKER.get_or_init(|| Worker {
        shards: reg.counter("survey.worker.shards"),
        polys_per_s: reg.gauge("survey.worker.polys_per_s"),
        waits: reg.counter("survey.worker.waits"),
        retries: reg.counter("survey.worker.retries"),
    }))
}

/// The wire framing counters, or `None` while telemetry is disabled.
pub fn transport() -> Option<&'static Transport> {
    static TRANSPORT: OnceLock<Transport> = OnceLock::new();
    let reg = telemetry::global();
    if !reg.enabled() {
        return None;
    }
    Some(TRANSPORT.get_or_init(|| Transport {
        frames_sent: reg.counter("survey.transport.frames_sent"),
        frames_rejected: reg.counter("survey.transport.frames_rejected"),
        retries_signalled: reg.counter("survey.transport.retries_signalled"),
        chaos_injected: reg.counter("survey.transport.chaos_injected"),
    }))
}

/// Refresh the engine index gauges from a workspace's stat accessors.
///
/// Gauges take the running maximum across workspaces so a many-thread
/// pool reports its busiest index rather than whichever thread updated
/// last.
pub fn observe_index(ws: &crc_hd::SyndromeWorkspace) {
    if let Some(m) = engine() {
        m.index_positions.set_max(u64::from(ws.positions_indexed()));
        m.index_spill_rows.set_max(ws.two_level_spill_rows() as u64);
        m.index_spill_positions
            .set_max(ws.two_level_spill_positions() as u64);
        m.index_rehashes.set_max(ws.hash_rehashes());
        m.index_hash_capacity.set_max(ws.hash_capacity() as u64);
        m.index_rebinds.set_max(ws.rebinds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_resolve_and_count_when_enabled() {
        let reg = telemetry::global();
        let was = reg.enabled();
        reg.set_enabled(true);
        let f = funnel().expect("enabled registry yields handles");
        let before = f.candidates.get();
        f.candidates.inc();
        // `>=`: other lib tests drive the same process-global counter.
        assert!(f.candidates.get() > before);
        assert!(engine().is_some());
        assert!(coord().is_some());
        assert!(worker().is_some());
        assert!(transport().is_some());
        reg.set_enabled(was);
    }
}
