//! Coordinator restart recovery: killing the coordinator mid-campaign
//! must cost at most re-evaluated work. All durable state is the
//! checkpoint, so a fresh coordinator process rebuilds from
//! `campaign.json` + shard logs, and workers — whose requests fail
//! retryably while the coordinator is down — simply re-handshake and
//! continue. Artifacts stay byte-identical to an uninterrupted run.

use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::coordinator::Coordinator;
use crc_survey::engine::Campaign;
use crc_survey::leaderboard::{build, LeaderboardOptions};
use crc_survey::transport::{
    FileQueueClient, FileQueueServer, Reply, Request, ServeTransport, TcpClient, TcpServer,
    WorkerTransport,
};
use crc_survey::worker::{run_worker, RetryPolicy, WorkerOptions};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-restart-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig {
        width: 13,
        shards: 8,
        seed: 2002,
        mode: Mode::Exhaustive,
        min_hd: 4,
        target_lengths: vec![32, 128],
        ber_grid: vec![1e-4, 1e-6],
        max_weight: 6,
    }
}

fn leaderboard_bytes(dir: &Path) -> Vec<u8> {
    let campaign = Campaign::open(dir).unwrap();
    assert!(campaign.is_complete());
    build(
        &campaign,
        &LeaderboardOptions {
            top: 5,
            spot_check_32: false,
            ..Default::default()
        },
    )
    .unwrap()
    .render()
    .into_bytes()
}

#[test]
fn coordinator_restart_resumes_from_the_checkpoint() {
    // Ground truth.
    let single = test_dir("single");
    Campaign::create(&single, config())
        .unwrap()
        .run(2, None)
        .unwrap();

    let dist = test_dir("dist");
    let queue = test_dir("queue");

    // The worker outlives both coordinator incarnations: while the
    // coordinator is down its calls time out (retryable) and the retry
    // policy keeps it alive until the successor answers.
    let worker_thread = {
        let queue = queue.clone();
        std::thread::spawn(move || {
            let mut client = FileQueueClient::new(&queue, "w1")
                .unwrap()
                .with_timing(Duration::from_millis(2), Duration::from_millis(500));
            run_worker(
                &mut client,
                &WorkerOptions {
                    name: "w1".into(),
                    max_shards: None,
                    retry: RetryPolicy {
                        base: Duration::from_millis(5),
                        cap: Duration::from_millis(100),
                        max_attempts: 200,
                        seed: 7,
                    },
                },
            )
            .expect("the worker must survive the coordinator restart")
        })
    };

    // Incarnation one: serve until three shards are durable, then die
    // without a word (leases and session counters are lost with it).
    {
        let campaign = Campaign::create(&dist, config()).unwrap();
        let mut coordinator = Coordinator::new(campaign, Duration::from_secs(60));
        let mut server = FileQueueServer::new(&queue).unwrap();
        while coordinator.summary().shards_recorded < 3 {
            if !server
                .serve_one(&mut |req| coordinator.handle(req, Instant::now()))
                .unwrap()
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    } // crash: coordinator dropped mid-campaign

    // A real outage: longer than the worker's 500ms call timeout, so
    // its in-flight request demonstrably fails and is resent.
    std::thread::sleep(Duration::from_millis(900));

    // Incarnation two: rebuild from the checkpoint and finish. The
    // successor knows nothing of the first session beyond what the
    // manifest records.
    let campaign = Campaign::open(&dist).unwrap();
    let (done, _) = campaign.progress();
    assert!(done >= 3, "the checkpoint survived the crash");
    let mut coordinator = Coordinator::new(campaign, Duration::from_secs(60));
    let mut server = FileQueueServer::new(&queue).unwrap();
    let summary = coordinator
        .serve(
            &mut server,
            Duration::from_millis(2),
            Duration::from_secs(2),
        )
        .unwrap();

    let worker_summary = worker_thread.join().unwrap();
    assert_eq!(worker_summary.shards_submitted, config().shards);
    assert!(
        worker_summary.retries > 0,
        "the outage must have forced retries"
    );
    assert!(coordinator.campaign().is_complete());
    // The two sessions together recorded every shard exactly once
    // (requests already in flight at the crash are answered by the
    // successor; duplicates, if any, merge idempotently).
    assert_eq!(summary.refusals, 0);

    let a = leaderboard_bytes(&single);
    let b = leaderboard_bytes(&dist);
    assert_eq!(a, b, "leaderboard differs after the restart");

    for dir in [single, dist, queue] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn tcp_client_retries_connect_until_a_listener_appears() {
    // Learn a free port, then leave it unbound while the client starts.
    let probe = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let server_thread = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            // The coordinator comes up "late": the client must already
            // be retrying connection-refused with backoff by then.
            std::thread::sleep(Duration::from_millis(300));
            let mut server = TcpServer::bind(&addr).unwrap();
            loop {
                match server.serve_one(&mut |_req| Reply::Done) {
                    Ok(true) => return,
                    Ok(false) => std::thread::sleep(Duration::from_millis(1)),
                    Err(e) => panic!("serve failed: {e}"),
                }
            }
        })
    };

    let mut client = TcpClient::new(&addr).with_timeout(Duration::from_secs(10));
    let reply = client
        .call(&Request::Hello {
            worker: "w1".into(),
        })
        .expect("connect retry must outlast the listener's late start");
    assert_eq!(reply, Reply::Done);
    server_thread.join().unwrap();
}

#[test]
fn tcp_connect_timeout_names_the_connect_phase() {
    // Learn a (very likely) dead port.
    let probe = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = probe.local_addr().unwrap().to_string();
    drop(probe);

    let mut client = TcpClient::new(&addr).with_timeout(Duration::from_millis(300));
    let err = client
        .call(&Request::Hello {
            worker: "w1".into(),
        })
        .unwrap_err();
    assert!(err.is_retryable(), "a connect timeout is transient");
    let msg = err.to_string();
    assert!(
        msg.contains("connect to") && msg.contains("timed out"),
        "the error must say the *connect* timed out: {msg}"
    );
    assert!(
        msg.contains("attempts"),
        "attempt count aids diagnosis: {msg}"
    );
}
