//! The checkpoint/resume determinism contract, exercised the hard way:
//! a 14-bit campaign run straight through is compared byte-for-byte —
//! survivor logs, manifest and leaderboard JSON — against the same
//! campaign killed at *every* checkpoint and resumed from disk, at one
//! and at four worker threads.

use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::engine::Campaign;
use crc_survey::leaderboard::{build, LeaderboardOptions};
use std::path::PathBuf;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-survey-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig {
        width: 14,
        shards: 10,
        seed: 2002,
        mode: Mode::Exhaustive,
        min_hd: 4,
        target_lengths: vec![32, 128],
        ber_grid: vec![1e-4, 1e-6],
        max_weight: 6,
    }
}

/// Runs the campaign to completion in one process, `threads` workers.
fn run_straight(tag: &str, threads: usize) -> PathBuf {
    let dir = test_dir(tag);
    let mut campaign = Campaign::create(&dir, config()).unwrap();
    campaign.run(threads, None).unwrap();
    assert!(campaign.is_complete());
    dir
}

/// Runs the campaign one checkpoint at a time, re-opening from disk
/// between shards — a kill at every possible checkpoint boundary.
fn run_killed_at_every_checkpoint(tag: &str, threads: usize) -> PathBuf {
    let dir = test_dir(tag);
    {
        let mut campaign = Campaign::create(&dir, config()).unwrap();
        campaign.run(threads, Some(1)).unwrap();
    } // drop = the process dies
    let mut rounds = 1u32;
    loop {
        let mut campaign = Campaign::open(&dir).unwrap();
        if campaign.is_complete() {
            break;
        }
        campaign.run(threads, Some(1)).unwrap();
        rounds += 1;
        assert!(rounds <= config().shards as u32, "no forward progress");
    }
    assert_eq!(rounds, config().shards as u32, "one shard per 'kill'");
    dir
}

fn artifact_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let campaign = Campaign::open(dir).unwrap();
    let mut out = Vec::new();
    out.push((
        "campaign.json".to_string(),
        std::fs::read(dir.join("campaign.json")).unwrap(),
    ));
    for shard in 0..campaign.config().shards {
        let path = campaign.shard_log_path(shard);
        out.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).unwrap(),
        ));
    }
    let board = build(
        &campaign,
        &LeaderboardOptions {
            top: 5,
            spot_check_32: false,
            ..Default::default()
        },
    )
    .unwrap();
    out.push(("leaderboard.json".to_string(), board.render().into_bytes()));
    out
}

#[test]
fn straight_and_killed_campaigns_are_byte_identical_at_1_and_4_threads() {
    let straight_1 = run_straight("straight-1t", 1);
    let baseline = artifact_bytes(&straight_1);
    assert_eq!(baseline.len() as u64, 2 + config().shards);
    // Some shard must have survivors for the comparison to mean much.
    assert!(
        baseline.iter().any(|(_, bytes)| {
            bytes.len() > 200 && String::from_utf8_lossy(bytes).contains("koopman")
        }),
        "14-bit campaign must record survivors"
    );

    for (tag, dir) in [
        ("straight-4t", run_straight("s4", 4)),
        ("killed-1t", run_killed_at_every_checkpoint("k1", 1)),
        ("killed-4t", run_killed_at_every_checkpoint("k4", 4)),
    ] {
        let got = artifact_bytes(&dir);
        assert_eq!(got.len(), baseline.len(), "{tag}");
        for ((name_a, bytes_a), (name_b, bytes_b)) in baseline.iter().zip(&got) {
            assert_eq!(name_a, name_b, "{tag}");
            assert_eq!(
                bytes_a, bytes_b,
                "{tag}: {name_a} diverged from the uninterrupted 1-thread run"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&straight_1);
}

#[test]
fn resume_refuses_a_mismatched_campaign() {
    // A manifest whose config was edited after the fact (hash mismatch)
    // must be rejected rather than silently mixed.
    let dir = test_dir("tamper");
    let mut campaign = Campaign::create(&dir, config()).unwrap();
    campaign.run(2, Some(1)).unwrap();
    let manifest = dir.join("campaign.json");
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(&manifest, text.replace("\"seed\": 2002", "\"seed\": 2003")).unwrap();
    assert!(Campaign::open(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
