//! CLI contract tests: `--stop-after` behaves exactly as its one
//! canonical sentence documents — in the binary's help text, in
//! `docs/CENSUS.md`, and on disk.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The sentence both the CLI help and docs/CENSUS.md must carry,
/// verbatim. If you change the semantics, change it in all three
/// places — that is the point of this test.
const STOP_AFTER_SEMANTICS: &str = "--stop-after K exits at the next checkpoint boundary: \
after this invocation checkpoints K shards (fewer if the campaign finishes first) the \
process stops, and a later resume continues the manifest to artifacts byte-identical to \
an uninterrupted run.";

fn survey() -> Command {
    Command::new(env!("CARGO_BIN_EXE_survey"))
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-cli-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn completed_shards(dir: &Path) -> (u64, u64) {
    crc_survey::engine::Campaign::open(dir).unwrap().progress()
}

#[test]
fn help_and_runbook_state_the_same_stop_after_semantics() {
    let out = survey().arg("help").output().unwrap();
    assert!(out.status.success());
    let help = String::from_utf8(out.stdout).unwrap();
    // The help wraps the sentence over lines; compare unwrapped.
    let unwrapped = help.replace('\n', " ").replace("  ", " ");
    assert!(
        unwrapped.contains(STOP_AFTER_SEMANTICS),
        "help text lost the canonical --stop-after sentence:\n{help}"
    );

    let runbook = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/CENSUS.md");
    let text = std::fs::read_to_string(&runbook)
        .unwrap_or_else(|e| panic!("read {}: {e}", runbook.display()));
    let unwrapped = text.replace('\n', " ").replace("  ", " ");
    assert!(
        unwrapped.contains(STOP_AFTER_SEMANTICS),
        "docs/CENSUS.md no longer quotes the canonical --stop-after sentence"
    );
}

#[test]
fn stop_after_pauses_at_the_documented_boundary_and_resume_finishes() {
    let dir = test_dir("stop-after");
    let status = survey()
        .args(["run", "--dir"])
        .arg(&dir)
        .args([
            "--width",
            "12",
            "--shards",
            "6",
            "--lengths",
            "32,64",
            "--threads",
            "2",
            "--stop-after",
            "2",
        ])
        .status()
        .unwrap();
    assert!(status.success());
    // "after this invocation checkpoints K shards ... the process
    // stops": exactly 2 of 6, durably recorded in the manifest.
    assert_eq!(completed_shards(&dir), (2, 6));

    // "a later resume continues the manifest": stop-after counts only
    // this invocation's checkpoints, so 2 more land here.
    let status = survey()
        .args(["resume", "--dir"])
        .arg(&dir)
        .args(["--threads", "2", "--stop-after", "2"])
        .status()
        .unwrap();
    assert!(status.success());
    assert_eq!(completed_shards(&dir), (4, 6));

    // An unbounded resume completes the campaign...
    let status = survey()
        .args(["resume", "--dir"])
        .arg(&dir)
        .args(["--threads", "2"])
        .status()
        .unwrap();
    assert!(status.success());
    assert_eq!(completed_shards(&dir), (6, 6));

    // ..."to artifacts byte-identical to an uninterrupted run".
    let straight = test_dir("straight");
    let status = survey()
        .args(["run", "--dir"])
        .arg(&straight)
        .args([
            "--width",
            "12",
            "--shards",
            "6",
            "--lengths",
            "32,64",
            "--threads",
            "2",
        ])
        .status()
        .unwrap();
    assert!(status.success());
    for shard in 0..6u64 {
        let name = format!("shards/shard-{shard:05}.json");
        assert_eq!(
            std::fs::read(dir.join(&name)).unwrap(),
            std::fs::read(straight.join(&name)).unwrap(),
            "{name} differs between interrupted and straight runs"
        );
    }
    assert_eq!(
        std::fs::read(dir.join("campaign.json")).unwrap(),
        std::fs::read(straight.join("campaign.json")).unwrap()
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&straight);
}
