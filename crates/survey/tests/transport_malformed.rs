//! Malformed-frame tolerance: truncated, bit-flipped, unframed, and
//! garbage variants of every protocol message, fed to live servers over
//! both transports. The server must answer each damaged frame with a
//! retryable signal (or drop it cleanly), never die, and keep serving
//! well-formed traffic afterwards.

use crc_survey::frame;
use crc_survey::json::Json;
use crc_survey::transport::{FileQueueServer, Reply, Request, ServeTransport, TcpServer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-malformed-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One frame per protocol message shape (requests and replies — a
/// confused peer may send either at either end).
fn sample_frames() -> Vec<String> {
    let reqs = [
        Request::Hello {
            worker: "w1".into(),
        },
        Request::Lease {
            worker: "w1".into(),
        },
        Request::Submit {
            worker: "w1".into(),
            log: Json::obj([("shard", Json::Int(3))]),
        },
        Request::Status {
            worker: "w1".into(),
        },
    ];
    let replies = [
        Reply::Welcome {
            config: Json::obj([("width", Json::Int(13))]),
            config_hash: "0x0123456789abcdef".into(),
        },
        Reply::Assign {
            shard: 5,
            start: 0,
            end: 99,
        },
        Reply::Wait { backoff_ms: 50 },
        Reply::Retry {
            reason: "CRC mismatch".into(),
        },
        Reply::Done,
    ];
    reqs.iter()
        .map(|r| frame::encode(&r.to_json().render_compact()))
        .chain(
            replies
                .iter()
                .map(|r| frame::encode(&r.to_json().render_compact())),
        )
        .collect()
}

/// Damaged variants of one frame: truncations at several depths, bit
/// flips across the payload and the trailer, the bare payload with no
/// trailer, and outright garbage.
fn mangled(framed: &str) -> Vec<Vec<u8>> {
    let bytes = framed.as_bytes();
    let mut out = Vec::new();
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        out.push(bytes[..cut].to_vec());
    }
    for (i, bit) in [
        (0, 0),
        (bytes.len() / 3, 4),
        (bytes.len() - 2, 5),
        (bytes.len() - 9, 1),
    ] {
        let mut v = bytes.to_vec();
        v[i] ^= 1 << bit;
        out.push(v);
    }
    out.push(framed.as_bytes()[..framed.len() - 15].to_vec()); // no trailer
    out.push(b"!!! not even json !!!".to_vec());
    out.push(vec![0xFF, 0xFE, 0x00, 0x41]); // invalid UTF-8
    out
}

#[test]
fn file_queue_server_survives_every_mangled_frame() {
    let root = test_dir("fq");
    let mut server = FileQueueServer::new(&root).unwrap();
    let mut handled = 0u32;
    let mut seq = 0u32;

    for framed in sample_frames() {
        for damage in mangled(&framed) {
            seq += 1;
            let name = format!("req-w1-{seq:08}.json");
            std::fs::write(root.join("inbox").join(&name), &damage).unwrap();
            let served = server
                .serve_one(&mut |_req| {
                    handled += 1;
                    Reply::Done
                })
                .expect("a damaged frame must never error the serve loop");
            assert!(served, "the damaged file was consumed");
            assert!(
                !root.join("inbox").join(&name).exists(),
                "damaged request file must be removed"
            );
            // A CRC-rejected frame earns a framed Retry into the
            // sender's outbox (attribution survives in the file name).
            let rsp = root
                .join("outbox")
                .join("w1")
                .join(format!("rsp-{seq:08}.json"));
            if frame::decode_bytes(&damage).is_err() {
                let text = std::fs::read_to_string(&rsp).unwrap();
                let payload = frame::decode(&text).unwrap();
                let reply = Reply::from_json(&Json::parse(payload).unwrap()).unwrap();
                assert!(
                    matches!(reply, Reply::Retry { .. }),
                    "expected a retry signal, got {reply:?}"
                );
                let _ = std::fs::remove_file(&rsp);
            }
        }
    }
    assert_eq!(handled, 0, "no damaged frame may ever reach the handler");
    assert!(server.wire_stats().frames_rejected > 0);

    // The server still serves honest traffic afterwards.
    let honest = frame::encode(
        &Request::Lease {
            worker: "w1".into(),
        }
        .to_json()
        .render_compact(),
    );
    std::fs::write(root.join("inbox").join("req-w1-99999999.json"), honest).unwrap();
    server
        .serve_one(&mut |_req| {
            handled += 1;
            Reply::Done
        })
        .unwrap();
    assert_eq!(handled, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tcp_server_survives_every_mangled_frame() {
    let mut server = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();

    let exchange = |line: &[u8], server: &mut TcpServer, handled: &mut u32| -> Vec<u8> {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut msg = line.to_vec();
        msg.push(b'\n');
        stream.write_all(&msg).unwrap();
        // Poll the (non-blocking) server until it picks the call up.
        loop {
            match server.serve_one(&mut |_req| {
                *handled += 1;
                Reply::Done
            }) {
                Ok(true) => break,
                Ok(false) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("a damaged frame must never error the serve loop: {e}"),
            }
        }
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).unwrap();
        reply
    };

    let mut handled = 0u32;
    for framed in sample_frames() {
        for damage in mangled(&framed) {
            // Frames containing a newline would split into two lines —
            // the remainder is just another (truncated, rejected) line,
            // but keep the accounting simple by skipping those.
            if damage.contains(&b'\n') {
                continue;
            }
            let reply_line = exchange(&damage, &mut server, &mut handled);
            assert!(!reply_line.is_empty(), "server must answer, not die");
            let payload = frame::decode_bytes(&reply_line).unwrap();
            let reply = Reply::from_json(&Json::parse(&payload).unwrap()).unwrap();
            if frame::decode_bytes(&damage).is_err() {
                assert!(
                    matches!(reply, Reply::Retry { .. }),
                    "CRC-damaged line must earn a retry, got {reply:?}"
                );
            } else {
                // Intact frames: requests are handled, replies-as-
                // requests are schema errors → refused.
                assert!(
                    matches!(reply, Reply::Done | Reply::Refused { .. }),
                    "unexpected reply {reply:?}"
                );
            }
        }
    }
    assert_eq!(handled, 0, "no damaged frame may ever reach the handler");
    assert!(server.wire_stats().frames_rejected > 0);

    // Still serving honest traffic.
    let honest = frame::encode(
        &Request::Status {
            worker: "w9".into(),
        }
        .to_json()
        .render_compact(),
    );
    let reply_line = exchange(honest.as_bytes(), &mut server, &mut handled);
    let payload = frame::decode_bytes(&reply_line).unwrap();
    assert_eq!(
        Reply::from_json(&Json::parse(&payload).unwrap()).unwrap(),
        Reply::Done
    );
    assert_eq!(handled, 1);
}
