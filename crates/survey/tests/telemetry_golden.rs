//! Telemetry acceptance: instrumentation must never change campaign
//! bytes, the coordinator must answer live `Status` requests over TCP,
//! and `survey watch --once` must work end to end against a file-queue
//! coordinator that also persists `coordinator-summary.json`.

use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::coordinator::Coordinator;
use crc_survey::engine::Campaign;
use crc_survey::leaderboard::{build, LeaderboardOptions};
use crc_survey::transport::{
    Reply, Request, ServeTransport, TcpClient, TcpServer, WorkerTransport,
};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// These tests toggle and read the process-global telemetry registry;
/// serialize them so one test's disabled window cannot race another's
/// counter assertions.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-telemetry-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig {
        width: 12,
        shards: 8,
        seed: 1,
        mode: Mode::Exhaustive,
        min_hd: 4,
        target_lengths: vec![32, 64],
        ber_grid: vec![1e-5],
        max_weight: 6,
    }
}

/// Campaign artifacts plus the leaderboard built from them, as bytes.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let campaign = Campaign::open(dir).unwrap();
    assert!(campaign.is_complete());
    let mut out = vec![(
        "campaign.json".to_string(),
        std::fs::read(dir.join("campaign.json")).unwrap(),
    )];
    for shard in 0..campaign.config().shards {
        let path = campaign.shard_log_path(shard);
        out.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).unwrap(),
        ));
    }
    let board = build(
        &campaign,
        &LeaderboardOptions {
            top: 5,
            spot_check_32: false,
            ..Default::default()
        },
    )
    .unwrap();
    out.push(("leaderboard.json".to_string(), board.render().into_bytes()));
    out
}

/// The golden-byte acceptance gate: the same campaign run with
/// telemetry recording and with telemetry disabled must produce
/// byte-identical shard logs, manifest, and leaderboard — while the
/// enabled run actually counts and the disabled run records nothing.
#[test]
fn telemetry_on_and_off_campaigns_are_byte_identical() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let reg = telemetry::global();
    let was = reg.enabled();
    reg.set_enabled(true);
    let candidates = reg.counter("survey.funnel.candidates");
    let recorded = reg.counter("survey.funnel.recorded");
    let (c0, r0) = (candidates.get(), recorded.get());

    let on_dir = test_dir("on");
    Campaign::create(&on_dir, config())
        .unwrap()
        .run(2, None)
        .unwrap();
    let (c1, r1) = (candidates.get(), recorded.get());
    assert!(c1 > c0, "enabled run counted screening candidates");
    assert!(r1 > r0, "enabled run counted survivor records");

    reg.set_enabled(false);
    let off_dir = test_dir("off");
    Campaign::create(&off_dir, config())
        .unwrap()
        .run(2, None)
        .unwrap();
    assert_eq!(candidates.get(), c1, "disabled run recorded nothing");
    assert_eq!(recorded.get(), r1, "disabled run recorded nothing");
    reg.set_enabled(was);

    let a = artifact_bytes(&on_dir);
    let b = artifact_bytes(&off_dir);
    assert_eq!(a.len(), b.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a} differs between telemetry-on and telemetry-off runs"
        );
    }
    let _ = std::fs::remove_dir_all(&on_dir);
    let _ = std::fs::remove_dir_all(&off_dir);
}

/// A live TCP coordinator must answer `Status` with the campaign's
/// progress, outstanding leases, and worker heartbeats — and keep
/// status observers out of the heartbeat table.
#[test]
fn tcp_coordinator_answers_status_requests() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let dir = test_dir("tcp");
    let campaign = Campaign::create(&dir, config()).unwrap();
    let mut coordinator = Coordinator::new(campaign, Duration::from_secs(60));
    let mut server = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_serving = Arc::clone(&stop);
    let serving = std::thread::spawn(move || {
        while !stop_serving.load(Ordering::Relaxed) {
            if !server
                .serve_one(&mut |req| coordinator.handle(req, Instant::now()))
                .unwrap()
            {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    });

    let mut client = TcpClient::new(&addr);
    let Reply::Assign { shard, .. } = client
        .call(&Request::Lease {
            worker: "w1".into(),
        })
        .unwrap()
    else {
        panic!("expected a lease")
    };
    let reply = client
        .call(&Request::Status {
            worker: "watcher".into(),
        })
        .unwrap();
    let Reply::Status(report) = reply else {
        panic!("expected a status reply, got {reply:?}")
    };
    assert_eq!(report.total, config().shards);
    assert_eq!(report.done, 0);
    assert_eq!(report.leases.len(), 1);
    assert_eq!(report.leases[0].shard, shard);
    assert_eq!(report.leases[0].worker, "w1");
    let names: Vec<&str> = report.workers.iter().map(|w| w.name.as_str()).collect();
    assert_eq!(
        names,
        ["w1"],
        "status observers stay out of the heartbeat table"
    );

    stop.store(true, Ordering::Relaxed);
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

fn survey() -> Command {
    Command::new(env!("CARGO_BIN_EXE_survey"))
}

/// End-to-end over the file queue, as three real processes: a lingering
/// coordinator, a worker that drains the campaign, then `survey watch
/// --once` reading live status — and the coordinator persisting
/// `coordinator-summary.json` into the campaign directory.
#[test]
fn watch_once_reads_a_file_queue_coordinator_and_summary_persists() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let dir = test_dir("watch-campaign");
    let queue = test_dir("watch-queue");
    let transport = format!("file:{}", queue.display());

    let mut coordinator = survey()
        .args(["coordinate", "--dir"])
        .arg(&dir)
        .args([
            "--width",
            "12",
            "--shards",
            "4",
            "--lengths",
            "32,64",
            "--transport",
            &transport,
            "--linger",
            "4000",
        ])
        .spawn()
        .unwrap();

    let status = survey()
        .args(["work", "--transport", &transport, "--name", "w1"])
        .status()
        .unwrap();
    assert!(status.success(), "worker failed");

    let out = survey()
        .args(["watch", "--transport", &transport, "--once"])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        out.status.success(),
        "watch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("campaign: 4/4 shards (100%)"),
        "watch shows completion:\n{stdout}"
    );
    assert!(
        stdout.contains("w1"),
        "watch lists the worker heartbeat:\n{stdout}"
    );

    assert!(
        coordinator.wait().unwrap().success(),
        "coordinator exited with failure"
    );
    let summary = std::fs::read_to_string(dir.join("coordinator-summary.json")).unwrap();
    assert!(
        summary.contains("\"format\": \"crc-survey-coordinator-summary\""),
        "summary document: {summary}"
    );
    assert!(
        summary.contains("\"done\": 4") && summary.contains("\"shards_recorded\": 4"),
        "summary counts the session: {summary}"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&queue);
}
