//! Distributed-merge fault injection: a 13-bit campaign driven by a
//! coordinator and two file-queue workers — with a third worker that
//! takes a lease and dies, and a zombie that resubmits a shard after
//! the campaign completes — must leave artifacts byte-identical to a
//! single-host `Campaign::run`.

use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::coordinator::Coordinator;
use crc_survey::engine::{evaluate_unit, Campaign, UnitScratch};
use crc_survey::leaderboard::{build, LeaderboardOptions};
use crc_survey::transport::{FileQueueClient, FileQueueServer, Reply, Request, WorkerTransport};
use crc_survey::worker::{run_worker, WorkerOptions};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-coord-faults-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig {
        width: 13,
        shards: 8,
        seed: 2002,
        mode: Mode::Exhaustive,
        min_hd: 4,
        target_lengths: vec![32, 128],
        ber_grid: vec![1e-4, 1e-6],
        max_weight: 6,
    }
}

/// Campaign artifacts plus the leaderboard built from them, as bytes.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let campaign = Campaign::open(dir).unwrap();
    assert!(campaign.is_complete());
    let mut out = vec![(
        "campaign.json".to_string(),
        std::fs::read(dir.join("campaign.json")).unwrap(),
    )];
    for shard in 0..campaign.config().shards {
        let path = campaign.shard_log_path(shard);
        out.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).unwrap(),
        ));
    }
    let board = build(
        &campaign,
        &LeaderboardOptions {
            top: 5,
            spot_check_32: false,
            ..Default::default()
        },
    )
    .unwrap();
    out.push(("leaderboard.json".to_string(), board.render().into_bytes()));
    out
}

#[test]
fn distributed_run_with_faults_matches_single_host_bytes() {
    // Ground truth: one process, plain thread pool.
    let single = test_dir("single");
    Campaign::create(&single, config())
        .unwrap()
        .run(2, None)
        .unwrap();

    // Distributed: coordinator + file queue, short leases so the dead
    // worker's shard re-issues quickly.
    let dist = test_dir("dist");
    let queue = test_dir("queue");
    let campaign = Campaign::create(&dist, config()).unwrap();
    let mut coordinator = Coordinator::new(campaign, Duration::from_millis(300));
    let mut server = FileQueueServer::new(&queue).unwrap();
    let coord_thread = {
        let poll = Duration::from_millis(2);
        // A generous linger keeps the coordinator answering while the
        // zombie below resubmits after completion.
        let linger = Duration::from_secs(5);
        std::thread::spawn(move || coordinator.serve(&mut server, poll, linger).unwrap())
    };

    let timing =
        |c: FileQueueClient| c.with_timing(Duration::from_millis(2), Duration::from_secs(60));

    // The victim takes a lease and dies without submitting.
    let mut victim = timing(FileQueueClient::new(&queue, "victim").unwrap());
    let Reply::Assign {
        shard: orphaned, ..
    } = victim
        .call(&Request::Lease {
            worker: "victim".into(),
        })
        .unwrap()
    else {
        panic!("victim expected a lease")
    };
    drop(victim); // rest in peace

    // Two live workers drain the campaign, including the re-issued
    // orphan once its lease expires.
    let worker_threads: Vec<_> = ["w1", "w2"]
        .into_iter()
        .map(|name| {
            let mut client = timing(FileQueueClient::new(&queue, name).unwrap());
            std::thread::spawn(move || {
                run_worker(
                    &mut client,
                    &WorkerOptions {
                        name: name.into(),
                        max_shards: None,
                        retry: Default::default(),
                    },
                )
                .unwrap()
            })
        })
        .collect();
    let submitted: u64 = worker_threads
        .into_iter()
        .map(|t| t.join().unwrap().shards_submitted)
        .sum();
    assert_eq!(submitted, config().shards, "workers covered every shard");

    // A zombie recomputes the orphaned shard and submits it after the
    // fact: accepted idempotently, bytes untouched.
    let cfg = config();
    let unit = cfg.work_units()[orphaned as usize];
    let stale = evaluate_unit(&cfg, unit, &mut UnitScratch::default()).unwrap();
    let mut zombie = timing(FileQueueClient::new(&queue, "zombie").unwrap());
    let reply = zombie
        .call(&Request::Submit {
            worker: "zombie".into(),
            log: stale.to_json(cfg.content_hash()),
        })
        .unwrap();
    assert_eq!(
        reply,
        Reply::Accepted {
            shard: orphaned,
            fresh: false,
            complete: true,
        }
    );

    let summary = coord_thread.join().unwrap();
    assert_eq!(summary.shards_recorded, config().shards);
    assert_eq!(summary.duplicates, 1, "the zombie's resubmission");
    assert!(summary.leases_expired >= 1, "the victim's lease expired");
    assert_eq!(summary.refusals, 0);

    // The whole point: byte identity with the single-host run.
    let a = artifact_bytes(&single);
    let b = artifact_bytes(&dist);
    assert_eq!(a.len(), b.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a} differs between single-host and distributed runs"
        );
    }

    for dir in [single, dist, queue] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
