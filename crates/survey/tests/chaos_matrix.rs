//! The chaos matrix capstone: a 13-bit campaign driven through
//! fault-injecting transports — every fault kind (resets, dropped
//! replies, duplicated requests, delays, bit-flipped and truncated
//! frames) at 10% per kind, on both ends (worker clients and the
//! coordinator server), over both the file queue and TCP — must leave
//! shard logs, manifest, and leaderboard byte-identical to a fault-free
//! single-host run, with zero worker deaths and every injected frame
//! corruption caught by the CRC framing layer.

use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::chaos::{ChaosConfig, ChaosTransport};
use crc_survey::coordinator::Coordinator;
use crc_survey::engine::Campaign;
use crc_survey::json::Json;
use crc_survey::leaderboard::{build, LeaderboardOptions};
use crc_survey::transport::{FileQueueClient, FileQueueServer, TcpClient, TcpServer};
use crc_survey::worker::{run_worker, RetryPolicy, WorkerOptions, WorkerSummary};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Fault rate per kind, percent — the acceptance bar from the issue.
const RATE: u8 = 10;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crc-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> CampaignConfig {
    CampaignConfig {
        width: 13,
        shards: 8,
        seed: 2002,
        mode: Mode::Exhaustive,
        min_hd: 4,
        target_lengths: vec![32, 128],
        ber_grid: vec![1e-4, 1e-6],
        max_weight: 6,
    }
}

/// Generous attempt budget: at 10% per fault kind on both ends most
/// requests go through within a few attempts; the budget just has to be
/// deep enough that the (seeded, deterministic) schedule never
/// exhausts it.
fn retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        max_attempts: 50,
        seed,
    }
}

/// Campaign artifacts plus the leaderboard built from them, as bytes.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let campaign = Campaign::open(dir).unwrap();
    assert!(campaign.is_complete());
    let mut out = vec![(
        "campaign.json".to_string(),
        std::fs::read(dir.join("campaign.json")).unwrap(),
    )];
    for shard in 0..campaign.config().shards {
        let path = campaign.shard_log_path(shard);
        out.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            std::fs::read(&path).unwrap(),
        ));
    }
    let board = build(
        &campaign,
        &LeaderboardOptions {
            top: 5,
            spot_check_32: false,
            ..Default::default()
        },
    )
    .unwrap();
    out.push(("leaderboard.json".to_string(), board.render().into_bytes()));
    out
}

fn assert_bytes_identical(single: &Path, dist: &Path) {
    let a = artifact_bytes(single);
    let b = artifact_bytes(dist);
    assert_eq!(a.len(), b.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            bytes_a, bytes_b,
            "{name_a} differs between single-host and chaos runs"
        );
    }
}

/// What the workers and the coordinator reported after the storm.
struct ChaosOutcome {
    workers: Vec<WorkerSummary>,
    summary: crc_survey::coordinator::CoordSummary,
    quarantined: Vec<u64>,
    complete: bool,
    server_crc_rejections: u64,
    server_injected_frames: u64,
}

fn check_outcome(dist: &Path, single: &Path, out: &ChaosOutcome) {
    // Zero worker deaths: every retryable fault was absorbed.
    assert_eq!(out.workers.len(), 2);
    let retries: u64 = out.workers.iter().map(|w| w.retries).sum();
    assert!(
        retries > 0,
        "chaos at {RATE}% must force at least one retry"
    );
    // Refusals are permanent disagreements — chaos must never look
    // like one.
    assert_eq!(out.summary.refusals, 0);
    assert_eq!(out.summary.shards_recorded, config().shards);
    assert!(out.complete, "campaign must reach the complete state");
    assert!(
        out.quarantined.is_empty(),
        "retryable faults must not poison shards: {:?}",
        out.quarantined
    );
    // Every injected bit-flip/truncation was rejected by the CRC layer.
    assert!(
        out.server_injected_frames > 0,
        "server-side frame damage was injected"
    );
    assert_eq!(
        out.server_crc_rejections, out.server_injected_frames,
        "CRC framing must catch every injected frame corruption"
    );

    // The persisted summary carries the fault counters (the durable
    // record an operator reads after the storm).
    let text = std::fs::read_to_string(dist.join("coordinator-summary.json")).unwrap();
    let doc = Json::parse(&text).unwrap();
    assert!(doc.require("frames_rejected").unwrap().as_u64().unwrap() > 0);
    assert!(doc.require("chaos_injected").unwrap().as_u64().unwrap() > 0);
    assert_eq!(
        doc.require("quarantined").unwrap().as_arr().unwrap().len(),
        0
    );

    // The whole point: byte identity through the chaos.
    assert_bytes_identical(single, dist);
}

fn single_host_ground_truth(tag: &str) -> PathBuf {
    let dir = test_dir(tag);
    Campaign::create(&dir, config())
        .unwrap()
        .run(2, None)
        .unwrap();
    dir
}

#[test]
fn chaos_matrix_over_the_file_queue_is_byte_identical() {
    let single = single_host_ground_truth("fq-single");
    let dist = test_dir("fq-dist");
    let queue = test_dir("fq-queue");

    let campaign = Campaign::create(&dist, config()).unwrap();
    let mut coordinator = Coordinator::new(campaign, Duration::from_millis(400));
    let server = ChaosTransport::new(
        FileQueueServer::new(&queue).unwrap(),
        ChaosConfig::all(1302, RATE),
    );
    let server_tally = server.tally();
    let coord_thread = std::thread::spawn(move || {
        let mut server = server;
        let summary = coordinator
            .serve(
                &mut server,
                Duration::from_millis(2),
                Duration::from_secs(2),
            )
            .unwrap();
        (
            summary,
            coordinator.quarantined_shards(),
            coordinator.campaign().is_complete(),
        )
    });

    let workers: Vec<WorkerSummary> = [("w1", 11u64), ("w2", 22u64)]
        .into_iter()
        .map(|(name, seed)| {
            let queue = queue.clone();
            std::thread::spawn(move || {
                let client = FileQueueClient::new(&queue, name)
                    .unwrap()
                    .with_timing(Duration::from_millis(2), Duration::from_secs(5));
                let mut client = ChaosTransport::new(client, ChaosConfig::all(seed, RATE));
                run_worker(
                    &mut client,
                    &WorkerOptions {
                        name: name.into(),
                        max_shards: None,
                        retry: retry(seed),
                    },
                )
                .expect("no retryable fault may kill a worker")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    let (summary, quarantined, complete) = coord_thread.join().unwrap();
    let tally = server_tally.snapshot();
    check_outcome(
        &dist,
        &single,
        &ChaosOutcome {
            workers,
            summary,
            quarantined,
            complete,
            server_crc_rejections: tally.crc_rejections,
            server_injected_frames: tally.corrupted + tally.truncated,
        },
    );

    for dir in [single, dist, queue] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn chaos_matrix_over_tcp_is_byte_identical() {
    let single = single_host_ground_truth("tcp-single");
    let dist = test_dir("tcp-dist");

    let campaign = Campaign::create(&dist, config()).unwrap();
    let mut coordinator = Coordinator::new(campaign, Duration::from_millis(400));
    let inner = TcpServer::bind("127.0.0.1:0").unwrap();
    let addr = inner.local_addr().unwrap().to_string();
    let server = ChaosTransport::new(inner, ChaosConfig::all(4242, RATE));
    let server_tally = server.tally();
    let coord_thread = std::thread::spawn(move || {
        let mut server = server;
        let summary = coordinator
            .serve(
                &mut server,
                Duration::from_millis(2),
                Duration::from_secs(2),
            )
            .unwrap();
        (
            summary,
            coordinator.quarantined_shards(),
            coordinator.campaign().is_complete(),
        )
    });

    let workers: Vec<WorkerSummary> = [("w1", 33u64), ("w2", 44u64)]
        .into_iter()
        .map(|(name, seed)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client = TcpClient::new(&addr).with_timeout(Duration::from_secs(5));
                let mut client = ChaosTransport::new(client, ChaosConfig::all(seed, RATE));
                run_worker(
                    &mut client,
                    &WorkerOptions {
                        name: name.into(),
                        max_shards: None,
                        retry: retry(seed),
                    },
                )
                .expect("no retryable fault may kill a worker")
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    let (summary, quarantined, complete) = coord_thread.join().unwrap();
    let tally = server_tally.snapshot();
    check_outcome(
        &dist,
        &single,
        &ChaosOutcome {
            workers,
            summary,
            quarantined,
            complete,
            server_crc_rejections: tally.crc_rejections,
            server_injected_frames: tally.corrupted + tally.truncated,
        },
    );

    for dir in [single, dist] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
