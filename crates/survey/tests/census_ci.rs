//! Sampled-census calibration: on a 16-bit space small enough to
//! enumerate, the per-stratum Wilson intervals must cover the
//! exhaustively computed truth — at the screen and at every target
//! length — for the tap strata and the factorization-class stratum
//! alike.

use crc_hd::costmodel::engine_cost;
use crc_hd::filter::hd_filter_in;
use crc_hd::{GenPoly, SyndromeWorkspace};
use crc_survey::campaign::{CampaignConfig, Mode};
use crc_survey::census::census_report;
use crc_survey::engine::Campaign;
use crc_survey::json::Json;

const WIDTH: u32 = 16;
const MIN_HD: u32 = 4;
const LENGTHS: [u32; 2] = [32, 128];

fn config() -> CampaignConfig {
    CampaignConfig {
        width: WIDTH,
        shards: WIDTH as u64 + 1, // one per tap stratum + the class below
        seed: 42,
        mode: Mode::Census {
            per_stratum: 400,
            classes: vec!["{16}".into()],
        },
        min_hd: MIN_HD,
        target_lengths: LENGTHS.to_vec(),
        ber_grid: vec![1e-5],
        max_weight: 6,
    }
}

/// Exhaustive truth for one stratum: how many of its members survive
/// the screen, and of the whole space how many still hold HD ≥ min_hd
/// at each target length (HD is monotone in length, so the screen is
/// implied by the longer lengths).
#[derive(Default, Clone)]
struct Truth {
    size: u64,
    counts: [u64; 1 + LENGTHS.len()],
}

fn exhaustive_truth() -> (Vec<Truth>, Truth) {
    let mut taps = vec![Truth::default(); WIDTH as usize];
    let mut class = Truth::default();
    let mut ws = SyndromeWorkspace::new();
    let screen_len = *LENGTHS.iter().min().unwrap();
    for offset in 0u64..1 << (WIDTH - 1) {
        let koopman = (1 << (WIDTH - 1)) | offset;
        let g = GenPoly::from_koopman(WIDTH, koopman).unwrap();
        let t = engine_cost(&g).taps as usize;
        let irreducible = gf2poly::factor(g.to_poly()).signature().to_string() == "{16}";
        let mut survived = [false; 1 + LENGTHS.len()];
        if hd_filter_in(&mut ws, &g, screen_len, MIN_HD)
            .unwrap()
            .passed()
        {
            survived[0] = true;
            for (j, &len) in LENGTHS.iter().enumerate() {
                survived[j + 1] = hd_filter_in(&mut ws, &g, len, MIN_HD).unwrap().passed();
            }
        }
        for truth in [Some(&mut taps[t - 1]), irreducible.then_some(&mut class)]
            .into_iter()
            .flatten()
        {
            truth.size += 1;
            for (slot, &hit) in truth.counts.iter_mut().zip(&survived) {
                *slot += u64::from(hit);
            }
        }
    }
    (taps, class)
}

/// Extrapolated counts are exact `integer.dddddd` decimal strings
/// (byte-deterministic even for 2³¹-sized strata); parse one for an
/// interval check.
fn est_bound(e: &Json, key: &str) -> f64 {
    let s = match e.get(key).unwrap() {
        Json::Str(s) => s,
        other => panic!("{key} is {other:?}"),
    };
    s.parse::<f64>().unwrap()
}

fn check_row(row: &Json, truth: &Truth) {
    let label = row.get("stratum").unwrap().as_str().unwrap();
    assert_eq!(
        row.get("size").unwrap().as_str().unwrap(),
        truth.size.to_string(),
        "stratum {label}: size must be exact, not estimated"
    );
    let estimates = match row.get("estimates").unwrap() {
        Json::Arr(v) => v,
        other => panic!("estimates is {other:?}"),
    };
    assert_eq!(estimates.len(), truth.counts.len());
    for (e, &true_count) in estimates.iter().zip(&truth.counts) {
        let at = e.get("at").unwrap().as_str().unwrap();
        let lo = est_bound(e, "est_low");
        let hi = est_bound(e, "est_high");
        let t = true_count as f64;
        assert!(
            lo <= t && t <= hi,
            "stratum {label} at {at}: truth {t} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn census_intervals_cover_exhaustive_truth() {
    let (taps_truth, class_truth) = exhaustive_truth();
    assert_eq!(
        taps_truth.iter().map(|t| t.size).sum::<u64>(),
        1 << (WIDTH - 1),
        "tap strata partition the space"
    );
    assert_eq!(class_truth.size, gf2poly::count_irreducibles(16));

    let dir = std::env::temp_dir().join(format!("crc-census-ci-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut campaign = Campaign::create(&dir, config()).unwrap();
    campaign.run(4, None).unwrap();
    // A generous critical value: 64 interval checks below must *all*
    // cover, so each gets far more than 95% — the run is seeded, so a
    // pass is a permanent property of this configuration.
    let report = census_report(&campaign, 4.0).unwrap();

    let rows = match report.get("strata").unwrap() {
        Json::Arr(v) => v,
        other => panic!("strata is {other:?}"),
    };
    assert_eq!(rows.len(), WIDTH as usize + 1);
    for (row, truth) in rows.iter().zip(&taps_truth) {
        assert_eq!(row.get("kind").unwrap().as_str().unwrap(), "taps");
        check_row(row, truth);
    }
    let class_row = rows.last().unwrap();
    assert_eq!(class_row.get("kind").unwrap().as_str().unwrap(), "class");
    assert_eq!(
        class_row.get("stratum").unwrap().as_str().unwrap(),
        "class={16}"
    );
    check_row(class_row, &class_truth);

    // The totals row extrapolates over the partition: its interval must
    // cover the true whole-space survivor count at every length.
    let totals = report.get("totals").unwrap();
    let estimates = match totals.get("estimates").unwrap() {
        Json::Arr(v) => v,
        other => panic!("estimates is {other:?}"),
    };
    for (e, j) in estimates.iter().zip(0..) {
        let truth: u64 = taps_truth.iter().map(|t| t.counts[j]).sum();
        let lo = est_bound(e, "est_low");
        let hi = est_bound(e, "est_high");
        assert!(
            lo <= truth as f64 && truth as f64 <= hi,
            "totals at index {j}: truth {truth} outside [{lo}, {hi}]"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
