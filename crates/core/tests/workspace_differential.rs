//! Differential suite: every workspace kernel against the scratch-built
//! reference paths (CI job `screening-equivalence`).
//!
//! The workspace changes *how* answers are computed three times over —
//! direct-indexed probes instead of hash probes, memoized scan resumes
//! instead of fresh scans, certified-zero sweep skipping instead of full
//! sweeps — and none of those may change a single answer. Each test
//! drives a shared workspace through a schedule of mixed calls (the
//! access pattern the survey engine and the staged/breakpoint drivers
//! produce) and asserts bit-identical results against
//! [`crc_hd::reference`], which still computes everything from scratch
//! per call.

use crc_hd::filter::{breakpoint_search, breakpoint_search_in, hd_filter_in, StagedFilter};
use crc_hd::profile::HdProfile;
use crc_hd::reference;
use crc_hd::workspace::{IndexPolicy, SyndromeWorkspace};
use crc_hd::GenPoly;
use gf2poly::SplitMix64;

/// Deterministic sample of generators at one width: a few fixed
/// well-known values plus random draws.
fn sample_polys(width: u32, count: usize, seed: u64) -> Vec<GenPoly> {
    let mut rng = SplitMix64::new(seed ^ (width as u64) << 32);
    let mut out: Vec<GenPoly> = Vec::new();
    let known: &[u64] = match width {
        8 => &[0x83, 0x97, 0xEA],
        16 => &[0x8810, 0xC86C, 0xAC9A],
        32 => &[0x82608EDB, 0xBA0DC66B, 0x8F6E37A0, 0xFB567D89],
        _ => &[],
    };
    for &k in known {
        out.push(GenPoly::from_koopman(width, k).unwrap());
    }
    let lo = 1u64 << (width - 1);
    while out.len() < count {
        let k = lo | (rng.next_u64() & (lo - 1));
        out.push(GenPoly::from_koopman(width, k).expect("top bit set"));
    }
    out
}

/// The length schedules one polynomial is probed at, in an order that
/// exercises shrink-after-grow memo paths (not just monotone growth).
fn schedules(width: u32) -> Vec<Vec<u32>> {
    let base = vec![
        vec![8, 16, 33, 64, 100],
        vec![100, 16, 64, 8, 33],
        vec![64, 250, 40],
    ];
    if width >= 16 {
        let mut with_long = base;
        with_long.push(vec![900, 120, 500]);
        with_long
    } else {
        base
    }
}

#[test]
fn hd_filter_verdicts_identical_across_widths_and_schedules() {
    for width in [8u32, 13, 16, 32] {
        for policy in [IndexPolicy::Auto, IndexPolicy::ForceHash] {
            let mut ws = SyndromeWorkspace::with_policy(policy);
            for g in sample_polys(width, 8, 11) {
                for schedule in schedules(width) {
                    for len in schedule {
                        for hd in [3u32, 4, 5, 6] {
                            let got = hd_filter_in(&mut ws, &g, len, hd).unwrap();
                            let want = reference::hd_filter(&g, len, hd).unwrap();
                            assert_eq!(got, want, "{g} len={len} hd={hd} policy={policy:?}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn weights_identical_with_and_without_prior_stages() {
    for width in [8u32, 13, 16, 32] {
        for policy in [IndexPolicy::Auto, IndexPolicy::ForceHash] {
            let mut ws = SyndromeWorkspace::with_policy(policy);
            for g in sample_polys(width, 6, 23) {
                for schedule in schedules(width) {
                    for len in schedule {
                        let got = ws.weights234(&g, len);
                        let want = reference::weights234(&g, len);
                        match (got, want) {
                            (Ok(a), Ok(b)) => {
                                assert_eq!(a, b, "{g} len={len} policy={policy:?}")
                            }
                            (Err(_), Err(_)) => {} // same refusal (past the order)
                            (a, b) => panic!("{g} len={len}: {a:?} vs {b:?}"),
                        }
                    }
                }
                // And once more after a full profile primed the memo —
                // the maximally-hinted sweep must still count the same.
                let _ = HdProfile::compute_in(&mut ws, &g, 200, 8).unwrap();
                if let Ok(want) = reference::weights234(&g, 150) {
                    assert_eq!(ws.weights234(&g, 150).unwrap(), want, "{g} hinted");
                }
            }
        }
    }
}

#[test]
fn profiles_identical_to_scratch_assembly() {
    for width in [8u32, 13, 16, 32] {
        let mut ws = SyndromeWorkspace::new();
        for g in sample_polys(width, 6, 37) {
            for max_len in [24u32, 150, 800] {
                for max_weight in [5u32, 8] {
                    let got = HdProfile::compute_in(&mut ws, &g, max_len, max_weight).unwrap();
                    let want = reference::profile(&g, max_len, max_weight).unwrap();
                    assert_eq!(got.order(), want.order(), "{g}");
                    assert_eq!(got.dmins(), want.dmins(), "{g} max_len={max_len}");
                    assert_eq!(got.bands(), want.bands(), "{g} max_len={max_len}");
                }
            }
        }
    }
}

#[test]
fn dmin_identical_under_shuffled_cap_schedules() {
    // Caps shrink and grow in arbitrary order: memoized resume must
    // never change an answer (including error-free None/Some flips at
    // the exact boundary).
    for width in [8u32, 13, 16, 32] {
        let mut ws = SyndromeWorkspace::new();
        for g in sample_polys(width, 6, 41) {
            for cap in [5u32, 300, 40, 77, 500, 39, 301] {
                for w in 2..=6u32 {
                    let got = ws.dmin(&g, w, cap).unwrap();
                    let want = reference::dmin(&g, w, cap).unwrap();
                    assert_eq!(got, want, "{g} w={w} cap={cap}");
                }
            }
        }
    }
}

/// The four index/kernel flavors a wide-width binding can run under.
const WIDE_POLICIES: [IndexPolicy; 4] = [
    IndexPolicy::Auto,      // resolves to the two-level index at 17–32
    IndexPolicy::ForceHash, // the differential oracle path
    IndexPolicy::ForceTwoLevel,
    IndexPolicy::Bitsliced, // two-level + CLMUL block kernels
];

#[test]
fn wide_widths_identical_across_every_index_flavor() {
    // The PR-6 kernels (two-level index, bitsliced block extension,
    // persistent MITM maps) at the widths they exist for, against the
    // scratch oracle, under shuffled length/cap schedules: verdicts,
    // weights, profiles and d_min must be bit-identical.
    for width in [17u32, 24, 29, 32] {
        for policy in WIDE_POLICIES {
            let mut ws = SyndromeWorkspace::with_policy(policy);
            for g in sample_polys(width, 4, 71) {
                for cap in [5u32, 300, 40, 500, 299] {
                    for w in 2..=6u32 {
                        let got = ws.dmin(&g, w, cap).unwrap();
                        let want = reference::dmin(&g, w, cap).unwrap();
                        assert_eq!(got, want, "{g} w={w} cap={cap} policy={policy:?}");
                    }
                }
                for len in [100u32, 16, 900, 64, 899] {
                    let got = ws.weights234(&g, len);
                    let want = reference::weights234(&g, len);
                    match (got, want) {
                        (Ok(a), Ok(b)) => assert_eq!(a, b, "{g} len={len} policy={policy:?}"),
                        (Err(_), Err(_)) => {} // same refusal (past the order)
                        (a, b) => panic!("{g} len={len}: {a:?} vs {b:?}"),
                    }
                }
                for (len, hd) in [(64u32, 5u32), (250, 4), (120, 6)] {
                    let got = hd_filter_in(&mut ws, &g, len, hd).unwrap();
                    let want = reference::hd_filter(&g, len, hd).unwrap();
                    assert_eq!(got, want, "{g} len={len} hd={hd} policy={policy:?}");
                }
                let got = HdProfile::compute_in(&mut ws, &g, 400, 8).unwrap();
                let want = reference::profile(&g, 400, 8).unwrap();
                assert_eq!(got.dmins(), want.dmins(), "{g} policy={policy:?}");
                assert_eq!(got.bands(), want.bands(), "{g} policy={policy:?}");
            }
        }
    }
}

#[test]
fn bitsliced_block_growth_interleaves_with_serial() {
    // Alternate calls that grow the table in bulk (weights sweeps, long
    // caps) with short serial growth on the same binding; the resynced
    // stepper and the block extension must stay value-identical.
    let g = GenPoly::from_koopman(32, 0x82608EDB).unwrap();
    let mut ws = SyndromeWorkspace::with_policy(IndexPolicy::Bitsliced);
    for (w, cap) in [(3u32, 50u32), (4, 4000), (3, 120), (5, 700), (4, 5000)] {
        assert_eq!(
            ws.dmin(&g, w, cap).unwrap(),
            reference::dmin(&g, w, cap).unwrap(),
            "w={w} cap={cap}"
        );
    }
    assert_eq!(
        ws.weights234(&g, 3000).unwrap(),
        reference::weights234(&g, 3000).unwrap()
    );
}

#[test]
fn hash_index_never_rehashes_under_the_sizing_contract() {
    // Width-32 regression for the PosMap reserve audit: every scan
    // pre-sizes through `reserve_hash`, and `PosMap::reserve`
    // at-least-doubles per actual resize, so even the breakpoint
    // search's bisection pattern (the index trailing its table through
    // many slightly-growing caps) must trigger zero implicit growth
    // rehashes.
    let g = GenPoly::from_koopman(32, 0x82608EDB).unwrap();
    let mut ws = SyndromeWorkspace::with_policy(IndexPolicy::ForceHash);
    for cap in [10u32, 500, 1200, 1201, 1300, 2000, 3500, 5000] {
        ws.dmin(&g, 4, cap).unwrap();
    }
    breakpoint_search_in(&mut ws, &g, 5, 65_536).unwrap();
    ws.weights234(&g, 3000).unwrap();
    assert_eq!(ws.hash_rehashes(), 0, "implicit rehash despite reserve");
}

#[test]
fn breakpoint_search_evaluation_counts_identical() {
    // The workspace variant must take the *same* doubling+bisect path:
    // identical breakpoints and identical evaluation counts (the §4.1
    // quantity the search strategy is measured by).
    for (width, koopman, hd, hi) in [
        (32u32, 0x82608EDBu64, 5u32, 65_536u32),
        (32, 0x82608EDB, 6, 4096),
        (32, 0xBA0DC66B, 6, 32_768),
        (16, 0x8810, 4, 8192),
        (8, 0x83, 4, 1024),
    ] {
        let g = GenPoly::from_koopman(width, koopman).unwrap();
        let mut ws = SyndromeWorkspace::new();
        let got = breakpoint_search_in(&mut ws, &g, hd, hi).unwrap();
        let want = reference::breakpoint_search(&g, hd, hi).unwrap();
        assert_eq!(got, want, "{g} hd={hd} hi={hi}");
        // The free function (fresh workspace) agrees too.
        assert_eq!(breakpoint_search(&g, hd, hi).unwrap(), want);
    }
}

#[test]
fn staged_filter_funnel_identical_to_scratch_filtering() {
    let polys = sample_polys(8, 40, 53);
    let staged = StagedFilter::new(vec![16, 32, 64], 4);
    let (survivors, stats) = staged.run(polys.iter().copied()).unwrap();
    // Scratch stage-major replay.
    let mut current = polys.clone();
    for (stage, &len) in [16u32, 32, 64].iter().enumerate() {
        assert_eq!(stats[stage].candidates_in, current.len(), "stage {stage}");
        current.retain(|g| reference::hd_filter(g, len, 4).unwrap().passed());
        assert_eq!(stats[stage].survivors_out, current.len(), "stage {stage}");
    }
    assert_eq!(survivors, current);
}

#[test]
fn one_workspace_survives_width_changes() {
    // A campaign worker's workspace outlives candidates; mixing widths
    // (direct and hash bindings interleaved) must leave no residue.
    let mut ws = SyndromeWorkspace::new();
    let mixed: Vec<GenPoly> = sample_polys(8, 4, 61)
        .into_iter()
        .chain(sample_polys(32, 4, 61))
        .chain(sample_polys(13, 4, 61))
        .collect();
    for _round in 0..2 {
        for g in &mixed {
            match (ws.weights234(g, 60), reference::weights234(g, 60)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{g}"),
                (Err(_), Err(_)) => {} // both refuse past the order
                (a, b) => panic!("{g}: {a:?} vs {b:?}"),
            }
            assert_eq!(
                hd_filter_in(&mut ws, g, 48, 5).unwrap(),
                reference::hd_filter(g, 48, 5).unwrap(),
                "{g}"
            );
        }
    }
}
