//! Differential suite for the exact distribution layer: the
//! MacWilliams transfer pinned bit-for-bit against every independent
//! oracle the repo has — exhaustive spectrum enumeration at small
//! lengths, the `weights234` closed form at wide widths, and the
//! paper's own 802.3 boundary facts.
//!
//! Fast cases run everywhere; the exhaustive sweeps and the 802.3
//! boundary reproduction are `#[ignore]`d and driven by the release CI
//! job `distribution-equivalence` (with `CRC_HD_FORCE_GF2=soft` pinned
//! so the soft-multiply syndrome growth is the path under test).

use crc_hd::distribution::{distribution, distribution_with_limit};
use crc_hd::spectrum::{spectrum, MAX_SPECTRUM_LEN};
use crc_hd::weights::{weight2, weights234};
use crc_hd::GenPoly;

/// Width ≤ 16 catalog generators (normal form) the repo's harnesses
/// exercise; the 13-bit entry is a survey-width representative.
const SMALL_CATALOG: [(u32, u64); 5] = [
    (8, 0x07), // CRC-8 SMBus
    (8, 0x9B), // CRC-8 0x9B
    (13, 0x1CF5),
    (16, 0x1021), // CCITT-16
    (16, 0x8005), // CRC-16 ARC
];

/// Wide-width generators for the closed-form leg (normal form).
const WIDE_CATALOG: [(u32, u64); 4] = [
    (17, 0x1685B),   // CAN CRC-17
    (24, 0x86_4CFB), // CRC-24 OpenPGP
    (29, 0x1F1D_5F21),
    (32, 0x04C1_1DB7), // IEEE 802.3
];

fn assert_matches_spectrum(g: &GenPoly, n: u32) {
    let d = distribution(g, n).unwrap();
    let s = spectrum(g, n).unwrap();
    assert_eq!(
        d.counts_u128().as_deref(),
        Some(s.counts()),
        "{g} at n={n}: distribution vs exhaustive spectrum"
    );
    assert_eq!(d.hd(), s.hd(), "{g} at n={n}: HD");
    assert_eq!(d.to_spectrum().as_ref(), Some(&s), "{g} at n={n}: lowering");
}

fn assert_matches_weights234(g: &GenPoly, n: u32) {
    let d = distribution(g, n).unwrap();
    let w = weights234(g, n).unwrap();
    assert_eq!(d.count_u128(2), Some(w.w2), "{g} at n={n}: W2");
    assert_eq!(d.count_u128(3), Some(w.w3), "{g} at n={n}: W3");
    assert_eq!(d.count_u128(4), Some(w.w4), "{g} at n={n}: W4");
    assert_eq!(
        d.count_u128(2),
        Some(weight2(g, n).unwrap()),
        "{g} at n={n}: W2 order form"
    );
}

#[test]
fn small_catalog_matches_spectrum_at_spot_lengths() {
    for (width, normal) in SMALL_CATALOG {
        let g = GenPoly::from_normal(width, normal).unwrap();
        for n in [1, 2, 7, 13, 20] {
            assert_matches_spectrum(&g, n);
        }
    }
}

#[test]
fn wide_catalog_matches_closed_form_at_short_lengths() {
    // Widths ≤ 24 only: the 29/32-bit sweeps walk 2^23..2^26 mask
    // groups per length, minutes in debug profiles — the ignored
    // release case below covers them.
    for (width, normal) in WIDE_CATALOG {
        if width > 24 {
            continue;
        }
        let g = GenPoly::from_normal(width, normal).unwrap();
        for n in [8, 40, 100] {
            assert_matches_weights234(&g, n);
        }
    }
}

#[test]
fn budget_guard_refuses_infeasible_wide_lengths() {
    // Width 32 at the MTU would cost ~2^40 column updates; the default
    // budget must refuse rather than hang.
    let g = GenPoly::from_normal(32, 0x04C1_1DB7).unwrap();
    assert!(matches!(
        distribution(&g, 12_112),
        Err(crc_hd::Error::BudgetExceeded { .. })
    ));
    // And the caller-supplied limit is honored.
    assert!(matches!(
        distribution_with_limit(&g, 300, 1),
        Err(crc_hd::Error::BudgetExceeded { .. })
    ));
}

/// Release-only: every width ≤ 16 catalog generator against the
/// exhaustive spectrum at *all* lengths the enumeration covers — the
/// acceptance criterion verbatim.
#[test]
#[ignore = "exhaustive 2^30 enumerations; run by the distribution-equivalence release job"]
fn small_catalog_matches_spectrum_at_all_enumerable_lengths() {
    for (width, normal) in SMALL_CATALOG {
        let g = GenPoly::from_normal(width, normal).unwrap();
        for n in 1..=MAX_SPECTRUM_LEN {
            assert_matches_spectrum(&g, n);
        }
    }
}

/// Release-only: the wide-width closed-form leg, including the 29- and
/// 32-bit generators the fast test skips, at survey-scale lengths (the
/// 32-bit sweep costs ~2^34 column updates per length).
#[test]
#[ignore = "minutes-scale 29/32-bit sweeps; run by the distribution-equivalence release job"]
fn wide_catalog_matches_closed_form_at_survey_lengths() {
    let mut ws = crc_hd::workspace::SyndromeWorkspace::new();
    for (width, normal) in WIDE_CATALOG {
        let g = GenPoly::from_normal(width, normal).unwrap();
        // weights234's counting argument needs the codeword within the
        // generator's multiplicative order (CAN CRC-17's is only 255);
        // the distribution has no such restriction, but the comparison
        // leg does, so cap the probed lengths the same way figure1 does.
        let order = ws.order(&g);
        let lens: &[u32] = if width <= 24 { &[512] } else { &[24, 268] };
        for &n in lens {
            let n = n.min((order as u32).saturating_sub(width)).max(1);
            assert_matches_weights234(&g, n);
        }
    }
}

/// Release-only: the paper's 802.3 boundary facts reproduced from the
/// *full* distribution — HD=6 holds through 268 data bits and falls to
/// 5 at 269 (Table 1), and the HD=4 boundary restated through the
/// closed form the distribution was pinned against above: W₄ = 0 at
/// 2974 and W₄ = 1 at 2975.
#[test]
#[ignore = "32-bit full distributions near 300 bits; run by the distribution-equivalence release job"]
fn ieee_8023_boundary_facts_from_the_full_distribution() {
    let g = GenPoly::from_normal(32, 0x04C1_1DB7).unwrap();
    let d = distribution(&g, 268).unwrap();
    assert_eq!(d.hd(), Some(6), "802.3 holds HD=6 through 268 data bits");
    let d = distribution(&g, 269).unwrap();
    assert_eq!(d.hd(), Some(5), "802.3 drops to HD=5 at 269 data bits");
    // The HD=4 boundary at 2974/2975 sits past the distribution's
    // budget at width 32; the closed form (already pinned against the
    // distribution at shorter lengths) carries the fact.
    assert_eq!(weights234(&g, 2_974).unwrap().w4, 0);
    assert_eq!(weights234(&g, 2_975).unwrap().w4, 1);
}
