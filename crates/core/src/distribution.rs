//! Exact full weight distributions `W₀..W_{n+r}` at any data length —
//! the transfer-matrix layer that turns the paper's truncated `W₂–W₄`
//! P_ud into an exact quantity at every weight and BER.
//!
//! # The recursion
//!
//! A pattern `x^{i₁}+…+x^{iₖ}` of length `L = n + r` is a codeword
//! exactly when its syndromes XOR to zero, so the code is the kernel of
//! the parity-check matrix whose column `t` is `r(t) = x^t mod G` — the
//! same syndrome sequence every other oracle in this crate walks. Its
//! *dual* code is therefore directly enumerable: for each `a ∈ 𝔽₂^r`
//! the dual word has bit `t` equal to `parity(a & r(t))`, and the dual
//! weight histogram `B₀..B_L` (with `Σ Bᵢ = 2^r`) follows from one
//! sweep over the `2^r` masks. The MacWilliams identity then transfers
//! `B` to the code's own distribution,
//!
//! ```text
//! W(x) = 2^{-r} · Σᵢ Bᵢ (1-x)^i (1+x)^{L-i},
//! ```
//!
//! evaluated as a Horner recursion over `i` — one polynomial
//! state-update per length step, which is what makes the computation
//! iterative in `L` rather than exponential in `n`.
//!
//! # Word-parallel state updates
//!
//! Both halves run on the crate's bitsliced GF(2) kernels:
//!
//! * The syndrome table grows through [`crate::bitslice::PlaneState`]
//!   (64 positions per carryless-multiply anchor step, Barrett modmul
//!   from [`crate::gf2x`]) past the serial
//!   [`crate::bitslice::BASIS_PREFIX`].
//! * For widths ≤ [`FWHT_MAX_WIDTH`] the dual sweep collapses to a
//!   syndrome histogram plus an in-place fast Walsh–Hadamard transform
//!   (`Σₜ (−1)^{a·r(t)} = L − 2·weight(a)`): `r·2^r` adds, independent
//!   of `L`. Wider generators run the dual sweep 64 masks at a time:
//!   a 64-entry parity table over the low mask bits turns each column
//!   into one bit-plane, planes ripple into carry-save counters, and
//!   [`crate::bitslice::transpose64`] extracts the 64 lane weights.
//!
//! # Exact counts past `u128`
//!
//! MacWilliams intermediates reach `2^{r+L}` even when the final counts
//! fit a machine word, so the transfer runs entirely in [`Nat`], a
//! minimal arbitrary-precision unsigned integer (the big-integer escape
//! for lengths where `2ⁿ` overflows `u128`). [`WeightDistribution`]
//! exposes a `u128` view when the counts fit and the exact [`Nat`] view
//! always; [`WeightDistribution::p_ud`] folds the counts through an
//! extended-exponent float (an `f64` mantissa with an `i64` binary
//! exponent, IEEE-rounded ops only — no `powi`, no libm) so undetected
//! fractions far below `1e-300` come back finite and deterministic.
//!
//! The module is self-verifying: the MacWilliams division by `2^r` must
//! be exact, `W₀` must be exactly one (the zero word, which the public
//! counts then exclude, matching [`crate::spectrum::WeightSpectrum`]),
//! and the counts must sum to `2ⁿ − 1`. Any violation panics rather
//! than returning silently wrong counts.

use crate::bitslice::{transpose64, PlaneState, BASIS_PREFIX};
use crate::genpoly::GenPoly;
use crate::spectrum::WeightSpectrum;
use crate::syndrome::SyndromeSeq;
use crate::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Widest generator the histogram-plus-FWHT dual sweep handles; the
/// transform table is `2^width` machine words (8 MiB at 20), beyond
/// which the 64-lane bitsliced mask sweep wins on memory.
pub const FWHT_MAX_WIDTH: u32 = 20;

/// Default work budget for [`distribution`]: covers every width ≤ 16
/// generator to the Ethernet MTU and the 32-bit generators to a few
/// hundred data bits, while refusing sweeps that would run for hours.
pub const DEFAULT_OP_LIMIT: u128 = 1 << 35;

// ---------------------------------------------------------------------
// Nat: minimal arbitrary-precision unsigned integer
// ---------------------------------------------------------------------

/// Arbitrary-precision unsigned integer: little-endian `u64` limbs with
/// no trailing zero limbs (zero is the empty limb vector).
///
/// Deliberately minimal — just the operations the exact distribution
/// transfer and the census extrapolation need (add, subtract, scalar
/// multiply, shifts, small divmod, decimal rendering). No external
/// big-integer crate is involved, so results are identical on every
/// host.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Nat {
    limbs: Vec<u64>,
}

impl Nat {
    /// Zero.
    pub fn zero() -> Nat {
        Nat { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Nat {
        Nat { limbs: vec![1] }
    }

    /// From a `u64`.
    pub fn from_u64(v: u64) -> Nat {
        let mut n = Nat { limbs: vec![v] };
        n.norm();
        n
    }

    /// From a `u128`.
    pub fn from_u128(v: u128) -> Nat {
        let mut n = Nat {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        n.norm();
        n
    }

    fn norm(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Bit length: position of the highest set bit plus one (0 for 0).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() as u64 * 64 - u64::from(top.leading_zeros()),
        }
    }

    /// The value as `u128` when it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Nat) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, a) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *a = s2;
            carry = u64::from(c1) + u64::from(c2);
            if carry == 0 && i >= other.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= other`; panics when `other > self`.
    pub fn sub_assign(&mut self, other: &Nat) {
        let mut borrow = 0u64;
        for (i, a) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, c1) = a.overflowing_sub(b);
            let (d2, c2) = d1.overflowing_sub(borrow);
            *a = d2;
            borrow = u64::from(c1) + u64::from(c2);
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        assert_eq!(borrow, 0, "Nat subtraction underflow");
        self.norm();
    }

    /// `self * m` for a machine-word scalar.
    #[must_use]
    pub fn mul_small(&self, m: u64) -> Nat {
        let mut out = Nat::zero();
        out.add_mul_small(self, m);
        out
    }

    /// `self += other * m` (fused, one pass).
    pub fn add_mul_small(&mut self, other: &Nat, m: u64) {
        if m == 0 || other.is_zero() {
            return;
        }
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u128;
        for (i, a) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let t = *a as u128 + b as u128 * m as u128 + carry;
            *a = t as u64;
            carry = t >> 64;
            if carry == 0 && i >= other.limbs.len() {
                break;
            }
        }
        while carry != 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
    }

    /// `self <<= k` bits.
    pub fn shl_bits(&mut self, k: usize) {
        if self.is_zero() || k == 0 {
            return;
        }
        let (words, bits) = (k / 64, k % 64);
        if bits != 0 {
            let mut carry = 0u64;
            for a in self.limbs.iter_mut() {
                let t = (*a << bits) | carry;
                carry = *a >> (64 - bits);
                *a = t;
            }
            if carry != 0 {
                self.limbs.push(carry);
            }
        }
        if words != 0 {
            let mut v = vec![0u64; words];
            v.extend_from_slice(&self.limbs);
            self.limbs = v;
        }
    }

    /// `self >>= k` bits (shifted-out bits are discarded).
    pub fn shr_bits(&mut self, k: usize) {
        let (words, bits) = (k / 64, k % 64);
        if words >= self.limbs.len() {
            self.limbs.clear();
            return;
        }
        self.limbs.drain(..words);
        if bits != 0 {
            let len = self.limbs.len();
            for i in 0..len {
                let hi = if i + 1 < len { self.limbs[i + 1] } else { 0 };
                self.limbs[i] = (self.limbs[i] >> bits) | (hi << (64 - bits));
            }
        }
        self.norm();
    }

    /// True when the low `k` bits are all zero (exact-division check).
    pub fn low_bits_zero(&self, k: usize) -> bool {
        let (words, bits) = (k / 64, k % 64);
        if self.bits() == 0 {
            return true;
        }
        if self.limbs.len() < words || (bits != 0 && self.limbs.len() == words) {
            // Fewer significant bits than k: zero iff the value is zero,
            // handled above; a short nonzero value still has nonzero low
            // bits only if they overlap its limbs — checked below.
        }
        for &l in self.limbs.iter().take(words) {
            if l != 0 {
                return false;
            }
        }
        if bits != 0 {
            if let Some(&l) = self.limbs.get(words) {
                if l & ((1u64 << bits) - 1) != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// `(self / d, self % d)` for a machine-word divisor.
    pub fn divmod_small(&self, d: u64) -> (Nat, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = rem << 64 | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        let mut quot = Nat { limbs: q };
        quot.norm();
        (quot, rem as u64)
    }

    /// The 64 bits starting at bit `shift` (little-endian bit order).
    fn extract_u64_at(&self, shift: u64) -> u64 {
        let (word, off) = ((shift / 64) as usize, (shift % 64) as u32);
        let lo = self.limbs.get(word).copied().unwrap_or(0);
        if off == 0 {
            lo
        } else {
            let hi = self.limbs.get(word + 1).copied().unwrap_or(0);
            (lo >> off) | (hi << (64 - off))
        }
    }

    /// Decimal rendering (the JSON artifacts never round big counts
    /// through `f64`).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_small(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.last().unwrap().to_string();
        for c in chunks.iter().rev().skip(1) {
            out.push_str(&format!("{c:019}"));
        }
        out
    }
}

impl PartialOrd for Nat {
    fn partial_cmp(&self, other: &Nat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Nat {
    fn cmp(&self, other: &Nat) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => self.limbs.iter().rev().cmp(other.limbs.iter().rev()),
            ord => ord,
        }
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

// ---------------------------------------------------------------------
// Int: signed wrapper for the MacWilliams intermediates
// ---------------------------------------------------------------------

/// Signed big integer (sign + magnitude); only the MacWilliams Horner
/// recursion needs negatives, so it stays module-private.
#[derive(Debug, Clone)]
struct Int {
    neg: bool,
    mag: Nat,
}

impl Int {
    fn from_u64(v: u64) -> Int {
        Int {
            neg: false,
            mag: Nat::from_u64(v),
        }
    }

    fn neg(mut self) -> Int {
        if !self.mag.is_zero() {
            self.neg = !self.neg;
        }
        self
    }

    fn add_signed(&mut self, other_neg: bool, other_mag: &Nat) {
        if self.neg == other_neg {
            self.mag.add_assign(other_mag);
        } else if self.mag >= *other_mag {
            self.mag.sub_assign(other_mag);
            if self.mag.is_zero() {
                self.neg = false;
            }
        } else {
            let mut m = other_mag.clone();
            m.sub_assign(&self.mag);
            self.mag = m;
            self.neg = other_neg;
        }
    }

    /// `self -= other`.
    fn sub_assign(&mut self, other: &Int) {
        let (neg, mag) = (!other.neg, other.mag.clone());
        self.add_signed(neg && !mag.is_zero(), &mag);
    }

    /// `self += n * m` (a nonnegative quantity).
    fn add_nat_mul_small(&mut self, n: &Nat, m: u64) {
        if !self.neg {
            self.mag.add_mul_small(n, m);
        } else {
            let t = n.mul_small(m);
            self.add_signed(false, &t);
        }
    }
}

// ---------------------------------------------------------------------
// F64x: extended-exponent deterministic float for P_ud
// ---------------------------------------------------------------------

/// `m · 2^e` with `m == 0` or `1 ≤ m < 2`: every operation is a fixed
/// sequence of IEEE exactly-rounded `f64` ops plus integer exponent
/// bookkeeping, so results are bit-identical across hosts and survive
/// exponents far past `f64`'s underflow at `1e-308`.
#[derive(Debug, Clone, Copy)]
struct F64x {
    m: f64,
    e: i64,
}

impl F64x {
    const ZERO: F64x = F64x { m: 0.0, e: 0 };
    const ONE: F64x = F64x { m: 1.0, e: 0 };
    /// 2^64 as an exact `f64`.
    const TWO64: f64 = 18_446_744_073_709_551_616.0;

    /// A power of two `2^k` for `|k| ≤ 1023` via exponent bits (exact).
    fn pow2(k: i64) -> f64 {
        debug_assert!((-1022..=1023).contains(&k));
        f64::from_bits(((k + 1023) as u64) << 52)
    }

    fn from_f64(x: f64) -> F64x {
        debug_assert!(x >= 0.0 && x.is_finite());
        if x == 0.0 {
            return F64x::ZERO;
        }
        let mut x = x;
        let mut e = 0i64;
        // Scaling by 2^64 is exact; one step lifts any subnormal.
        while x < 1.0 {
            x *= F64x::TWO64;
            e -= 64;
        }
        let bits = x.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        F64x {
            m: f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52)),
            e: e + exp,
        }
    }

    fn from_u64(v: u64) -> F64x {
        // u64→f64 conversion is correctly rounded.
        F64x::from_f64(v as f64)
    }

    fn from_nat(n: &Nat) -> F64x {
        let bits = n.bits();
        if bits == 0 {
            return F64x::ZERO;
        }
        if bits <= 64 {
            return F64x::from_u64(n.extract_u64_at(0));
        }
        // Top 64 bits carry the full f64 precision; dropped low bits
        // perturb by < 2⁻⁶⁴ relative.
        let shift = bits - 64;
        let f = F64x::from_u64(n.extract_u64_at(shift));
        F64x {
            m: f.m,
            e: f.e + shift as i64,
        }
    }

    fn mul(self, o: F64x) -> F64x {
        if self.m == 0.0 || o.m == 0.0 {
            return F64x::ZERO;
        }
        let mut m = self.m * o.m; // in [1, 4)
        let mut e = self.e + o.e;
        if m >= 2.0 {
            m *= 0.5; // exact
            e += 1;
        }
        F64x { m, e }
    }

    fn div(self, o: F64x) -> F64x {
        debug_assert!(o.m != 0.0);
        if self.m == 0.0 {
            return F64x::ZERO;
        }
        let mut m = self.m / o.m; // in (1/2, 2)
        let mut e = self.e - o.e;
        if m < 1.0 {
            m *= 2.0; // exact
            e -= 1;
        }
        F64x { m, e }
    }

    fn add(self, o: F64x) -> F64x {
        if self.m == 0.0 {
            return o;
        }
        if o.m == 0.0 {
            return self;
        }
        let (big, small) = if self.e >= o.e { (self, o) } else { (o, self) };
        let d = big.e - small.e;
        if d > 64 {
            return big; // below one ulp of the larger addend
        }
        let mut m = big.m + small.m * F64x::pow2(-d);
        let mut e = big.e;
        if m >= 2.0 {
            m *= 0.5;
            e += 1;
        }
        F64x { m, e }
    }

    fn powu(self, mut n: u64) -> F64x {
        let mut base = self;
        let mut acc = F64x::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            n >>= 1;
        }
        acc
    }

    fn to_f64(self) -> f64 {
        if self.m == 0.0 {
            return 0.0;
        }
        if self.e > 1024 {
            return f64::INFINITY;
        }
        if self.e < -1075 {
            return 0.0;
        }
        // Two half-steps keep each scale factor in pow2's exact range
        // and let subnormals round in gradually.
        let h1 = self.e / 2;
        let h2 = self.e - h1;
        self.m * F64x::pow2(h1) * F64x::pow2(h2)
    }
}

// ---------------------------------------------------------------------
// Dual-code weight histogram
// ---------------------------------------------------------------------

/// Grows the syndrome table `r(0)..r(l-1)` — serially up to the basis
/// prefix, then block-at-a-time through the bitsliced plane kernel.
fn grow_syndromes(g: &GenPoly, l: usize) -> Vec<u64> {
    let mut seq = SyndromeSeq::new(g);
    let mut syn = vec![seq.peek()];
    if l > BASIS_PREFIX {
        seq.extend_table(&mut syn, BASIS_PREFIX - 1);
        let planes = PlaneState::new(g, &syn);
        planes.extend(&mut syn, l - 1);
        syn.truncate(l);
    } else {
        seq.extend_table(&mut syn, l - 1);
    }
    syn
}

/// Dual weight histogram via syndrome histogram + in-place fast
/// Walsh–Hadamard transform: `F(a) = Σₜ (−1)^{a·r(t)} = l − 2·wt(a)`.
fn fwht_histogram(syn: &[u64], width: u32, l: usize) -> Vec<u64> {
    let size = 1usize << width;
    let mut f = vec![0i64; size];
    for &s in syn {
        f[s as usize] += 1;
    }
    let mut h = 1usize;
    while h < size {
        let mut base = 0;
        while base < size {
            for i in base..base + h {
                let (a, b) = (f[i], f[i + h]);
                f[i] = a + b;
                f[i + h] = a - b;
            }
            base += h * 2;
        }
        h *= 2;
    }
    let mut b = vec![0u64; l + 1];
    for &v in &f {
        let diff = l as i64 - v;
        debug_assert_eq!(diff & 1, 0, "l − F(a) is always even");
        b[(diff / 2) as usize] += 1;
    }
    b
}

/// Dual weight histogram by the 64-lane bitsliced mask sweep: lanes are
/// the low 6 bits of the dual mask, groups iterate the high bits, each
/// column contributes one parity bit-plane rippled into carry-save
/// counters, and `transpose64` turns the counter planes back into 64
/// per-lane weights.
fn bitsliced_histogram(syn: &[u64], width: u32, l: usize) -> Vec<u64> {
    debug_assert!(width > 6);
    // par[m]: lane j holds parity(j & m) for the 64 lane indices.
    let mut par = [0u64; 64];
    for (m, slot) in par.iter_mut().enumerate() {
        let mut w = 0u64;
        for j in 0..64u64 {
            w |= u64::from((j & m as u64).count_ones() & 1) << j;
        }
        *slot = w;
    }
    let pre: Vec<(u64, u64)> = syn
        .iter()
        .map(|&s| (par[(s & 63) as usize], s >> 6))
        .collect();
    let planes = (64 - (l as u64).leading_zeros()) as usize; // counts ≤ l
    let mut b = vec![0u64; l + 1];
    let mut cnt = [0u64; 64];
    for gidx in 0u64..1u64 << (width - 6) {
        cnt[..planes].fill(0);
        for &(plane_low, hi) in &pre {
            let base = u64::from((gidx & hi).count_ones() & 1);
            let mut carry = plane_low ^ base.wrapping_neg();
            for c in cnt[..planes].iter_mut() {
                if carry == 0 {
                    break;
                }
                let nc = *c & carry;
                *c ^= carry;
                carry = nc;
            }
            debug_assert_eq!(carry, 0, "counter planes cover weights ≤ l");
        }
        let lanes = transpose64(&cnt);
        for &w in &lanes {
            b[w as usize] += 1;
        }
    }
    b
}

/// The dual-code weight histogram `B₀..B_l` for `g` over codeword
/// length `l` (so `Σ Bᵢ = 2^width`).
fn dual_weight_histogram(g: &GenPoly, l: usize) -> Vec<u64> {
    let syn = grow_syndromes(g, l);
    let b = if g.width() <= FWHT_MAX_WIDTH {
        fwht_histogram(&syn, g.width(), l)
    } else {
        bitsliced_histogram(&syn, g.width(), l)
    };
    debug_assert_eq!(
        b.iter().map(|&x| x as u128).sum::<u128>(),
        1u128 << g.width()
    );
    b
}

// ---------------------------------------------------------------------
// MacWilliams transfer
// ---------------------------------------------------------------------

/// Transfers the dual histogram to the code's weight enumerator via the
/// Horner recursion `S₀ = B_l`, `Sₖ = Sₖ₋₁·(1−x) + B_{l−k}·(1+x)^k`:
/// one state-update per length step, `(1+x)^k` maintained incrementally.
/// Returns `W₀..W_l` (including the zero word at index 0) after the —
/// checked-exact — division by `2^width`.
fn macwilliams(b: &[u64], width: u32) -> Vec<Nat> {
    let l = b.len() - 1;
    let mut acc: Vec<Int> = vec![Int::from_u64(b[l])];
    let mut vpow: Vec<Nat> = vec![Nat::one()];
    for k in 1..=l {
        // (1+x)^k from (1+x)^{k−1}: coefficients pairwise-summed.
        vpow.push(vpow[k - 1].clone());
        for j in (1..k).rev() {
            let (lo, hi) = vpow.split_at_mut(j);
            hi[0].add_assign(&lo[j - 1]);
        }
        // acc ← acc · (1 − x), in place, top coefficient first.
        acc.push(acc[k - 1].clone().neg());
        for j in (1..k).rev() {
            let (lo, hi) = acc.split_at_mut(j);
            hi[0].sub_assign(&lo[j - 1]);
        }
        let coeff = b[l - k];
        if coeff != 0 {
            for (a, v) in acc.iter_mut().zip(vpow.iter()) {
                a.add_nat_mul_small(v, coeff);
            }
        }
    }
    acc.into_iter()
        .map(|v| {
            assert!(
                !v.neg || v.mag.is_zero(),
                "MacWilliams coefficient went negative"
            );
            let mut m = v.mag;
            assert!(
                m.low_bits_zero(width as usize),
                "MacWilliams sum not divisible by 2^width"
            );
            m.shr_bits(width as usize);
            m
        })
        .collect()
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// The exact full weight distribution of a CRC code at one data length:
/// `Wₖ` for every weight `k ∈ 0..=n+r`, as arbitrary-precision counts.
///
/// Index 0 is always 0 — the zero word is excluded, matching
/// [`WeightSpectrum`]'s undetectable-*error* interpretation — so the
/// counts sum to `2ⁿ − 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightDistribution {
    data_len: u32,
    codeword_len: u32,
    counts: Vec<Nat>,
}

impl WeightDistribution {
    /// All counts, indexed by weight.
    pub fn counts(&self) -> &[Nat] {
        &self.counts
    }

    /// `Wₖ` as `u128`: `Some(0)` past the codeword length, `None` when
    /// the exact count overflows `u128` (use [`Self::counts`] then).
    pub fn count_u128(&self, k: u32) -> Option<u128> {
        match self.counts.get(k as usize) {
            None => Some(0),
            Some(n) => n.to_u128(),
        }
    }

    /// Every count as `u128`, when they all fit (always true for
    /// `data_len ≤ 127`).
    pub fn counts_u128(&self) -> Option<Vec<u128>> {
        self.counts.iter().map(Nat::to_u128).collect()
    }

    /// The exact Hamming distance: the smallest nonzero weight present,
    /// or `None` when no nonzero codeword exists.
    pub fn hd(&self) -> Option<u32> {
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, c)| !c.is_zero())
            .map(|(k, _)| k as u32)
    }

    /// Data-word length `n`.
    pub fn data_len(&self) -> u32 {
        self.data_len
    }

    /// Codeword length `n + r`.
    pub fn codeword_len(&self) -> u32 {
        self.codeword_len
    }

    /// Total number of nonzero codewords (`2ⁿ − 1`).
    pub fn total(&self) -> Nat {
        let mut t = Nat::zero();
        for c in &self.counts {
            t.add_assign(c);
        }
        t
    }

    /// Lowers into the exhaustive-enumeration spectrum type (shared by
    /// every downstream consumer); `None` when a count overflows `u128`.
    pub fn to_spectrum(&self) -> Option<WeightSpectrum> {
        let counts = self.counts_u128()?;
        WeightSpectrum::from_counts(self.data_len, self.codeword_len, counts).ok()
    }

    /// The exact undetected-error probability at bit-error rate `ber`:
    /// `Σₖ Wₖ · berᵏ · (1−ber)^{L−k}` over *every* weight, computed in
    /// extended-exponent arithmetic so values far below `f64`'s
    /// underflow threshold still compare correctly before the final
    /// rounding to `f64`. Deterministic across hosts (IEEE-rounded
    /// `f64` ops and integer exponents only — no `powi`, no libm).
    ///
    /// Returns 0 when `ber` is outside `(0, 1)`.
    pub fn p_ud(&self, ber: f64) -> f64 {
        if !(ber > 0.0 && ber < 1.0) {
            return 0.0;
        }
        let e = F64x::from_f64(ber);
        let q = F64x::from_f64(1.0 - ber);
        let ratio = e.div(q);
        // term starts at q^L and picks up one e/q per weight step.
        let mut term = q.powu(self.codeword_len as u64);
        let mut acc = F64x::ZERO;
        for w in self.counts.iter().skip(1) {
            term = term.mul(ratio);
            if !w.is_zero() {
                acc = acc.add(F64x::from_nat(w).mul(term));
            }
        }
        acc.to_f64()
    }
}

/// Work estimate for a `(width, codeword_len)` distribution run, in
/// word-op units comparable against [`DEFAULT_OP_LIMIT`].
fn cost_estimate(width: u32, l: u128) -> u128 {
    let enumeration = if width <= FWHT_MAX_WIDTH {
        (width as u128) << width
    } else {
        (l << width) / 64
    };
    enumeration + l * l * l / 192
}

/// Computes the exact full weight distribution of `g` at `data_len`
/// under the default work budget ([`DEFAULT_OP_LIMIT`]).
///
/// Unlike [`crate::weights::weights234`] there is no order restriction
/// — lengths past the order of `x` (where syndromes repeat) are fine —
/// and unlike [`crate::spectrum::spectrum`] the cost is polynomial in
/// the data length rather than `2ⁿ`.
///
/// # Errors
///
/// [`Error::BadLength`] for `data_len == 0`;
/// [`Error::UnsupportedWidth`] past width 32 (the dual sweep
/// enumerates `2^width` masks on the Barrett-modmul kernels);
/// [`Error::BudgetExceeded`] when the cost estimate exceeds the budget.
///
/// ```
/// use crc_hd::distribution::distribution;
/// use crc_hd::GenPoly;
/// let g = GenPoly::from_normal(8, 0x07).unwrap();
/// let d = distribution(&g, 10).unwrap();
/// assert_eq!(d.hd(), Some(4));
/// assert_eq!(d.total().to_u128(), Some((1 << 10) - 1));
/// ```
pub fn distribution(g: &GenPoly, data_len: u32) -> Result<WeightDistribution> {
    distribution_with_limit(g, data_len, DEFAULT_OP_LIMIT)
}

/// [`distribution`] with an explicit work budget (word-op estimate).
///
/// # Errors
///
/// As [`distribution`].
pub fn distribution_with_limit(
    g: &GenPoly,
    data_len: u32,
    limit: u128,
) -> Result<WeightDistribution> {
    if data_len == 0 {
        return Err(Error::BadLength("data_len must be at least 1".into()));
    }
    if g.width() > 32 {
        return Err(Error::UnsupportedWidth(g.width()));
    }
    let codeword_len = data_len + g.width();
    let estimated = cost_estimate(g.width(), codeword_len as u128);
    if estimated > limit {
        return Err(Error::BudgetExceeded { estimated, limit });
    }
    let b = dual_weight_histogram(g, codeword_len as usize);
    let mut counts = macwilliams(&b, g.width());
    // W₀ is exactly the zero word; exclude it to match WeightSpectrum.
    assert_eq!(counts[0], Nat::one(), "W0 must count exactly the zero word");
    counts[0] = Nat::zero();
    // Self-check: the nonzero counts must sum to 2ⁿ − 1.
    let mut expect = Nat::one();
    expect.shl_bits(data_len as usize);
    expect.sub_assign(&Nat::one());
    let dist = WeightDistribution {
        data_len,
        codeword_len,
        counts,
    };
    assert_eq!(dist.total(), expect, "weight counts must sum to 2^n - 1");
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::spectrum;
    use crate::weights::{weight2, weights234};

    #[test]
    fn nat_arithmetic_basics() {
        let mut a = Nat::from_u128(u128::MAX);
        a.add_assign(&Nat::one());
        assert_eq!(a.bits(), 129);
        assert_eq!(a.to_u128(), None);
        a.sub_assign(&Nat::one());
        assert_eq!(a.to_u128(), Some(u128::MAX));
        let b = Nat::from_u64(1_000_000_007).mul_small(998_244_353);
        assert_eq!(b.to_u128(), Some(1_000_000_007u128 * 998_244_353));
        let (q, r) = b.divmod_small(12_345);
        assert_eq!(
            q.to_u128().unwrap() * 12_345 + r as u128,
            b.to_u128().unwrap()
        );
        let mut s = Nat::one();
        s.shl_bits(200);
        assert_eq!(s.bits(), 201);
        assert!(s.low_bits_zero(200));
        assert!(!s.low_bits_zero(201));
        s.shr_bits(137);
        assert_eq!(s.to_u128(), Some(1u128 << 63));
        assert_eq!(
            Nat::from_u128(123_456_789_012_345_678_901_234_567_890u128).to_decimal(),
            "123456789012345678901234567890"
        );
        assert!(Nat::from_u64(5) > Nat::from_u64(4));
        assert!(Nat::from_u128(1 << 100) > Nat::from_u64(u64::MAX));
    }

    #[test]
    fn f64x_roundtrips_and_extends_past_underflow() {
        for x in [1.0f64, 0.5, 1e-300, 3.25e17, 4.9e-324] {
            assert_eq!(F64x::from_f64(x).to_f64(), x, "{x}");
        }
        // 1e-3 to the 200th power underflows f64 but stays exact here.
        let tiny = F64x::from_f64(1e-3).powu(200);
        assert!(tiny.m >= 1.0 && tiny.m < 2.0);
        assert_eq!(tiny.e, -1994); // log2(1e-600) ≈ -1993.16, m ≈ 1.79
        assert_eq!(tiny.to_f64(), 0.0);
        // And dividing back up recovers a representable value.
        let back = tiny.div(F64x::from_f64(1e-3).powu(199));
        assert!((back.to_f64() - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn fwht_and_bitsliced_sweeps_agree() {
        for (width, normal) in [(8u32, 0x07u64), (8, 0x9B), (13, 0x101B)] {
            let g = GenPoly::from_normal(width, normal).unwrap();
            for l in [10usize, 64, 150] {
                let syn = grow_syndromes(&g, l);
                assert_eq!(
                    fwht_histogram(&syn, width, l),
                    bitsliced_histogram(&syn, width, l),
                    "width {width} l {l}"
                );
            }
        }
    }

    #[test]
    fn matches_exhaustive_spectrum_at_small_lengths() {
        for (width, normal) in [(8u32, 0x07u64), (8, 0x9B), (16, 0x1021)] {
            let g = GenPoly::from_normal(width, normal).unwrap();
            for n in [1u32, 2, 5, 11, 16] {
                let spec = spectrum(&g, n).unwrap();
                let dist = distribution(&g, n).unwrap();
                assert_eq!(
                    dist.counts_u128().unwrap(),
                    spec.counts(),
                    "{normal:#x} n={n}"
                );
                assert_eq!(dist.hd(), spec.hd());
                assert_eq!(dist.to_spectrum().unwrap(), spec);
            }
        }
    }

    #[test]
    fn big_integer_escape_past_u128() {
        // 200 data bits: counts overflow u128, the Nat view stays exact.
        let g = GenPoly::from_normal(8, 0x9B).unwrap();
        let dist = distribution(&g, 200).unwrap();
        assert!(dist.counts_u128().is_none());
        assert!(dist.to_spectrum().is_none());
        let mut expect = Nat::one();
        expect.shl_bits(200);
        expect.sub_assign(&Nat::one());
        assert_eq!(dist.total(), expect);
        // W2 has its own closed form at any length within the order.
        assert_eq!(
            dist.count_u128(2).unwrap(),
            weight2(&g, 200).unwrap(),
            "W2 closed form"
        );
        let p = dist.p_ud(1e-5);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn matches_weights234_closed_form() {
        let g = GenPoly::from_normal(16, 0x8005).unwrap();
        let dist = distribution(&g, 100).unwrap();
        let w = weights234(&g, 100).unwrap();
        assert_eq!(dist.count_u128(2).unwrap(), w.w2);
        assert_eq!(dist.count_u128(3).unwrap(), w.w3);
        assert_eq!(dist.count_u128(4).unwrap(), w.w4);
    }

    #[test]
    fn p_ud_matches_direct_f64_sum_where_f64_suffices() {
        let g = GenPoly::from_normal(8, 0x07).unwrap();
        let n = 18u32;
        let dist = distribution(&g, n).unwrap();
        let l = n + 8;
        for ber in [1e-2f64, 1e-3, 1e-5] {
            let q = 1.0 - ber;
            let mut direct = 0.0f64;
            for (k, w) in dist.counts().iter().enumerate().skip(1) {
                let mut term = w.to_u128().unwrap() as f64;
                for _ in 0..k {
                    term *= ber;
                }
                for _ in 0..(l as usize - k) {
                    term *= q;
                }
                direct += term;
            }
            let exact = dist.p_ud(ber);
            assert!(
                (exact - direct).abs() <= direct * 1e-9,
                "ber {ber}: {exact} vs {direct}"
            );
        }
    }

    #[test]
    fn p_ud_reaches_far_below_f64_underflow_territory() {
        // HD=4 code at tiny BER: leading term ~ W4·ber⁴ — representable
        // here, and the value must be positive and finite, not a silent 0
        // from intermediate underflow of q^L·(e/q)^k chains.
        let g = GenPoly::from_normal(16, 0x1021).unwrap();
        let dist = distribution(&g, 100).unwrap();
        let p = dist.p_ud(1e-9);
        assert!(p > 0.0 && p < 1e-25, "p_ud = {p}");
        assert_eq!(dist.p_ud(0.0), 0.0);
        assert_eq!(dist.p_ud(1.0), 0.0);
    }

    #[test]
    fn budget_and_argument_guards() {
        let g = GenPoly::from_koopman(32, 0x82608EDB).unwrap();
        assert!(matches!(
            distribution(&g, 12_112),
            Err(Error::BudgetExceeded { .. })
        ));
        let g8 = GenPoly::from_normal(8, 0x07).unwrap();
        assert!(matches!(distribution(&g8, 0), Err(Error::BadLength(_))));
        assert!(matches!(
            distribution_with_limit(&g8, 1000, 10),
            Err(Error::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn works_past_the_order_of_x() {
        // x⁸+1 = (x+1)⁸ has order 8, so an 18-bit codeword already wraps
        // the syndrome sequence and weights234 refuses — the dual
        // transfer has no such restriction and must still match the
        // exhaustive spectrum.
        let g = GenPoly::from_normal(8, 0x01).unwrap();
        let n = 10u32;
        assert!(weights234(&g, n).is_err(), "past the order");
        let spec = spectrum(&g, n).unwrap();
        let dist = distribution(&g, n).unwrap();
        assert_eq!(dist.counts_u128().unwrap(), spec.counts());
    }
}
