//! Witness reconstruction: not just *whether* a low-weight undetectable
//! pattern exists, but *which bits* form one.
//!
//! The `d_min` searches answer existence questions; this module recovers
//! concrete minimal patterns — the paper's "in fact exactly one such
//! undetected error" at 2975 bits for 802.3 is a specific 4-bit pattern,
//! and having it in hand lets `netsim` inject it into real frames.

use crate::genpoly::GenPoly;
use crate::posmap::PosMap;
use crate::syndrome::SyndromeSeq;
use crate::{Error, Result};

/// A concrete undetectable error pattern: bit positions (exponents,
/// counted from the codeword end) whose flips form a codeword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Sorted bit positions; `positions[0] == 0` (constant term).
    pub positions: Vec<u32>,
}

impl Witness {
    /// The pattern weight.
    pub fn weight(&self) -> u32 {
        self.positions.len() as u32
    }

    /// The pattern degree (highest position).
    pub fn degree(&self) -> u32 {
        *self.positions.last().expect("witnesses are nonempty")
    }

    /// Serializes the pattern into a frame-sized byte vector for
    /// injection: position `i` maps to bit `i` counted from the *end* of
    /// the buffer, MSB-first within bytes (network order).
    ///
    /// # Errors
    ///
    /// [`Error::BadLength`] if the pattern does not fit `frame_len` bytes.
    pub fn to_frame_pattern(&self, frame_len: usize) -> Result<Vec<u8>> {
        let nbits = frame_len as u64 * 8;
        if u64::from(self.degree()) >= nbits {
            return Err(Error::BadLength(format!(
                "witness degree {} exceeds frame of {nbits} bits",
                self.degree()
            )));
        }
        let mut out = vec![0u8; frame_len];
        for &p in &self.positions {
            let bit_from_end = p as usize;
            let byte = frame_len - 1 - bit_from_end / 8;
            out[byte] ^= 1 << (bit_from_end % 8);
        }
        Ok(out)
    }

    /// Verifies the witness against a generator: the XOR of the syndromes
    /// at its positions must vanish.
    pub fn verify(&self, g: &GenPoly) -> bool {
        let mut seq = SyndromeSeq::new(g);
        let mut acc = 0u64;
        let mut pos_iter = self.positions.iter().peekable();
        let mut i = 0u32;
        while let Some(&&next) = pos_iter.peek() {
            if i == next {
                acc ^= seq.peek();
                pos_iter.next();
            }
            if pos_iter.peek().is_none() {
                break;
            }
            seq.step();
            i += 1;
        }
        acc == 0
    }
}

/// Finds a minimal-degree weight-`w` witness (w in 2..=4) with degree at
/// most `cap`, or `None` if none exists.
///
/// The returned pattern has a set bit at position 0 (every codeword is a
/// shift of such a pattern); shift it anywhere in a longer frame to get
/// further undetectable patterns.
///
/// # Errors
///
/// [`Error::BadLength`] for unsupported weights.
///
/// ```
/// use crc_hd::{witness::find_witness, GenPoly};
/// // The unique undetected 4-bit error of 802.3 at 2975 data bits (§4.1).
/// let g = GenPoly::from_koopman(32, 0x82608EDB).unwrap();
/// let w = find_witness(&g, 4, 3_006).unwrap().unwrap();
/// assert_eq!(w.degree(), 3_006);
/// assert!(w.verify(&g));
/// ```
pub fn find_witness(g: &GenPoly, w: u32, cap: u32) -> Result<Option<Witness>> {
    if !(2..=4).contains(&w) {
        return Err(Error::BadLength(format!(
            "witness reconstruction supports weights 2..=4, got {w}"
        )));
    }
    if g.divisible_by_x_plus_1() && w % 2 == 1 {
        return Ok(None);
    }
    let mut map = PosMap::with_capacity(cap as usize);
    let mut seq = SyndromeSeq::new(g);
    let mut syn: Vec<u64> = vec![seq.peek()];
    let mut avail = 0u32;
    for t in (w - 1)..=cap {
        while syn.len() <= t as usize {
            syn.push(seq.step());
        }
        while avail + 1 < t {
            avail += 1;
            map.insert(syn[avail as usize], avail);
        }
        let target = 1 ^ syn[t as usize];
        match w {
            2 => {
                if target == 0 {
                    return Ok(Some(Witness {
                        positions: vec![0, t],
                    }));
                }
            }
            3 => {
                if let Some(i) = map.get(target) {
                    return Ok(Some(Witness {
                        positions: vec![0, i, t],
                    }));
                }
            }
            _ => {
                for i in 1..t {
                    if let Some(j) = map.get(target ^ syn[i as usize]) {
                        if j != i {
                            let mut positions = vec![0, i, j, t];
                            positions.sort_unstable();
                            return Ok(Some(Witness { positions }));
                        }
                    }
                }
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g32(k: u64) -> GenPoly {
        GenPoly::from_koopman(32, k).unwrap()
    }

    #[test]
    fn witness_degrees_match_dmin() {
        for (k, w, cap) in [
            (0x82608EDBu64, 4u32, 4_000u32),
            (0x8F6E37A0, 4, 6_000),
            (0x82608EDB, 5, 0), // unsupported weight -> error, checked below
        ] {
            if w > 4 {
                continue;
            }
            let g = g32(k);
            let wit = find_witness(&g, w, cap).unwrap();
            let d = crate::dmin::dmin(&g, w, cap).unwrap();
            match (wit, d) {
                (Some(wit), Some(d)) => {
                    assert_eq!(wit.degree(), d, "poly {k:#x}");
                    assert_eq!(wit.weight(), w);
                    assert!(wit.verify(&g));
                }
                (None, None) => {}
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn weight2_witness_is_the_order() {
        let g = GenPoly::from_normal(8, 0x83).unwrap(); // order 14
        let wit = find_witness(&g, 2, 100).unwrap().unwrap();
        assert_eq!(wit.positions, vec![0, 14]);
        assert!(wit.verify(&g));
    }

    #[test]
    fn weight3_witness_for_non_parity_poly() {
        let g = g32(0x82608EDB);
        // d_min(3) = 91639 is too deep for a test; use a CRC-8 non-parity
        // polynomial instead.
        let g8 = GenPoly::from_normal(8, 0x1D).unwrap(); // CRC-8/AUTOSAR-ish base
        if !g8.divisible_by_x_plus_1() {
            if let Some(wit) = find_witness(&g8, 3, 300).unwrap() {
                assert_eq!(wit.weight(), 3);
                assert!(wit.verify(&g8));
            }
        }
        // Parity polynomials cannot have odd witnesses.
        assert!(find_witness(&g32(0xBA0DC66B), 3, 10_000).unwrap().is_none());
        let _ = g;
    }

    #[test]
    fn unsupported_weight_is_an_error() {
        assert!(find_witness(&g32(0x82608EDB), 5, 100).is_err());
        assert!(find_witness(&g32(0x82608EDB), 1, 100).is_err());
    }

    #[test]
    fn frame_pattern_round_trip() {
        let g = GenPoly::from_normal(8, 0x07).unwrap();
        let wit = find_witness(&g, 4, 40).unwrap().expect("weight-4 exists");
        let frame = wit.to_frame_pattern(8).unwrap();
        // Popcount matches the witness weight.
        let bits: u32 = frame.iter().map(|b| b.count_ones()).sum();
        assert_eq!(bits, wit.weight());
        // Too-small frames are rejected.
        assert!(wit.to_frame_pattern(1).is_err());
    }

    #[test]
    fn verify_rejects_corrupted_witnesses() {
        let g = g32(0x8F6E37A0);
        let mut wit = find_witness(&g, 4, 6_000).unwrap().unwrap();
        assert!(wit.verify(&g));
        wit.positions[1] += 1;
        assert!(!wit.verify(&g));
    }
}
