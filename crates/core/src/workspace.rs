//! The shared screening workspace: syndromes, a position index and
//! per-weight `d_min` knowledge that persist across filter stages,
//! lengths and weight computations.
//!
//! # Why a workspace
//!
//! Every question this crate answers about a generator `G` — "does a
//! weight-w multiple fit in `n` bits?", "what is `d_min(w)`?", "how many
//! weight-4 codewords exist at length `L`?" — is a subset-XOR question
//! over the same syndrome sequence `r(i) = x^i mod G`. The scratch paths
//! (preserved in [`crate::reference`]) rebuild that sequence and its
//! value→position index from zero on every call, so a staged screen
//! (filter at 64 bits → profile to 1024 → exact weights at 1024) pays
//! for overlapping syndrome prefixes many times, and a doubling+bisect
//! breakpoint search re-derives them ~30 times per polynomial.
//!
//! A [`SyndromeWorkspace`] is bound to one polynomial at a time and owns:
//!
//! * the **grow-only syndrome table** `r(0)..r(k)`, extended (never
//!   recomputed) as probed lengths grow;
//! * a **position index** mapping syndrome values back to their first
//!   position — a direct-indexed array for widths ≤
//!   [`DIRECT_INDEX_MAX_WIDTH`] (one L1/L2 load per probe, no hashing),
//!   falling back to the [`PosMap`] sparse hash for wider generators
//!   whose value space outruns memory;
//! * a **per-weight `d_min` memo**: each capped search records either the
//!   exact minimal degree it found or the degree below which it proved no
//!   weight-`w` multiple exists, so later stages *resume* scans instead
//!   of restarting them, and the `weights234` sweep skips every degree
//!   the profile already certified clean — quadratically less work,
//!   since the pair loop at degree `t` costs `O(t)` probes.
//!
//! All probes bound-check positions explicitly (`p < t`), so the index
//! may safely run ahead of any particular query: first occurrences are
//! global minima, and "is there an occurrence before `t`?" is exactly
//! `first_occurrence < t`.
//!
//! # Direct index, two-level wide index, hash fallback
//!
//! The direct index stores one `u16` per possible syndrome value
//! (`2 × 2^width` bytes): 16 KiB at the survey's 13-bit width — small
//! enough that the table *and* the streamed syndrome row stay inside L1
//! together (`u16` is enough for positions because first occurrences
//! are bounded by the multiplicative order `< 2^width ≤ 2^16`). Probes
//! are a single dependent L1 load — ~5× cheaper than a hash probe
//! (multiply, mask, and two dependent loads over a larger footprint,
//! with occasional collision chains). Beyond [`DIRECT_INDEX_MAX_WIDTH`]
//! positions outgrow `u16` and a full direct table outgrows cache (at
//! 32 bits, RAM), so widths 17–32 use a **compressed two-level index**:
//!
//! * level 0 — a fixed 16 KiB presence *screen* (one bit per low-bits
//!   slice of the value space) that stays L1-resident and answers the
//!   overwhelmingly-miss probes of the pair sweep with one load;
//! * level 1 — a bucket *directory* over the high bits of the value
//!   (`4 × 2^min(width,20)` bytes). A bucket holds "empty", a single
//!   first-occurrence position (confirmed with one compare against the
//!   syndrome table), or a spill marker into a dense `u32` position row
//!   for the rare colliding buckets — so a surviving probe costs at most
//!   one directory hop plus one compare, and the structure stays *exact*
//!   (no false positives or negatives), unlike a plain fingerprint
//!   filter.
//!
//! Beyond [`TWO_LEVEL_MAX_WIDTH`] the workspace keeps the `PosMap`
//! open-addressing path (also available at every width via
//! [`IndexPolicy::ForceHash`] as the differential oracle); sorted-array
//! merge kernels were considered and rejected because XOR targets do not
//! preserve sort order (a merge degenerates into `O(popcount)` recursive
//! splits that lose to one hash probe). Rebinding to a new polynomial
//! clears each index by *replaying* the positions it inserted
//! (`O(indexed)`, not `O(2^width)`), so a campaign worker reuses one
//! allocation across every candidate. The [`IndexPolicy::Bitsliced`]
//! policy layers the [`crate::bitslice`] block kernels (bulk syndrome
//! extension through CLMUL-advanced bit-plane blocks, batch pair-scans)
//! on top of the two-level index.

use crate::bitslice::PlaneState;
use crate::dmin::{dmin2, mitm_scan_with, MitmState};
use crate::filter::FilterVerdict;
use crate::genpoly::GenPoly;
use crate::posmap::PosMap;
use crate::syndrome::SyndromeSeq;
use crate::weights::{weight2_from_order, Weights234};
use crate::{Error, Result};

/// Widest generator that uses the direct-indexed position table.
/// At or below this width both syndrome values and first-occurrence
/// positions fit in `u16` (first occurrences are bounded by the
/// multiplicative order, which is `< 2^width`), so the table is
/// `2 × 2^width` bytes — 16 KiB at 16 bits — and the whole sweep working
/// set stays L1-resident. Wider generators use the [`PosMap`] hash
/// fallback.
pub const DIRECT_INDEX_MAX_WIDTH: u32 = 16;

/// "Slot empty" sentinel of the direct index. `u16::MAX` (not 0) so the
/// hot pair loop needs a *single* compare: real positions are ≤ 2^16 − 2
/// (first occurrences sit below the order), sweep degrees `t` are below
/// the order too, so `p < t` is false for empty slots automatically.
const DIRECT_EMPTY: u16 = u16::MAX;

/// Weights `2..MEMO_WEIGHTS` get a `d_min` memo slot and a persistent
/// MITM subset-map slot (covers every profile weight; rarer weights
/// simply re-scan with transient state).
const MEMO_WEIGHTS: usize = 33;

/// Widest generator that uses the compressed two-level index; wider
/// generators fall back to the [`PosMap`] hash (the paper's subject —
/// the 32-bit space — sits exactly at this ceiling).
pub const TWO_LEVEL_MAX_WIDTH: u32 = 32;

/// log₂ of the largest two-level bucket directory (`4 × 2^20` = 4 MiB;
/// widths below this use their full value space and are collision-free).
/// Collisions only cost spill-row hops, so the directory can stay far
/// smaller than the 32-bit value space.
const WIDE_DIR_BITS: u32 = 20;

/// log₂ of the two-level presence screen in bits (2¹⁷ bits = 16 KiB,
/// L1-resident; indexed by the *low* value bits, complementing the
/// high-bits directory).
const WIDE_SCREEN_BITS: u32 = 17;

/// "Bucket empty" sentinel of the two-level directory.
const WIDE_EMPTY: u32 = u32::MAX;

/// Directory entries with this bit set hold a spill-row number, not a
/// position (positions are < 2³¹; the sweep's `e < t` compare rejects
/// both markers and the sentinel for free).
const WIDE_SPILL: u32 = 1 << 31;

/// How a workspace chooses its position index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexPolicy {
    /// Direct-indexed table for widths ≤ [`DIRECT_INDEX_MAX_WIDTH`],
    /// two-level for widths ≤ [`TWO_LEVEL_MAX_WIDTH`], hash otherwise.
    Auto,
    /// Always use the [`PosMap`] hash path — the sparse-probe fallback,
    /// forced (used by differential tests and before/after benches).
    ForceHash,
    /// Force the two-level index at any width ≤ [`TWO_LEVEL_MAX_WIDTH`]
    /// (hash beyond); exercises the wide kernels at narrow widths.
    ForceTwoLevel,
    /// Two-level index plus the [`crate::bitslice`] block kernels:
    /// bulk syndrome extension through CLMUL-advanced bit-plane blocks
    /// and the batch (mask-then-resolve) pair sweep. Falls back to hash
    /// + serial beyond [`TWO_LEVEL_MAX_WIDTH`].
    Bitsliced,
}

/// Which index flavor a binding ended up with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Direct-indexed `u16` table over the value space.
    Direct,
    /// Compressed two-level index (presence screen + bucket directory +
    /// spill rows) for wide widths.
    TwoLevel,
    /// Open-addressing hash table ([`PosMap`]).
    Hash,
}

/// What a workspace knows about weight-`w` multiples (constant term 1)
/// of the bound polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WeightFact {
    /// Nothing beyond the trivial degree ≥ w−1 bound.
    Unknown,
    /// No weight-`w` multiple has degree < this (a capped search came up
    /// empty through this−1).
    ZeroBelow(u32),
    /// The exact minimal degree of a weight-`w` multiple.
    MinDegree(u32),
}

/// A persisted `d_min` memo fact for one weight: the public,
/// serializable mirror of the workspace's internal memo. Every capped
/// search deposits either the exact answer or a certified-clean range;
/// [`SyndromeWorkspace::memo_facts`] exports those deposits and
/// [`SyndromeWorkspace::seed_memo`] replants them — in a fresh
/// workspace, or a fresh *process* — so a second evaluation pass (say,
/// re-profiling a survey survivor at 8k–64k bits) resumes each weight's
/// scan where the first pass stopped instead of restarting from degree
/// `w − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoFact {
    /// No weight-`w` multiple has degree below this bound (a capped
    /// search came up empty through `bound − 1`).
    ZeroBelow(u32),
    /// The exact minimal degree of a weight-`w` multiple.
    MinDegree(u32),
}

/// A reusable, grow-only evaluation workspace for one polynomial at a
/// time (see the module docs). Create once per worker, then call the
/// evaluation methods — each auto-binds to its polynomial argument,
/// keeping all cached state while the polynomial stays the same and
/// cheaply resetting (allocations retained) when it changes.
#[derive(Debug, Clone)]
pub struct SyndromeWorkspace {
    policy: IndexPolicy,
    g: Option<GenPoly>,
    seq: Option<SyndromeSeq>,
    /// `syn[i] = r(i)`; grow-only while bound.
    syn: Vec<u64>,
    order: Option<u128>,
    facts: [WeightFact; MEMO_WEIGHTS],
    kind: IndexKind,
    /// Positions `1..=indexed` are present in the active index.
    indexed: u32,
    /// Direct index: `direct[value] = first position`, 0 = absent
    /// (position 0 is never indexed). Sized lazily to `1 << width`;
    /// positions fit `u16` because first occurrences are below the
    /// order, which is below `2^width ≤ 2^16`.
    direct: Vec<u16>,
    /// `u16` mirror of `syn` for direct-index sweeps (values are
    /// `< 2^width ≤ 2^16` there); extended lazily, cleared on rebind.
    syn16: Vec<u16>,
    /// Hash fallback index.
    hash: PosMap,
    /// Two-level bucket directory over the high `dir_bits` bits of a
    /// value: [`WIDE_EMPTY`], a first-occurrence position, or a
    /// [`WIDE_SPILL`]-tagged row number. Grow-only across bindings
    /// (a narrower binding uses a prefix), cleared by replay.
    dir: Vec<u32>,
    /// Bits of the value space the directory covers (`min(width, 20)`).
    dir_bits: u32,
    /// `width - dir_bits`: the probe's high-bits shift.
    dir_shift: u32,
    /// Spill rows for the rare buckets holding ≥ 2 distinct values;
    /// positions ascending, deduplicated by value (first occurrence).
    rows: Vec<Vec<u32>>,
    /// Two-level presence screen (see [`WIDE_SCREEN_BITS`]); allocated on
    /// first two-level binding, cleared by replay.
    wscreen: Vec<u64>,
    /// Whether this binding runs the bitsliced block kernels.
    bitsliced: bool,
    /// Bit-plane block state for [`IndexPolicy::Bitsliced`] bindings
    /// (basis + CLMUL modmul context); rebuilt per binding.
    bs: Option<PlaneState>,
    /// Persistent MITM subset maps, one per memoized weight, extended
    /// incrementally across calls and reset (allocations kept) on
    /// rebind — see [`MitmState`].
    mitm: Vec<Option<MitmState>>,
    rebinds: u64,
}

impl Default for SyndromeWorkspace {
    fn default() -> SyndromeWorkspace {
        SyndromeWorkspace::new()
    }
}

impl SyndromeWorkspace {
    /// An empty workspace with the [`IndexPolicy::Auto`] index choice.
    pub fn new() -> SyndromeWorkspace {
        SyndromeWorkspace::with_policy(IndexPolicy::Auto)
    }

    /// An empty workspace with an explicit index policy.
    pub fn with_policy(policy: IndexPolicy) -> SyndromeWorkspace {
        SyndromeWorkspace {
            policy,
            g: None,
            seq: None,
            syn: Vec::new(),
            order: None,
            facts: [WeightFact::Unknown; MEMO_WEIGHTS],
            kind: IndexKind::Hash,
            indexed: 0,
            direct: Vec::new(),
            syn16: Vec::new(),
            hash: PosMap::with_capacity(0),
            dir: Vec::new(),
            dir_bits: 0,
            dir_shift: 0,
            rows: Vec::new(),
            wscreen: Vec::new(),
            bitsliced: false,
            bs: None,
            mitm: Vec::new(),
            rebinds: 0,
        }
    }

    /// Binds the workspace to `g`: a no-op when `g` is already bound,
    /// otherwise clears the cached state (keeping allocations — the
    /// direct index is cleared by replaying the positions it holds).
    pub fn bind(&mut self, g: &GenPoly) {
        if self.g.as_ref() == Some(g) {
            return;
        }
        match self.kind {
            IndexKind::Direct => {
                for i in 1..=self.indexed {
                    self.direct[self.syn[i as usize] as usize] = DIRECT_EMPTY;
                }
            }
            IndexKind::TwoLevel => {
                for i in 1..=self.indexed {
                    let v = self.syn[i as usize];
                    self.dir[(v >> self.dir_shift) as usize] = WIDE_EMPTY;
                    let low = v as usize & ((1 << WIDE_SCREEN_BITS) - 1);
                    self.wscreen[low >> 6] &= !(1u64 << (low & 63));
                }
                self.rows.clear();
            }
            IndexKind::Hash => self.hash.clear(),
        }
        self.indexed = 0;
        self.syn.clear();
        self.syn16.clear();
        self.order = None;
        self.facts = [WeightFact::Unknown; MEMO_WEIGHTS];
        for state in self.mitm.iter_mut().flatten() {
            state.reset();
        }
        self.bs = None;
        self.kind = match self.policy {
            IndexPolicy::ForceHash => IndexKind::Hash,
            IndexPolicy::ForceTwoLevel | IndexPolicy::Bitsliced
                if g.width() <= TWO_LEVEL_MAX_WIDTH =>
            {
                IndexKind::TwoLevel
            }
            IndexPolicy::ForceTwoLevel | IndexPolicy::Bitsliced => IndexKind::Hash,
            IndexPolicy::Auto if g.width() <= DIRECT_INDEX_MAX_WIDTH => IndexKind::Direct,
            IndexPolicy::Auto if g.width() <= TWO_LEVEL_MAX_WIDTH => IndexKind::TwoLevel,
            IndexPolicy::Auto => IndexKind::Hash,
        };
        self.bitsliced = self.policy == IndexPolicy::Bitsliced && g.width() <= TWO_LEVEL_MAX_WIDTH;
        if self.kind == IndexKind::Direct {
            let need = 1usize << g.width();
            if self.direct.len() < need {
                self.direct.resize(need, DIRECT_EMPTY);
            }
        }
        if self.kind == IndexKind::TwoLevel {
            self.dir_bits = g.width().min(WIDE_DIR_BITS);
            self.dir_shift = g.width() - self.dir_bits;
            let need = 1usize << self.dir_bits;
            if self.dir.len() < need {
                self.dir.resize(need, WIDE_EMPTY);
            }
            if self.wscreen.is_empty() {
                self.wscreen = vec![0; 1 << (WIDE_SCREEN_BITS - 6)];
            }
        }
        let seq = SyndromeSeq::new(g);
        self.syn.push(seq.peek());
        self.seq = Some(seq);
        self.g = Some(*g);
        self.rebinds += 1;
    }

    /// The polynomial currently bound, if any.
    pub fn bound(&self) -> Option<&GenPoly> {
        self.g.as_ref()
    }

    /// The index flavor of the current binding.
    pub fn index_kind(&self) -> IndexKind {
        self.kind
    }

    /// Number of syndromes `r(0)..` computed so far for the binding.
    pub fn syndromes_known(&self) -> usize {
        self.syn.len()
    }

    /// Number of positions present in the value→position index.
    pub fn positions_indexed(&self) -> u32 {
        self.indexed
    }

    /// How many times the workspace has been (re)bound.
    pub fn rebinds(&self) -> u64 {
        self.rebinds
    }

    /// Implicit growth rehashes of the hash index (see
    /// [`PosMap::rehashes`]) — stays 0 when every scan pre-sizes through
    /// `reserve_hash` per the documented sizing contract.
    pub fn hash_rehashes(&self) -> u64 {
        self.hash.rehashes()
    }

    /// Number of entries currently held in the hash index.
    pub fn hash_len(&self) -> usize {
        self.hash.len()
    }

    /// Slot capacity of the hash index; together with [`hash_len`] this
    /// gives the load factor a telemetry gauge can report without
    /// reaching into [`PosMap`] internals.
    ///
    /// [`hash_len`]: SyndromeWorkspace::hash_len
    pub fn hash_capacity(&self) -> usize {
        self.hash.capacity()
    }

    /// Number of spill rows the two-level index has materialized —
    /// syndrome values whose first-level slot overflowed into a
    /// heap-allocated row. Stays 0 for `Direct` and `Hash` bindings.
    pub fn two_level_spill_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total positions stored across all two-level spill rows — the
    /// subset of [`positions_indexed`] that could not live in the
    /// first-level directory.
    ///
    /// [`positions_indexed`]: SyndromeWorkspace::positions_indexed
    pub fn two_level_spill_positions(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// The multiplicative order of `x` mod `g` (= `d_min(2)`), cached
    /// across every evaluation of the binding.
    pub fn order(&mut self, g: &GenPoly) -> u128 {
        self.bind(g);
        self.order_value()
    }

    fn order_value(&mut self) -> u128 {
        if self.order.is_none() {
            self.order = Some(dmin2(self.g.as_ref().expect("workspace is bound")));
        }
        self.order.expect("just filled")
    }

    /// Exports every non-trivial `d_min` memo fact the binding to `g`
    /// holds, as `(weight, fact)` pairs in ascending weight order —
    /// the serializable state a caller persists to resume evaluation in
    /// a later process via [`SyndromeWorkspace::seed_memo`]. Weight 2 is
    /// excluded: its answer is the multiplicative order, which callers
    /// persist separately (see [`SyndromeWorkspace::seed_order`]).
    pub fn memo_facts(&mut self, g: &GenPoly) -> Vec<(u32, MemoFact)> {
        self.bind(g);
        (3..MEMO_WEIGHTS as u32)
            .filter_map(|w| match self.fact(w) {
                WeightFact::Unknown => None,
                WeightFact::ZeroBelow(t) => Some((w, MemoFact::ZeroBelow(t))),
                WeightFact::MinDegree(d) => Some((w, MemoFact::MinDegree(d))),
            })
            .collect()
    }

    /// Seeds the binding to `g` with previously exported memo facts
    /// (see [`SyndromeWorkspace::memo_facts`]). Facts only ever
    /// strengthen: an exact answer is never displaced, and
    /// certified-clean bounds merge to the larger one, so seeding stale
    /// or partial state is always safe — but the facts themselves are
    /// *caller-certified*: they must describe `g` (as exported by an
    /// earlier binding to the same polynomial), or later answers will be
    /// wrong. Weights outside the memoized range are ignored.
    pub fn seed_memo(&mut self, g: &GenPoly, facts: &[(u32, MemoFact)]) {
        self.bind(g);
        for &(w, fact) in facts {
            if !(3..MEMO_WEIGHTS as u32).contains(&w) {
                continue;
            }
            let merged = match (self.fact(w), fact) {
                (WeightFact::MinDegree(d), _) => WeightFact::MinDegree(d),
                (_, MemoFact::MinDegree(d)) => WeightFact::MinDegree(d),
                (WeightFact::ZeroBelow(a), MemoFact::ZeroBelow(b)) => {
                    WeightFact::ZeroBelow(a.max(b))
                }
                (WeightFact::Unknown, MemoFact::ZeroBelow(b)) => WeightFact::ZeroBelow(b),
            };
            self.set_fact(w, merged);
        }
    }

    /// Seeds the cached multiplicative order of `x` mod `g` (caller-
    /// certified, like [`SyndromeWorkspace::seed_memo`]): the one
    /// evaluation input the memo facts do not cover. A no-op when the
    /// binding already computed its order.
    pub fn seed_order(&mut self, g: &GenPoly, order: u128) {
        self.bind(g);
        if self.order.is_none() {
            self.order = Some(order);
        }
    }

    fn fact(&self, w: u32) -> WeightFact {
        self.facts
            .get(w as usize)
            .copied()
            .unwrap_or(WeightFact::Unknown)
    }

    fn set_fact(&mut self, w: u32, fact: WeightFact) {
        if let Some(slot) = self.facts.get_mut(w as usize) {
            *slot = fact;
        }
    }

    /// The degree below which weight-`w` multiples are certified absent
    /// (0 when nothing is known).
    fn zero_below(&self, w: u32) -> u32 {
        match self.fact(w) {
            WeightFact::Unknown => 0,
            WeightFact::ZeroBelow(t) => t,
            WeightFact::MinDegree(d) => d,
        }
    }

    /// The direct table sliced to exactly the bound width's value space,
    /// plus the value mask. The exact length and the mask together let
    /// the compiler drop the bounds check from every probe (syndromes
    /// are `< 2^width`, so the mask is the identity on real values).
    fn direct_table(&self) -> (&[u16], u64) {
        let width = self.g.as_ref().expect("workspace is bound").width();
        (&self.direct[..1usize << width], (1u64 << width) - 1)
    }

    /// Rebuilds the current direct index as a hash index (same
    /// first-occurrence contents) and flips the binding to
    /// [`IndexKind::Hash`] — the escape hatch for positions that would
    /// collide with the `u16` sentinel; see `ensure_indexed`.
    fn migrate_direct_to_hash(&mut self, upto: u32) {
        let mut m = PosMap::with_capacity(upto as usize);
        for i in 1..=self.indexed {
            let v = self.syn[i as usize];
            self.direct[v as usize] = DIRECT_EMPTY;
            m.insert(v, i);
        }
        self.hash = m;
        self.kind = IndexKind::Hash;
    }

    /// Pre-sizes the hash index for a scan that may index up to `n`
    /// positions. Scans leave the load factor low this way — exactly
    /// like the scratch paths, which size their map for the cap — so
    /// probe collision chains stay short even when an early exit leaves
    /// the table mostly empty. [`PosMap::reserve`] at-least-doubles on
    /// every actual resize, so an index trailing its table through many
    /// slightly-growing caps (the breakpoint search's bisection pattern
    /// at 32-bit cardinalities) pays `O(log n)` rebuilds total, and
    /// `rehashes()` stays 0 under the sizing contract. No-op for the
    /// direct and two-level indexes (collision-free / spill-row based).
    fn reserve_hash(&mut self, n: u32) {
        if self.kind == IndexKind::Hash {
            self.hash.reserve(n as usize);
        }
    }

    /// Extends the `u16` syndrome mirror to cover `syn[..=upto]`.
    fn ensure_syn16(&mut self, upto: u32) {
        debug_assert!((upto as usize) < self.syn.len());
        while self.syn16.len() <= upto as usize {
            self.syn16.push(self.syn[self.syn16.len()] as u16);
        }
    }

    fn ensure_syndromes(&mut self, upto: u32) {
        let seq = self.seq.as_mut().expect("workspace is bound");
        if self.bitsliced && upto as usize >= crate::bitslice::BASIS_PREFIX {
            // Bulk path: serial prefix for the plane basis, then whole
            // 64-position blocks whose anchors advance by one CLMUL
            // modmul each (values bit-identical to serial stepping; the
            // table may overshoot `upto` by up to 63 positions, which
            // every consumer's explicit bounds make safe).
            seq.extend_table(&mut self.syn, crate::bitslice::BASIS_PREFIX - 1);
            let g = self.g.as_ref().expect("workspace is bound");
            let bs = self.bs.get_or_insert_with(|| PlaneState::new(g, &self.syn));
            bs.extend(&mut self.syn, upto as usize);
            seq.resync(*self.syn.last().expect("table is seeded"));
            return;
        }
        seq.extend_table(&mut self.syn, upto as usize);
    }

    /// Extends the index to cover positions `1..=upto` (syndromes must
    /// already be computed that far).
    fn ensure_indexed(&mut self, upto: u32) {
        debug_assert!((upto as usize) < self.syn.len());
        if self.kind == IndexKind::Direct && upto >= DIRECT_EMPTY as u32 {
            // A u16 direct index cannot represent positions at or past
            // the sentinel. Reachable only when a scan runs past an
            // order of exactly 2^16 − 1 (a primitive width-16
            // generator): position 2^16 − 1 re-introduces the value
            // r(0) = 1, which position 0 never indexed. Migrate the
            // binding to the hash index (first occurrences preserved by
            // inserting in position order) and continue there.
            self.migrate_direct_to_hash(upto);
        }
        match self.kind {
            IndexKind::Direct => {
                while self.indexed < upto {
                    self.indexed += 1;
                    let slot = &mut self.direct[self.syn[self.indexed as usize] as usize];
                    if *slot == DIRECT_EMPTY {
                        // An empty slot means a first occurrence, and
                        // first occurrences lie below the order < 2^16:
                        // past the order the sequence repeats, so every
                        // later position finds its value already stored
                        // (and no stored position collides with the
                        // sentinel).
                        debug_assert!(self.indexed < DIRECT_EMPTY as u32);
                        *slot = self.indexed as u16;
                    }
                }
            }
            IndexKind::TwoLevel => {
                let shift = self.dir_shift;
                while self.indexed < upto {
                    self.indexed += 1;
                    let p = self.indexed;
                    debug_assert!(p < WIDE_SPILL, "positions stay below the spill tag");
                    let v = self.syn[p as usize];
                    let low = v as usize & ((1 << WIDE_SCREEN_BITS) - 1);
                    self.wscreen[low >> 6] |= 1u64 << (low & 63);
                    let bucket = (v >> shift) as usize;
                    let e = self.dir[bucket];
                    if e == WIDE_EMPTY {
                        self.dir[bucket] = p;
                    } else if e & WIDE_SPILL != 0 {
                        let ri = (e & !WIDE_SPILL) as usize;
                        if !self.rows[ri].iter().any(|&q| self.syn[q as usize] == v) {
                            self.rows[ri].push(p);
                        }
                    } else if self.syn[e as usize] != v {
                        // Second distinct value in this bucket: spill both
                        // positions to a dense row (ascending, so the first
                        // match during a scan is the first occurrence).
                        let ri = self.rows.len() as u32;
                        debug_assert!(ri < WIDE_SPILL);
                        self.rows.push(vec![e, p]);
                        self.dir[bucket] = WIDE_SPILL | ri;
                    }
                    // else: later occurrence of an indexed value — keep the
                    // first position, exactly like the other index kinds.
                }
            }
            IndexKind::Hash => {
                while self.indexed < upto {
                    self.indexed += 1;
                    self.hash
                        .insert(self.syn[self.indexed as usize], self.indexed);
                }
            }
        }
    }

    /// Smallest degree `t ≤ cap` of a weight-`w` multiple of the bound
    /// polynomial with nonzero constant term — the workspace-backed
    /// equivalent of [`crate::reference::dmin`], with memoized resume:
    /// a search capped at `c` leaves behind either the exact answer or a
    /// certified-clean range, and the next call continues from there.
    ///
    /// # Errors
    ///
    /// As [`crate::reference::dmin`]: `w < 2` is [`Error::BadLength`];
    /// `w ≥ 5` searches can return [`Error::BudgetExceeded`].
    pub fn dmin(&mut self, g: &GenPoly, w: u32, cap: u32) -> Result<Option<u32>> {
        if w < 2 {
            return Err(Error::BadLength(format!("weight {w} < 2 has no multiples")));
        }
        self.bind(g);
        if w == 2 {
            let e = self.order_value();
            return Ok(if e <= cap as u128 {
                Some(e as u32)
            } else {
                None
            });
        }
        if g.divisible_by_x_plus_1() && w % 2 == 1 {
            return Ok(None);
        }
        if cap < w - 1 {
            return Ok(None);
        }
        match self.fact(w) {
            WeightFact::MinDegree(d) => {
                return Ok(if d <= cap { Some(d) } else { None });
            }
            WeightFact::ZeroBelow(t) if t > cap => return Ok(None),
            _ => {}
        }
        match w {
            3 => Ok(self.scan_w3(cap)),
            4 => Ok(self.scan_w4(cap)),
            _ => self.scan_mitm(w, cap),
        }
    }

    /// Does any weight-`w` codeword fit in `codeword_len` bits?
    ///
    /// # Errors
    ///
    /// As [`SyndromeWorkspace::dmin`].
    pub fn exists_weight(&mut self, g: &GenPoly, w: u32, codeword_len: u32) -> Result<bool> {
        if codeword_len == 0 {
            return Ok(false);
        }
        Ok(self.dmin(g, w, codeword_len - 1)?.is_some())
    }

    /// First position of `v` in the built index, 0 when absent.
    #[inline]
    fn pos_of(&self, v: u64) -> u32 {
        match self.kind {
            IndexKind::Direct => {
                let p = self.direct[v as usize];
                if p == DIRECT_EMPTY {
                    0
                } else {
                    p as u32
                }
            }
            IndexKind::TwoLevel => twolevel_pos(
                &self.syn,
                &self.wscreen,
                &self.dir,
                self.dir_shift,
                &self.rows,
                v,
            ),
            IndexKind::Hash => self.hash.get(v).unwrap_or(0),
        }
    }

    fn scan_w3(&mut self, cap: u32) -> Option<u32> {
        let start = self.zero_below(3).max(2);
        if start > cap {
            return None;
        }
        self.reserve_hash(cap - 1);
        let mut found = None;
        // Incremental growth (index trails the probe degree by one)
        // keeps early exits from paying for the full cap, exactly like
        // the scratch scan.
        for t in start..=cap {
            self.ensure_syndromes(t);
            self.ensure_indexed(t - 1);
            let p = self.pos_of(1 ^ self.syn[t as usize]);
            if p != 0 && p < t {
                found = Some(t);
                break;
            }
        }
        self.set_fact(
            3,
            match found {
                Some(t) => WeightFact::MinDegree(t),
                None => WeightFact::ZeroBelow(cap + 1),
            },
        );
        found
    }

    fn scan_w4(&mut self, cap: u32) -> Option<u32> {
        let start = self.zero_below(4).max(3);
        if start > cap {
            return None;
        }
        self.reserve_hash(cap - 1);
        let mut found = None;
        for t in start..=cap {
            self.ensure_syndromes(t);
            self.ensure_indexed(t - 1);
            let target = 1 ^ self.syn[t as usize];
            let hit = match self.kind {
                IndexKind::Direct => {
                    let (tbl, mask) = self.direct_table();
                    row_has_pair(&self.syn, t, target, |v| {
                        let p = tbl[(v & mask) as usize];
                        if p == DIRECT_EMPTY {
                            0
                        } else {
                            p as u32
                        }
                    })
                }
                IndexKind::TwoLevel => {
                    let (syn, screen) = (&self.syn, &self.wscreen[..]);
                    let (dir, rows, shift) = (&self.dir[..], &self.rows[..], self.dir_shift);
                    row_has_pair(syn, t, target, |v| {
                        twolevel_pos(syn, screen, dir, shift, rows, v)
                    })
                }
                IndexKind::Hash => {
                    let map = &self.hash;
                    row_has_pair(&self.syn, t, target, |v| map.get(v).unwrap_or(0))
                }
            };
            if hit {
                found = Some(t);
                break;
            }
        }
        self.set_fact(
            4,
            match found {
                Some(t) => WeightFact::MinDegree(t),
                None => WeightFact::ZeroBelow(cap + 1),
            },
        );
        found
    }

    fn scan_mitm(&mut self, w: u32, cap: u32) -> Result<Option<u32>> {
        let probe_from = self.zero_below(w);
        if w == 5 && self.kind != IndexKind::Hash && (cap as u128) < self.order_value() {
            // Weight-5 specialization: the MITM a-side here is a
            // *singleton* map, and below the order (values distinct, so
            // first occurrences are the only occurrences) that map is
            // exactly the workspace's first-occurrence index. Probing the
            // b = 2 inner pairs against the index replaces the subset-map
            // build entirely, shares syndromes/index with every other
            // scan, and needs no budget (the map it replaces is the
            // index, whose size is bounded by the cap).
            let found = self.scan_w5_indexed(cap, probe_from);
            self.set_fact(
                5,
                match found {
                    Some(d) => WeightFact::MinDegree(d),
                    None => WeightFact::ZeroBelow(cap + 1),
                },
            );
            return Ok(found);
        }
        if self.mitm.is_empty() && (w as usize) < MEMO_WEIGHTS {
            self.mitm = std::iter::repeat_with(|| None).take(MEMO_WEIGHTS).collect();
        }
        let seq = self.seq.as_mut().expect("workspace is bound");
        let found = if let Some(slot) = self.mitm.get_mut(w as usize) {
            // Persistent subset map: extended incrementally across calls
            // on this binding, so `hd_filter → HdProfile → weights234`
            // funnels stop rebuilding it from scratch per stage.
            let state = slot.get_or_insert_with(MitmState::new);
            mitm_scan_with(w, cap, probe_from, &mut self.syn, seq, state)?
        } else {
            mitm_scan_with(
                w,
                cap,
                probe_from,
                &mut self.syn,
                seq,
                &mut MitmState::new(),
            )?
        };
        self.set_fact(
            w,
            match found {
                Some(d) => WeightFact::MinDegree(d),
                None => WeightFact::ZeroBelow(cap + 1),
            },
        );
        Ok(found)
    }

    /// The index-backed weight-5 scan (see `scan_mitm`): for each top
    /// degree `t`, probe every inner pair `i < j` for a third partner
    /// position completing `r(i)^r(j)^r(k) = 1^r(t)` — the same probe
    /// count as the reference MITM split (a = 1, b = 2), with the
    /// singleton map replaced by the shared index. Only called with
    /// `cap` below the order, where first occurrences are unique
    /// occurrences, so the index answers exactly what the map would.
    fn scan_w5_indexed(&mut self, cap: u32, probe_from: u32) -> Option<u32> {
        let start = probe_from.max(4);
        if start > cap {
            return None;
        }
        self.reserve_hash(cap - 1);
        for t in start..=cap {
            self.ensure_syndromes(t);
            self.ensure_indexed(t - 1);
            let target = 1 ^ self.syn[t as usize];
            for j in 2..t {
                let vj = target ^ self.syn[j as usize];
                for i in 1..j {
                    let k = self.pos_of(vj ^ self.syn[i as usize]);
                    if k != 0 && k < t && k != i && k != j {
                        return Some(t);
                    }
                }
            }
        }
        None
    }

    /// The fast HD filter over this workspace — see
    /// [`crate::filter::hd_filter_in`], which this delegates to.
    ///
    /// # Errors
    ///
    /// As [`SyndromeWorkspace::dmin`].
    pub fn hd_filter(
        &mut self,
        g: &GenPoly,
        data_len: u32,
        target_hd: u32,
    ) -> Result<FilterVerdict> {
        crate::filter::hd_filter_in(self, g, data_len, target_hd)
    }

    /// Exact `W₂` at any data-word length from the cached order.
    ///
    /// # Errors
    ///
    /// [`Error::BadLength`] for zero or overflowing lengths.
    pub fn weight2(&mut self, g: &GenPoly, data_len: u32) -> Result<u128> {
        if data_len == 0 {
            return Err(Error::BadLength("data_len must be positive".into()));
        }
        let l = data_len
            .checked_add(g.width())
            .ok_or_else(|| Error::BadLength("codeword length overflow".into()))?
            as u128;
        self.bind(g);
        Ok(weight2_from_order(self.order_value(), l))
    }

    /// Exact `W₂`, `W₃`, `W₄` at `data_len` — the workspace-kernel
    /// equivalent of [`crate::reference::weights234`]. The top-degree
    /// sweep starts at the smallest degree not already certified clean
    /// by earlier `d_min` searches on this binding (a profile computed
    /// first makes most of the sweep vanish), and what the sweep proves
    /// flows back into the memo.
    ///
    /// # Errors
    ///
    /// As [`crate::reference::weights234`]: zero/overflowing lengths and
    /// codeword lengths beyond the polynomial order are
    /// [`Error::BadLength`].
    pub fn weights234(&mut self, g: &GenPoly, data_len: u32) -> Result<Weights234> {
        if data_len == 0 {
            return Err(Error::BadLength("data_len must be positive".into()));
        }
        let r = g.width();
        let codeword_len = data_len
            .checked_add(r)
            .ok_or_else(|| Error::BadLength("codeword length overflow".into()))?;
        self.bind(g);
        let order = self.order_value();
        let l = codeword_len as u64;
        if (l as u128) > order {
            return Err(Error::BadLength(format!(
                "codeword length {l} exceeds the polynomial order {order}; \
                 exact counting requires distinct syndromes"
            )));
        }
        let w2 = weight2_from_order(order, l as u128);
        let parity = g.divisible_by_x_plus_1();
        let zb3 = if parity {
            u32::MAX
        } else {
            self.zero_below(3).max(2)
        };
        let zb4 = self.zero_below(4).max(2);
        let mut w3 = 0u128;
        let mut w4 = 0u128;
        if zb3.min(zb4) < codeword_len {
            self.ensure_syndromes(codeword_len - 1);
            let sweep = match self.kind {
                IndexKind::Direct => {
                    // Collision-free probes: build the whole index once,
                    // then run the L1-resident u16 kernel.
                    self.ensure_indexed(codeword_len - 2);
                    self.ensure_syn16(codeword_len - 1);
                    let (tbl, mask) = self.direct_table();
                    sweep_w34_direct(&self.syn16, tbl, mask as u16, codeword_len, zb3, zb4)
                }
                IndexKind::TwoLevel => {
                    // Spill-row probes are exact and bound-checked, so
                    // build the whole index once (no trailing) and run
                    // the screen-first kernel.
                    self.ensure_indexed(codeword_len - 2);
                    if self.bitsliced {
                        self.sweep_w34_bitsliced(codeword_len, zb3, zb4)
                    } else {
                        self.sweep_w34_twolevel(codeword_len, zb3, zb4)
                    }
                }
                IndexKind::Hash => self.sweep_w34_hash(codeword_len, zb3, zb4),
            };
            w3 = sweep.w3;
            w4 = sweep.w4;
            // Fold what the sweep proved back into the memo: a first hit
            // is an exact d_min (everything below its start was already
            // certified clean); a clean sweep certifies the whole range.
            if !parity {
                self.note_scan(3, sweep.first3, codeword_len - 1);
            }
            self.note_scan(4, sweep.first4, codeword_len - 1);
        }
        Ok(Weights234 {
            data_len,
            codeword_len,
            w2,
            w3,
            w4,
        })
    }

    /// Records a weights-sweep outcome for weight `w`: `first` is the
    /// first degree with a hit (0 = none), `scanned_to` the last degree
    /// swept. Facts only ever strengthen — a clean short sweep must not
    /// shrink a larger certified-clean range left by an earlier search.
    fn note_scan(&mut self, w: u32, first: u32, scanned_to: u32) {
        match (self.fact(w), first) {
            (WeightFact::MinDegree(_), _) => {}
            (_, 0) => {
                let zb = (scanned_to + 1).max(self.zero_below(w));
                self.set_fact(w, WeightFact::ZeroBelow(zb));
            }
            (_, t) => self.set_fact(w, WeightFact::MinDegree(t)),
        }
    }
}

/// Is there a pair `i ≠ j`, both in `[1, t-1]`, with
/// `r(i) ^ r(j) = target`? `lookup` returns the first position of a
/// value (0 for absent); the explicit `p < t` bound makes an index that
/// runs ahead of `t` safe.
#[inline]
fn row_has_pair(syn: &[u64], t: u32, target: u64, lookup: impl Fn(u64) -> u32) -> bool {
    for (k, &s) in syn[1..t as usize].iter().enumerate() {
        let i = (k + 1) as u32;
        let p = lookup(target ^ s);
        if p != 0 && p < t && p != i {
            return true;
        }
    }
    false
}

/// First position of `v` in a two-level index, 0 when absent: presence
/// screen (low bits, one L1 load — rejects ~all pair-sweep misses) →
/// bucket directory (high bits) → one confirming compare against the
/// syndrome table, or a spill-row scan for the rare colliding buckets.
#[inline]
fn twolevel_pos(
    syn: &[u64],
    screen: &[u64],
    dir: &[u32],
    shift: u32,
    rows: &[Vec<u32>],
    v: u64,
) -> u32 {
    let low = v as usize & ((1 << WIDE_SCREEN_BITS) - 1);
    if screen[low >> 6] & (1u64 << (low & 63)) == 0 {
        return 0;
    }
    let e = dir[(v >> shift) as usize];
    if e == WIDE_EMPTY {
        return 0;
    }
    if e & WIDE_SPILL == 0 {
        return if syn[e as usize] == v { e } else { 0 };
    }
    rows[(e & !WIDE_SPILL) as usize]
        .iter()
        .copied()
        .find(|&q| syn[q as usize] == v)
        .unwrap_or(0)
}

/// Resolves a screen-surviving pair probe `v` (partner of position `i`
/// at top degree `t`) against the directory: true iff `v` first occurs
/// at a position in `(i, t)` — the "count each unordered pair from its
/// smaller side once" rule of the hash sweep, in branch-light form. The
/// `e < t` compare rejects [`WIDE_EMPTY`], spill tags *and* positions
/// the index holds beyond `t` in one go; sweeps run below the order, so
/// a first occurrence is the only occurrence below `t`.
#[inline]
fn twolevel_pair_hit(
    syn: &[u64],
    dir: &[u32],
    shift: u32,
    rows: &[Vec<u32>],
    v: u64,
    i: u32,
    t: u32,
) -> bool {
    let e = dir[(v >> shift) as usize];
    if e < t {
        return syn[e as usize] == v && e > i;
    }
    if e != WIDE_EMPTY && e & WIDE_SPILL != 0 {
        if let Some(q) = rows[(e & !WIDE_SPILL) as usize]
            .iter()
            .copied()
            .find(|&q| syn[q as usize] == v)
        {
            return q > i && q < t;
        }
    }
    false
}

/// Accumulated result of one weights sweep.
#[derive(Default)]
struct Sweep {
    w3: u128,
    w4: u128,
    /// First degree with a weight-3 hit (0 = none).
    first3: u32,
    /// First degree with a weight-4 pair (0 = none).
    first4: u32,
}

impl SyndromeWorkspace {
    /// The weights top-degree sweep over the hash index, with
    /// certified-zero skipping: the weight-3 probe runs only for
    /// `t ≥ zb3` and the `O(t)` pair loop only for `t ≥ zb4`. The index
    /// trails the probe degree (extended per `t`), so on a fresh binding
    /// early probes hit a nearly-empty table and collision chains ramp
    /// up exactly like the scratch sweep's; on a reused binding the
    /// index may already run ahead, which the explicit `p < t` bound
    /// makes safe. The inner loop keeps the scratch sweep's
    /// branch-on-hit shape — hash probes miss almost always, and the
    /// predicted-not-taken branch beats a branchless accumulate there.
    fn sweep_w34_hash(&mut self, codeword_len: u32, zb3: u32, zb4: u32) -> Sweep {
        self.reserve_hash(codeword_len.saturating_sub(2));
        let l = codeword_len as u64;
        let mut out = Sweep::default();
        let t_start = zb3.min(zb4).max(2);
        for t in t_start..codeword_len {
            self.ensure_indexed(t - 1);
            let (syn, map) = (&self.syn, &self.hash);
            let target = 1 ^ syn[t as usize];
            let shifts = (l - t as u64) as u128;
            if t >= zb3 {
                if let Some(p) = map.get(target) {
                    if p < t {
                        out.w3 += shifts;
                        if out.first3 == 0 {
                            out.first3 = t;
                        }
                    }
                }
            }
            if t >= zb4 {
                let mut pairs = 0u64;
                for (k, &s) in syn[1..t as usize].iter().enumerate() {
                    let i = (k + 1) as u32;
                    if let Some(p) = map.get(target ^ s) {
                        if p > i && p < t {
                            pairs += 1;
                        }
                    }
                }
                if pairs != 0 {
                    out.w4 += pairs as u128 * shifts;
                    if out.first4 == 0 {
                        out.first4 = t;
                    }
                }
            }
        }
        out
    }

    /// The wide-width weights sweep over the two-level index. The inner
    /// pair loop leads with the 16 KiB presence screen — one L1 load and
    /// a predicted-not-taken branch kill almost every probe before it
    /// touches the (much larger) bucket directory, which is what buys
    /// the 32-bit speedup over the hash sweep. Probes run against the
    /// *full* syndrome table on purpose: on a reused binding the
    /// directory and spill rows may reference positions past this
    /// sweep's length (from an earlier longer scan), and the explicit
    /// `< t` bounds in [`twolevel_pair_hit`] make that safe where a
    /// truncated slice would panic.
    fn sweep_w34_twolevel(&self, codeword_len: u32, zb3: u32, zb4: u32) -> Sweep {
        let syn = &self.syn[..];
        let screen = &self.wscreen[..1 << (WIDE_SCREEN_BITS - 6)];
        let dir = &self.dir[..1usize << self.dir_bits];
        let rows = &self.rows[..];
        let shift = self.dir_shift;
        let l = codeword_len as u64;
        let mut out = Sweep::default();
        let t_start = zb3.min(zb4).max(2);
        for t in t_start..codeword_len {
            let target = 1 ^ syn[t as usize];
            let shifts = (l - t as u64) as u128;
            if t >= zb3 {
                let p = twolevel_pos(syn, screen, dir, shift, rows, target);
                if p != 0 && p < t {
                    out.w3 += shifts;
                    if out.first3 == 0 {
                        out.first3 = t;
                    }
                }
            }
            if t >= zb4 {
                let mut pairs = 0u64;
                for (k, &s) in syn[1..t as usize].iter().enumerate() {
                    let v = target ^ s;
                    let low = v as usize & ((1 << WIDE_SCREEN_BITS) - 1);
                    if screen[low >> 6] & (1u64 << (low & 63)) == 0 {
                        continue;
                    }
                    let i = (k + 1) as u32;
                    pairs += twolevel_pair_hit(syn, dir, shift, rows, v, i, t) as u64;
                }
                if pairs != 0 {
                    out.w4 += pairs as u128 * shifts;
                    if out.first4 == 0 {
                        out.first4 = t;
                    }
                }
            }
        }
        out
    }

    /// The batch (mask-then-resolve) variant of the two-level sweep for
    /// [`IndexPolicy::Bitsliced`] bindings: pass 1 runs the presence
    /// screen over 64-position blocks branch-free, packing survivors
    /// into a lane mask; pass 2 resolves only the set lanes against the
    /// directory. Separating the always-run screen from the almost-never
    /// -run resolve keeps the hot pass free of unpredictable branches
    /// (the screen's ~5% hit rate is poison for a fused loop's branch
    /// predictor) and pairs with the block-extended syndrome table from
    /// [`crate::bitslice`].
    fn sweep_w34_bitsliced(&self, codeword_len: u32, zb3: u32, zb4: u32) -> Sweep {
        let syn = &self.syn[..];
        let screen = &self.wscreen[..1 << (WIDE_SCREEN_BITS - 6)];
        let dir = &self.dir[..1usize << self.dir_bits];
        let rows = &self.rows[..];
        let shift = self.dir_shift;
        let l = codeword_len as u64;
        let mut out = Sweep::default();
        let t_start = zb3.min(zb4).max(2);
        for t in t_start..codeword_len {
            let target = 1 ^ syn[t as usize];
            let shifts = (l - t as u64) as u128;
            if t >= zb3 {
                let p = twolevel_pos(syn, screen, dir, shift, rows, target);
                if p != 0 && p < t {
                    out.w3 += shifts;
                    if out.first3 == 0 {
                        out.first3 = t;
                    }
                }
            }
            if t >= zb4 {
                let mut pairs = 0u64;
                let row = &syn[1..t as usize];
                let mut base = 0usize;
                while base < row.len() {
                    let lanes = (row.len() - base).min(64);
                    let mut mask = 0u64;
                    for (lane, &s) in row[base..base + lanes].iter().enumerate() {
                        let low = (target ^ s) as usize & ((1 << WIDE_SCREEN_BITS) - 1);
                        mask |= ((screen[low >> 6] >> (low & 63)) & 1) << lane;
                    }
                    while mask != 0 {
                        let lane = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let v = target ^ row[base + lane];
                        let i = (base + lane + 1) as u32;
                        pairs += twolevel_pair_hit(syn, dir, shift, rows, v, i, t) as u64;
                    }
                    base += lanes;
                }
                if pairs != 0 {
                    out.w4 += pairs as u128 * shifts;
                    if out.first4 == 0 {
                        out.first4 = t;
                    }
                }
            }
        }
        out
    }
}

/// The direct-index weights sweep, specialized to the `u16` value/
/// position domain so the probe table and the syndrome row share L1
/// (see [`DIRECT_INDEX_MAX_WIDTH`]). Semantically identical to
/// [`sweep_w34`] with a direct-table lookup.
fn sweep_w34_direct(
    syn16: &[u16],
    tbl: &[u16],
    mask: u16,
    codeword_len: u32,
    zb3: u32,
    zb4: u32,
) -> Sweep {
    // Re-slice so the compiler sees `index ≤ mask < tbl.len()` and drops
    // the bounds check from every probe.
    let tbl = &tbl[..mask as usize + 1];
    let l = codeword_len as u64;
    let mut out = Sweep::default();
    let t_start = zb3.min(zb4).max(2);
    for t in t_start..codeword_len {
        // Weights sweeps run below the order (< 2^16 at these widths).
        let t16 = t as u16;
        let target = 1 ^ syn16[t as usize];
        let shifts = (l - t as u64) as u128;
        if t >= zb3 {
            // Empty slots read as DIRECT_EMPTY ≥ t16, so `p < t16` alone
            // is "an earlier partner exists".
            let p = tbl[(target & mask) as usize];
            if p < t16 {
                out.w3 += shifts;
                if out.first3 == 0 {
                    out.first3 = t;
                }
            }
        }
        if t >= zb4 {
            // Each unordered pair {i, j} with r(i)^r(j) = target is seen
            // from both ends (the partner of i is j and vice versa;
            // p = i is impossible since target ≠ 0 below the order), so
            // one compare per probe and a final halving count the pairs.
            let mut twice = 0u64;
            for &s in &syn16[1..t as usize] {
                twice += (tbl[((target ^ s) & mask) as usize] < t16) as u64;
            }
            if twice != 0 {
                debug_assert!(twice.is_multiple_of(2));
                out.w4 += (twice / 2) as u128 * shifts;
                if out.first4 == 0 {
                    out.first4 = t;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn g32(koopman: u64) -> GenPoly {
        GenPoly::from_koopman(32, koopman).unwrap()
    }

    #[test]
    fn direct_and_hash_agree_with_reference_dmin() {
        for (width, koopman) in [(8u32, 0x83u64), (8, 0xEA), (13, 0x1021), (16, 0xC86C)] {
            let g = GenPoly::from_koopman(width, koopman).unwrap();
            let mut auto = SyndromeWorkspace::new();
            let mut hash = SyndromeWorkspace::with_policy(IndexPolicy::ForceHash);
            if width <= DIRECT_INDEX_MAX_WIDTH {
                auto.bind(&g);
                assert_eq!(auto.index_kind(), IndexKind::Direct);
            }
            for w in 2..=6u32 {
                for cap in [5u32, 40, 200] {
                    let want = reference::dmin(&g, w, cap).unwrap();
                    assert_eq!(auto.dmin(&g, w, cap).unwrap(), want, "auto w={w} cap={cap}");
                    assert_eq!(hash.dmin(&g, w, cap).unwrap(), want, "hash w={w} cap={cap}");
                }
            }
        }
    }

    #[test]
    fn memo_resumes_across_growing_caps() {
        let g = g32(0x82608EDB);
        let mut ws = SyndromeWorkspace::new();
        // d_min(4) = 3006: a short capped search certifies a clean range,
        // a longer one resumes and finds the exact answer.
        assert_eq!(ws.dmin(&g, 4, 2000).unwrap(), None);
        assert_eq!(ws.dmin(&g, 4, 5000).unwrap(), Some(3006));
        // Memoized: shrinking the cap below the known minimum flips back
        // to None without re-scanning.
        assert_eq!(ws.dmin(&g, 4, 3005).unwrap(), None);
        assert_eq!(ws.dmin(&g, 4, 3006).unwrap(), Some(3006));
    }

    #[test]
    fn rebinding_clears_state_between_polynomials() {
        let mut ws = SyndromeWorkspace::new();
        let a = GenPoly::from_koopman(8, 0x83).unwrap();
        let b = GenPoly::from_koopman(8, 0x97).unwrap();
        for _ in 0..3 {
            for g in [a, b] {
                let want = reference::weights234(&g, 9).unwrap();
                assert_eq!(ws.weights234(&g, 9).unwrap(), want, "{g}");
            }
        }
        assert_eq!(ws.rebinds(), 6);
    }

    #[test]
    fn stat_accessors_track_index_population() {
        let g = g32(0x82608EDB);

        // Two-level binding: positions land in the directory, collisions
        // spill to rows; the spill accessors expose that split.
        let mut two = SyndromeWorkspace::with_policy(IndexPolicy::ForceTwoLevel);
        two.dmin(&g, 4, 5000).unwrap();
        assert_eq!(two.index_kind(), IndexKind::TwoLevel);
        assert!(two.positions_indexed() > 0);
        assert!(two.two_level_spill_positions() >= 2 * two.two_level_spill_rows());
        assert!(two.two_level_spill_positions() <= two.positions_indexed() as usize);
        // The hash accessors stay idle for a two-level binding.
        assert_eq!(two.hash_len(), 0);

        // Hash binding: entries accumulate in the PosMap and capacity
        // bounds them; the two-level accessors stay idle.
        let mut hash = SyndromeWorkspace::with_policy(IndexPolicy::ForceHash);
        hash.dmin(&g, 4, 5000).unwrap();
        assert_eq!(hash.index_kind(), IndexKind::Hash);
        assert!(hash.hash_len() > 0);
        assert!(hash.hash_capacity() >= hash.hash_len());
        assert_eq!(hash.two_level_spill_rows(), 0);
        assert_eq!(hash.two_level_spill_positions(), 0);
    }

    #[test]
    fn weights_after_profile_match_scratch_weights() {
        // The memo-hinted sweep (profile first certifies clean ranges)
        // must count exactly what the scratch sweep counts.
        for koopman in [0x82608EDBu64, 0xBA0DC66B, 0x8F6E37A0] {
            let g = g32(koopman);
            let mut ws = SyndromeWorkspace::new();
            let _profile = crate::HdProfile::compute_in(&mut ws, &g, 3000, 8).unwrap();
            let got = ws.weights234(&g, 3000).unwrap();
            let want = reference::weights234(&g, 3000).unwrap();
            assert_eq!(got, want, "{koopman:#x}");
        }
    }

    #[test]
    fn weights_sweep_feeds_the_memo() {
        let g = g32(0x82608EDB);
        let mut ws = SyndromeWorkspace::new();
        let w = ws.weights234(&g, 3000).unwrap();
        assert!(w.w4 > 0);
        // The sweep discovered the exact d_min(4); the next dmin call is
        // answered from the memo.
        assert_eq!(ws.dmin(&g, 4, 5000).unwrap(), Some(3006));
    }

    #[test]
    fn order_restriction_and_bad_lengths_match_reference() {
        let g = GenPoly::from_normal(8, 0x83).unwrap(); // order 14
        let mut ws = SyndromeWorkspace::new();
        assert!(ws.weights234(&g, 30).is_err());
        assert!(ws.weights234(&g, 0).is_err());
        assert!(reference::weights234(&g, 30).is_err());
        assert_eq!(
            ws.weight2(&g, 30).unwrap(),
            crate::weights::weight2(&g, 30).unwrap()
        );
    }

    #[test]
    fn direct_index_migrates_before_sentinel_positions() {
        // Only a generator with order exactly 2^16 - 1 (primitive width
        // 16) re-introduces a value (r(0) = 1, never indexed at position
        // 0) at the position that collides with the u16 sentinel; the
        // index must flip to the hash flavor before storing it.
        let g = (0x8000u64..0x8400)
            .filter_map(|k| GenPoly::from_koopman(16, k).ok())
            .find(|g| dmin2(g) == 65_535)
            .expect("a primitive 16-bit generator in range");
        let mut ws = SyndromeWorkspace::new();
        ws.bind(&g);
        assert_eq!(ws.index_kind(), IndexKind::Direct);
        ws.ensure_syndromes(70_000);
        ws.ensure_indexed(70_000 - 1);
        assert_eq!(ws.index_kind(), IndexKind::Hash, "must migrate");
        // The first indexed occurrence of value 1 is the order itself.
        assert_eq!(ws.pos_of(1), 65_535);
        for i in [1u32, 2, 7, 65_534] {
            let v = ws.syn[i as usize];
            assert_eq!(ws.pos_of(v), i, "first occurrence of r({i})");
        }
        // The migrated binding still answers like the scratch oracle.
        assert_eq!(
            ws.dmin(&g, 3, 400).unwrap(),
            reference::dmin(&g, 3, 400).unwrap()
        );
        assert_eq!(
            ws.weights234(&g, 300).unwrap(),
            reference::weights234(&g, 300).unwrap()
        );
    }

    #[test]
    fn weights_sweep_never_weakens_certified_ranges() {
        let g = g32(0x82608EDB);
        let mut ws = SyndromeWorkspace::new();
        // A capped search certifies a wide clean range for weight 4...
        assert_eq!(ws.dmin(&g, 4, 2500).unwrap(), None);
        assert_eq!(ws.zero_below(4), 2501);
        // ...and a subsequent *short* weights sweep (which skips all its
        // weight-4 probes against that range) must not shrink it.
        let w = ws.weights234(&g, 100).unwrap();
        assert_eq!((w.w3, w.w4), (0, 0));
        assert_eq!(ws.zero_below(4), 2501, "short sweep weakened the memo");
    }

    #[test]
    fn memo_facts_export_seed_and_resume() {
        // CRC-32 (IEEE): first weight-4 codeword near length 3007, no
        // weight-3 codeword until far beyond — so a 4000-bit pass
        // deposits one exact answer and one certified-clean range.
        let g = g32(0x82608EDB);
        let mut first = SyndromeWorkspace::new();
        let d4 = first.dmin(&g, 4, 4000).unwrap().expect("weight-4 < 4000");
        assert_eq!(first.dmin(&g, 3, 4000).unwrap(), None);
        let facts = first.memo_facts(&g);
        assert!(facts.contains(&(4, MemoFact::MinDegree(d4))));
        assert!(facts.contains(&(3, MemoFact::ZeroBelow(4001))));
        let order = first.order(&g);

        // Seeding a fresh workspace resumes instead of restarting: a
        // query inside the certified range answers from the memo alone,
        // before a single syndrome beyond r(0) is computed.
        let mut second = SyndromeWorkspace::new();
        second.seed_memo(&g, &facts);
        second.seed_order(&g, order);
        assert_eq!(second.dmin(&g, 3, 3000).unwrap(), None);
        assert_eq!(second.dmin(&g, 4, 4000).unwrap(), Some(d4));
        assert_eq!(second.syndromes_known(), 1, "memo answered, not a scan");
        assert_eq!(second.order(&g), order);
        // Extending past the certified range picks up where the first
        // pass stopped and agrees with the scratch oracle.
        assert_eq!(
            second.dmin(&g, 3, 6000).unwrap(),
            reference::dmin(&g, 3, 6000).unwrap()
        );

        // Seeding only strengthens: a weaker bound cannot displace a
        // stronger one, and an exact answer is never displaced.
        let mut third = SyndromeWorkspace::new();
        third.seed_memo(&g, &[(3, MemoFact::ZeroBelow(4001))]);
        third.seed_memo(&g, &[(3, MemoFact::ZeroBelow(10))]);
        assert_eq!(third.zero_below(3), 4001);
        third.seed_memo(&g, &[(4, MemoFact::MinDegree(d4))]);
        third.seed_memo(&g, &[(4, MemoFact::ZeroBelow(2))]);
        assert_eq!(third.dmin(&g, 4, 4000).unwrap(), Some(d4));
        // Rebinding clears seeded state like any other cached state.
        let other = g32(0xBA0DC66B);
        third.bind(&other);
        assert_eq!(third.zero_below(3), 0);
    }

    #[test]
    fn direct_index_survives_indexing_past_a_query() {
        // The index may run ahead of any particular question: a long
        // dmin scan indexes far positions, and a later short query must
        // still bound-check correctly.
        let g = GenPoly::from_koopman(13, 0x102D).unwrap();
        let mut ws = SyndromeWorkspace::new();
        let long = ws.dmin(&g, 4, 500).unwrap();
        let mut fresh = SyndromeWorkspace::new();
        let short = fresh.dmin(&g, 4, 60).unwrap();
        assert_eq!(short, reference::dmin(&g, 4, 60).unwrap());
        assert_eq!(long, reference::dmin(&g, 4, 500).unwrap());
    }
}
